//! Offline stand-in for the subset of `criterion` this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`throughput`/`bench_with_input`, and `Bencher::iter`.
//!
//! The build environment has no crates.io access. This shim keeps every
//! `cargo bench` target compiling and producing wall-clock numbers
//! (median over a fixed number of samples, auto-scaled iteration counts);
//! it does not attempt criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload (accepted, not used by the shim).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; drives the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One calibration pass decides how many iterations fit a sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// CLI configuration (no-op in the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _c: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_samples(name, self.sample_size, f);
        self
    }

    /// End-of-run reporting (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput (accepted, not used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Target measurement time (accepted, not used).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
