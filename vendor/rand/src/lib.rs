//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors this tiny implementation (xoshiro256++ seeded via SplitMix64)
//! instead of the real crate. Streams are deterministic per seed but are
//! **not** bit-compatible with upstream `rand`; nothing in the repo
//! depends on upstream streams, only on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable uniformly from the full bit pattern ("standard"
/// distribution; floats land in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 2^64 mod span; accept draws below the largest multiple of span.
    let rem = (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if rem == 0 || v <= u64::MAX - rem {
            return v % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// A value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step — used for seeding and fault-plan style hashing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_lands_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..1.5f64);
            assert!((-2.0..1.5).contains(&f));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left order intact"
        );
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
