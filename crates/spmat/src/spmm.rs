//! Sequential sparse × tall-skinny-dense multiplication kernels.
//!
//! These are the local compute kernels every distributed variant calls
//! after communication has assembled the needed rows of `H`
//! (the role cuSPARSE `csrmm2` plays in the paper's implementation).

use crate::csr::Csr;
use crate::dense::Dense;

/// `C = A · H` for CSR `A` (`m × k`) and dense `H` (`k × f`).
///
/// # Panics
/// Panics if `A.cols() != H.rows()`.
pub fn spmm(a: &Csr, h: &Dense) -> Dense {
    let mut out = Dense::zeros(a.rows(), h.cols());
    spmm_acc(a, h, &mut out);
    out
}

/// `C += A · H`, accumulating into an existing output. This is the kernel
/// used inside the 1.5D stage loop, where each stage adds one partial
/// product `AᵀᵢₖHₖ`.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn spmm_acc(a: &Csr, h: &Dense, out: &mut Dense) {
    assert_eq!(a.cols(), h.rows(), "spmm inner dimension mismatch");
    assert_eq!(out.rows(), a.rows(), "spmm output rows mismatch");
    assert_eq!(out.cols(), h.cols(), "spmm output cols mismatch");
    let f = h.cols();
    for r in 0..a.rows() {
        let cols = a.row_cols(r);
        let vals = a.row_vals(r);
        let out_row = out.row_mut(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let h_row = h.row(c as usize);
            debug_assert_eq!(h_row.len(), f);
            for (o, &x) in out_row.iter_mut().zip(h_row) {
                *o += v * x;
            }
        }
    }
}

/// Number of floating-point operations one `A · H` performs
/// (`2 · nnz(A) · f`); feeds the compute-time model.
pub fn spmm_flops(a: &Csr, f: usize) -> u64 {
    2 * a.nnz() as u64 * f as u64
}

/// Reference implementation via dense conversion; O(m·k·f), tests only.
pub fn spmm_naive(a: &Csr, h: &Dense) -> Dense {
    let ad = a.to_dense();
    Dense::from_fn(a.rows(), h.cols(), |r, c| {
        (0..a.cols()).map(|k| ad[r][k] * h.get(k, c)).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Csr {
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    coo.push(r, c, rng.gen_range(-1.0..1.0));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let a = random_csr(13, 9, 0.3, &mut rng);
            let h = Dense::glorot(9, 4, &mut rng);
            let fast = spmm(&a, &h);
            let slow = spmm_naive(&a, &h);
            assert!(fast.approx_eq(&slow, 1e-12));
        }
    }

    #[test]
    fn identity_spmm_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = Dense::glorot(6, 3, &mut rng);
        let i = Csr::identity(6);
        assert!(spmm(&i, &h).approx_eq(&h, 0.0));
    }

    #[test]
    fn acc_adds_partial_products() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_csr(5, 5, 0.5, &mut rng);
        let h = Dense::glorot(5, 2, &mut rng);
        let mut out = spmm(&a, &h);
        spmm_acc(&a, &h, &mut out);
        let mut twice = spmm(&a, &h);
        twice.scale(2.0);
        assert!(out.approx_eq(&twice, 1e-12));
    }

    #[test]
    fn empty_matrix_gives_zeros() {
        let a = Csr::empty(3, 4);
        let h = Dense::zeros(4, 2);
        let out = spmm(&a, &h);
        assert_eq!(out.data(), &[0.0; 6]);
    }

    #[test]
    fn flops_formula() {
        let a = Csr::identity(10);
        assert_eq!(spmm_flops(&a, 8), 2 * 10 * 8);
    }

    #[test]
    fn block_decomposition_sums_to_whole() {
        // Σⱼ A[:, jblock] · H[jblock] == A · H — the algebraic identity the
        // 1D algorithm relies on.
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_csr(8, 8, 0.4, &mut rng);
        let h = Dense::glorot(8, 3, &mut rng);
        let whole = spmm(&a, &h);

        let mut sum = Dense::zeros(8, 3);
        for (lo, hi) in [(0usize, 3usize), (3, 8)] {
            // Build the column block of `a` restricted to [lo, hi).
            let mut coo = Coo::new(8, 8);
            for (r, c, v) in a.iter() {
                if c >= lo && c < hi {
                    coo.push(r, c, v);
                }
            }
            let block = coo.to_csr();
            spmm_acc(&block, &h, &mut sum);
        }
        assert!(sum.approx_eq(&whole, 1e-12));
    }
}
