//! Sparse × tall-skinny-dense multiplication kernels.
//!
//! These are the local compute kernels every distributed variant calls
//! after communication has assembled the needed rows of `H`
//! (the role cuSPARSE `csrmm2` plays in the paper's implementation).
//!
//! The kernels are row-parallel over the [`crate::pool`] worker pool and
//! cache-blocked: output rows are processed in fixed chunks of
//! [`SPMM_CHUNK_ROWS`], and each row runs through the
//! [`crate::kernel`] dispatch layer — AVX2/NEON register-blocked SIMD
//! when the host supports it, the portable scalar tile loop otherwise.
//! Dispatch is resolved **once per matrix operation**, not per row.
//! Empty sparse rows are skipped before any dense work.
//!
//! **Determinism:** each output row is produced by exactly one worker and
//! accumulates its nonzeros in CSR order, exactly like the serial loop —
//! so results are bit-identical at every thread count (asserted by
//! `tests/parallel_kernels.rs` at 1, 2, 4 and 7 threads). In the default
//! strict kernel mode this holds on every SIMD backend too; see the
//! [`crate::kernel`] determinism contract.

use crate::csr::Csr;
use crate::dense::Dense;
use crate::kernel::{self, Kernels};
use crate::pool;

/// Rows per scheduling chunk. Fixed (independent of the thread count) so
/// chunk boundaries — and therefore results — never depend on parallelism.
pub const SPMM_CHUNK_ROWS: usize = 64;

/// `C = A · H` for CSR `A` (`m × k`) and dense `H` (`k × f`), using the
/// process-wide thread count ([`pool::current_threads`]).
///
/// # Panics
/// Panics if `A.cols() != H.rows()`.
pub fn spmm(a: &Csr, h: &Dense) -> Dense {
    spmm_with(a, h, pool::current_threads())
}

/// [`spmm`] with an explicit thread count.
pub fn spmm_with(a: &Csr, h: &Dense, threads: usize) -> Dense {
    let mut out = Dense::zeros(a.rows(), h.cols());
    spmm_acc_with(a, h, &mut out, threads);
    out
}

/// `C += A · H`, accumulating into an existing output, using the
/// process-wide thread count. This is the kernel used inside the 1.5D
/// stage loop, where each stage adds one partial product `AᵀᵢₖHₖ`.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn spmm_acc(a: &Csr, h: &Dense, out: &mut Dense) {
    spmm_acc_with(a, h, out, pool::current_threads());
}

/// [`spmm_acc`] with an explicit thread count.
pub fn spmm_acc_with(a: &Csr, h: &Dense, out: &mut Dense, threads: usize) {
    assert_eq!(a.cols(), h.rows(), "spmm inner dimension mismatch");
    assert_eq!(out.rows(), a.rows(), "spmm output rows mismatch");
    assert_eq!(out.cols(), h.cols(), "spmm output cols mismatch");
    let f = h.cols();
    if a.rows() == 0 || f == 0 {
        return;
    }
    let t = pool::effective_threads(threads, 2 * a.nnz() * f);
    // Resolve (backend, mode) once for the whole operation; the worker
    // closure captures the plain Copy value.
    let ker = kernel::active();
    pool::for_each_chunk_mut(t, out.data_mut(), SPMM_CHUNK_ROWS * f, |ci, out_chunk| {
        spmm_row_chunk(ker, a, h, ci * SPMM_CHUNK_ROWS, out_chunk, f);
    });
}

/// Serial kernel for one chunk of output rows (`out_chunk` holds
/// `row0 .. row0 + out_chunk.len()/f`). Accumulation order per output
/// element is CSR nonzero order — identical to the historical serial loop.
fn spmm_row_chunk(ker: Kernels, a: &Csr, h: &Dense, row0: usize, out_chunk: &mut [f64], f: usize) {
    let h_data = h.data();
    for (i, out_row) in out_chunk.chunks_exact_mut(f).enumerate() {
        let r = row0 + i;
        let cols = a.row_cols(r);
        if cols.is_empty() {
            continue; // skip empty rows before touching any dense data
        }
        let vals = a.row_vals(r);
        ker.spmm_row(cols, vals, h_data, f, out_row);
    }
}

/// Number of floating-point operations one `A · H` performs
/// (`2 · nnz(A) · f`); feeds the compute-time model.
pub fn spmm_flops(a: &Csr, f: usize) -> u64 {
    2 * a.nnz() as u64 * f as u64
}

/// Reference implementation via dense conversion; O(m·k·f), tests only.
pub fn spmm_naive(a: &Csr, h: &Dense) -> Dense {
    let ad = a.to_dense();
    Dense::from_fn(a.rows(), h.cols(), |r, c| {
        (0..a.cols()).map(|k| ad[r][k] * h.get(k, c)).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::kernel::scalar::FTILE;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Csr {
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    coo.push(r, c, rng.gen_range(-1.0..1.0));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let a = random_csr(13, 9, 0.3, &mut rng);
            let h = Dense::glorot(9, 4, &mut rng);
            let fast = spmm(&a, &h);
            let slow = spmm_naive(&a, &h);
            assert!(fast.approx_eq(&slow, 1e-12));
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(44);
        // Rows span several chunks so the parallel path really engages.
        let a = random_csr(3 * SPMM_CHUNK_ROWS + 5, 90, 0.2, &mut rng);
        let h = Dense::glorot(90, FTILE + 9, &mut rng);
        let serial = spmm_with(&a, &h, 1);
        for t in [2, 4, 7] {
            let par = spmm_with(&a, &h, t);
            assert_eq!(par.data(), serial.data(), "threads={t}");
        }
    }

    #[test]
    fn wide_f_crosses_tile_boundary() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = random_csr(20, 20, 0.4, &mut rng);
        let h = Dense::glorot(20, 2 * FTILE + 3, &mut rng);
        assert!(spmm(&a, &h).approx_eq(&spmm_naive(&a, &h), 1e-12));
    }

    #[test]
    fn identity_spmm_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = Dense::glorot(6, 3, &mut rng);
        let i = Csr::identity(6);
        assert!(spmm(&i, &h).approx_eq(&h, 0.0));
    }

    #[test]
    fn acc_adds_partial_products() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_csr(5, 5, 0.5, &mut rng);
        let h = Dense::glorot(5, 2, &mut rng);
        let mut out = spmm(&a, &h);
        spmm_acc(&a, &h, &mut out);
        let mut twice = spmm(&a, &h);
        twice.scale(2.0);
        assert!(out.approx_eq(&twice, 1e-12));
    }

    #[test]
    fn empty_matrix_gives_zeros() {
        let a = Csr::empty(3, 4);
        let h = Dense::zeros(4, 2);
        let out = spmm(&a, &h);
        assert_eq!(out.data(), &[0.0; 6]);
    }

    #[test]
    fn zero_width_operand_is_fine() {
        let a = Csr::identity(4);
        let h = Dense::zeros(4, 0);
        let out = spmm_with(&a, &h, 4);
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 0);
    }

    #[test]
    fn flops_formula() {
        let a = Csr::identity(10);
        assert_eq!(spmm_flops(&a, 8), 2 * 10 * 8);
    }

    #[test]
    fn block_decomposition_sums_to_whole() {
        // Σⱼ A[:, jblock] · H[jblock] == A · H — the algebraic identity the
        // 1D algorithm relies on.
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_csr(8, 8, 0.4, &mut rng);
        let h = Dense::glorot(8, 3, &mut rng);
        let whole = spmm(&a, &h);

        let mut sum = Dense::zeros(8, 3);
        for (lo, hi) in [(0usize, 3usize), (3, 8)] {
            // Build the column block of `a` restricted to [lo, hi).
            let mut coo = Coo::new(8, 8);
            for (r, c, v) in a.iter() {
                if c >= lo && c < hi {
                    coo.push(r, c, v);
                }
            }
            let block = coo.to_csr();
            spmm_acc(&block, &h, &mut sum);
        }
        assert!(sum.approx_eq(&whole, 1e-12));
    }
}
