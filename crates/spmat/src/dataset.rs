//! Scaled-down analogues of the paper's evaluation datasets (Table 3).
//!
//! | Paper    | Vertices | Edges  | Character            | Here              |
//! |----------|----------|--------|----------------------|-------------------|
//! | Reddit   | 233k     | 114.8M | smallest & densest   | [`reddit_scaled`] |
//! | Amazon   | 14.2M    | 230.8M | sparsest, irregular  | [`amazon_scaled`] |
//! | Protein  | 8.7M     | 2.1B   | dense, regular       | [`protein_scaled`]|
//! | Papers   | 111.1M   | 3.2B   | largest              | [`papers_scaled`] |
//!
//! The analogues keep the *relative* properties (density ordering,
//! irregularity, community structure) at laptop scale; vertex/edge counts
//! are ~1000× smaller but **feature and label widths match the paper's
//! Table 3 exactly** (602/41, 300/24, 300/24, 128/172) so the
//! communication stays in the paper's volume-bound regime. R-MAT supplies the irregular graphs, a planted
//! partition supplies the regular one. Labels are structural (R-MAT id
//! prefix, SBM block), and features are noisy label encodings so GCN
//! training has real signal to fit.

use crate::csr::Csr;
use crate::dense::Dense;
use crate::gen::{community_rmat, rmat, sbm, HybridConfig, RmatConfig, SbmConfig};
use crate::graph::gcn_normalize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ready-to-train node-classification dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Short identifier ("reddit-scaled" etc.).
    pub name: String,
    /// Raw symmetric adjacency (unit weights, no self-loops).
    pub adj: Csr,
    /// GCN-normalized adjacency `Â = D^{-1/2}(A+I)D^{-1/2}`.
    pub norm_adj: Csr,
    /// `n × f` input features.
    pub features: Dense,
    /// Ground-truth class per vertex.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Vertices used for the training loss (deterministic 60% split).
    pub train_mask: Vec<bool>,
}

impl Dataset {
    /// Vertex count.
    pub fn n(&self) -> usize {
        self.adj.rows()
    }

    /// Input feature width.
    pub fn f(&self) -> usize {
        self.features.cols()
    }

    /// Directed edge count (nnz of the symmetric adjacency).
    pub fn edges(&self) -> usize {
        self.adj.nnz()
    }

    /// Applies a symmetric vertex relabeling (from a partitioner) to every
    /// aligned component: adjacency, normalized adjacency, features,
    /// labels, masks.
    pub fn permute(&self, perm: &[u32]) -> Dataset {
        let n = self.n();
        assert_eq!(perm.len(), n);
        let mut labels = vec![0u32; n];
        let mut train_mask = vec![false; n];
        for old in 0..n {
            labels[perm[old] as usize] = self.labels[old];
            train_mask[perm[old] as usize] = self.train_mask[old];
        }
        Dataset {
            name: self.name.clone(),
            adj: self.adj.permute_symmetric(perm),
            norm_adj: self.norm_adj.permute_symmetric(perm),
            features: self.features.permute_rows(perm),
            labels,
            num_classes: self.num_classes,
            train_mask,
        }
    }
}

/// Builds features as a noisy encoding of the label: class mean vector
/// (deterministic per class) plus Gaussian-ish noise. `signal` controls
/// separability.
fn label_features(
    labels: &[u32],
    num_classes: usize,
    f: usize,
    signal: f64,
    rng: &mut StdRng,
) -> Dense {
    // Per-class mean directions.
    let mut means = Dense::zeros(num_classes, f);
    for c in 0..num_classes {
        for j in 0..f {
            means.set(c, j, rng.gen_range(-1.0..1.0));
        }
    }
    let n = labels.len();
    Dense::from_fn(n, f, |r, j| {
        let noise: f64 = rng.gen_range(-1.0..1.0);
        signal * means.get(labels[r] as usize, j) + noise
    })
}

/// Deterministic 60% training mask.
fn train_split(n: usize, rng: &mut StdRng) -> Vec<bool> {
    (0..n).map(|_| rng.gen_bool(0.6)).collect()
}

/// Labels from the high bits of the vertex id. R-MAT's recursive quadrant
/// sampling makes nearby ids share structure, so prefix labels correlate
/// with the graph — enough signal for accuracy to beat chance.
fn prefix_labels(n: usize, num_classes: usize) -> Vec<u32> {
    let per = n.div_ceil(num_classes);
    (0..n).map(|v| (v / per) as u32).collect()
}

fn assemble(
    name: &str,
    adj: Csr,
    labels: Vec<u32>,
    num_classes: usize,
    f: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = label_features(&labels, num_classes, f, 1.5, &mut rng);
    let train_mask = train_split(adj.rows(), &mut rng);
    let norm_adj = gcn_normalize(&adj);
    Dataset {
        name: name.to_string(),
        adj,
        norm_adj,
        features,
        labels,
        num_classes,
        train_mask,
    }
}

/// Reddit analogue: small and dense, irregular but weakly community-
/// structured (hub-heavy R-MAT blocks + a thick layer of cross edges —
/// partitioners help, but only ~2×, as the paper reports for Reddit).
/// `n = 2^scale`.
pub fn reddit_scaled(scale: u32, seed: u64) -> Dataset {
    assert!(scale >= 4, "reddit_scaled needs scale >= 4");
    let block_scale = 6.min(scale - 2);
    let (adj, _) = community_rmat(HybridConfig {
        blocks: 1usize << (scale - block_scale),
        block_scale,
        edge_factor_in: 24,
        cross_degree: 8.0,
        seed,
    });
    let n = adj.rows();
    let labels = prefix_labels(n, 41);
    assemble("reddit-scaled", adj, labels, 41, 602, seed ^ 0xD1)
}

/// Amazon analogue: larger, sparse, highly irregular yet partitionable
/// (co-purchase graphs cluster strongly). The communication-imbalance
/// workhorse (Table 2, Figs. 3–7): its hub vertices give the
/// edgecut-only partitioner a ~2× max/avg send imbalance.
pub fn amazon_scaled(scale: u32, seed: u64) -> Dataset {
    assert!(scale >= 4, "amazon_scaled needs scale >= 4");
    let block_scale = 8.min(scale - 2);
    let (adj, _) = community_rmat(HybridConfig {
        blocks: 1usize << (scale - block_scale),
        block_scale,
        edge_factor_in: 7,
        cross_degree: 1.5,
        seed,
    });
    let n = adj.rows();
    let labels = prefix_labels(n, 24);
    assemble("amazon-scaled", adj, labels, 24, 300, seed ^ 0xA2)
}

/// Protein analogue: dense and *regular* — a planted partition whose
/// blocks a partitioner can recover nearly exactly, reproducing the
/// near-zero-cut behaviour the paper reports.
pub fn protein_scaled(n: usize, blocks: usize, seed: u64) -> Dataset {
    let (adj, labels) = sbm(SbmConfig {
        n,
        blocks,
        avg_degree_in: 60.0,
        avg_degree_out: 1.5,
        seed,
    });
    // Classification labels: block id folded into 24 classes so the label
    // count stays decoupled from the partition-structure block count.
    let classes = 24usize.min(blocks);
    let labels: Vec<u32> = labels.iter().map(|&b| b % classes as u32).collect();
    assemble("protein-scaled", adj, labels, classes, 300, seed ^ 0x93)
}

/// Papers analogue: the largest graph, moderately sparse R-MAT.
pub fn papers_scaled(scale: u32, seed: u64) -> Dataset {
    let adj = rmat(RmatConfig::graph500(scale, 12, seed));
    let n = adj.rows();
    let labels = prefix_labels(n, 172);
    assemble("papers-scaled", adj, labels, 172, 128, seed ^ 0x7A)
}

/// The default instantiations used by tests, examples and the reproduction
/// harness: sizes chosen so an entire figure sweep runs in seconds.
pub fn default_suite(seed: u64) -> Vec<Dataset> {
    vec![
        reddit_scaled(12, seed),           // n = 4096, densest
        amazon_scaled(15, seed),           // n = 32768, sparse irregular
        protein_scaled(16_384, 256, seed), // regular, community-rich
        papers_scaled(16, seed),           // n = 65536, largest
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::degree_cv;

    #[test]
    fn reddit_is_densest() {
        let r = reddit_scaled(10, 1);
        let a = amazon_scaled(10, 1);
        let avg = |d: &Dataset| d.edges() as f64 / d.n() as f64;
        assert!(
            avg(&r) > 2.0 * avg(&a),
            "reddit {} amazon {}",
            avg(&r),
            avg(&a)
        );
    }

    #[test]
    fn protein_is_regular_amazon_is_irregular() {
        let p = protein_scaled(2048, 32, 1);
        let a = amazon_scaled(11, 1);
        assert!(degree_cv(&p.adj) < 0.5 * degree_cv(&a.adj));
    }

    #[test]
    fn shapes_are_consistent() {
        let d = amazon_scaled(10, 2);
        assert_eq!(d.features.rows(), d.n());
        assert_eq!(d.labels.len(), d.n());
        assert_eq!(d.train_mask.len(), d.n());
        assert_eq!(d.norm_adj.rows(), d.n());
        assert!(d.labels.iter().all(|&l| (l as usize) < d.num_classes));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = papers_scaled(10, 3);
        let b = papers_scaled(10, 3);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn permute_keeps_alignment() {
        let d = reddit_scaled(8, 4);
        let n = d.n();
        // Reverse permutation.
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let p = d.permute(&perm);
        for (v, &pv) in perm.iter().enumerate() {
            let pv = pv as usize;
            assert_eq!(p.labels[pv], d.labels[v]);
            assert_eq!(p.train_mask[pv], d.train_mask[v]);
            assert_eq!(p.features.row(pv), d.features.row(v));
            assert_eq!(p.adj.row_nnz(pv), d.adj.row_nnz(v));
        }
    }

    #[test]
    fn features_are_separable_by_class() {
        // Class means should differ: average within-class feature vectors
        // and check that at least two classes are far apart.
        let d = amazon_scaled(10, 5);
        let f = d.f();
        let mut sums = vec![vec![0.0f64; f]; d.num_classes];
        let mut counts = vec![0usize; d.num_classes];
        for v in 0..d.n() {
            let c = d.labels[v] as usize;
            counts[c] += 1;
            for (j, s) in sums[c].iter_mut().enumerate() {
                *s += d.features.get(v, j);
            }
        }
        let mean0: Vec<f64> = sums[0].iter().map(|s| s / counts[0] as f64).collect();
        let mean1: Vec<f64> = sums[1].iter().map(|s| s / counts[1] as f64).collect();
        let dist: f64 = mean0
            .iter()
            .zip(&mean1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "class means indistinct: {dist}");
    }

    #[test]
    fn default_suite_builds() {
        // Smoke test with the real default sizes is too slow for unit
        // tests; build miniature versions of each kind instead.
        let d1 = reddit_scaled(8, 1);
        let d2 = amazon_scaled(8, 1);
        let d3 = protein_scaled(512, 8, 1);
        let d4 = papers_scaled(8, 1);
        for d in [&d1, &d2, &d3, &d4] {
            assert!(d.edges() > 0);
            assert!(d.norm_adj.is_symmetric());
        }
    }
}
