//! 2-D torus mesh generator: the perfectly regular extreme, where an ideal
//! partitioner achieves an O(√(n/p)) cut. Used by partitioner sanity tests
//! ("does refinement find the obvious geometric cut?").

use crate::coo::Coo;
use crate::csr::Csr;

/// Generates a `side × side` 4-neighbor torus (n = side²) with unit
/// weights.
pub fn grid2d(side: usize) -> Csr {
    assert!(side >= 2, "torus needs side >= 2");
    let n = side * side;
    let idx = |r: usize, c: usize| r * side + c;
    let mut coo = Coo::with_capacity(n, n, 4 * n);
    for r in 0..side {
        for c in 0..side {
            let v = idx(r, c);
            let right = idx(r, (c + 1) % side);
            let down = idx((r + 1) % side, c);
            // Undirected edges added once per direction pair; the torus
            // wrap on side == 2 would duplicate, which Coo::to_csr merges.
            coo.push(v, right, 1.0);
            coo.push(right, v, 1.0);
            coo.push(v, down, 1.0);
            coo.push(down, v, 1.0);
        }
    }
    super::rmat::unit_weights(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{degree_cv, degree_stats};

    #[test]
    fn four_regular() {
        let g = grid2d(8);
        let s = degree_stats(&g);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!(degree_cv(&g) < 1e-12);
    }

    #[test]
    fn symmetric() {
        assert!(grid2d(5).is_symmetric());
    }

    #[test]
    fn side_two_merges_wraparound() {
        // On a 2-torus, the wrap edge coincides with the direct edge.
        let g = grid2d(2);
        let s = degree_stats(&g);
        assert_eq!(s.max, 2);
    }

    #[test]
    fn vertex_count() {
        assert_eq!(grid2d(6).rows(), 36);
    }
}
