//! Erdős–Rényi `G(n, m)` generator: m uniformly random edges, no
//! exploitable structure. The worst case for partitioners — useful as a
//! control in the partitioning benchmarks.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::rmat::unit_weights;

/// Generates a symmetric `G(n, m)` graph (m undirected edge draws; fewer
/// distinct edges survive dedup and self-loop removal).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, 2 * m);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    unit_weights(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::degree_cv;

    #[test]
    fn deterministic_and_symmetric() {
        let a = erdos_renyi(200, 800, 1);
        let b = erdos_renyi(200, 800, 1);
        assert_eq!(a, b);
        assert!(a.is_symmetric());
    }

    #[test]
    fn edge_count_near_target() {
        let g = erdos_renyi(1000, 5000, 2);
        assert!(g.nnz() <= 10_000);
        assert!(g.nnz() > 9_000, "unexpectedly many collisions: {}", g.nnz());
    }

    #[test]
    fn low_degree_variance() {
        // Poisson-ish degrees: CV ≈ 1/sqrt(mean-degree), far below R-MAT.
        let g = erdos_renyi(2000, 20_000, 3);
        assert!(degree_cv(&g) < 0.5);
    }
}
