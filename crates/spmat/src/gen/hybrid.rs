//! Community-structured R-MAT hybrid: heavy-tailed degrees *within*
//! planted communities plus sparse random cross-community edges.
//!
//! Pure R-MAT graphs have no cuttable structure — partitioners can do
//! almost nothing on them — whereas the paper's real-world Reddit/Amazon
//! graphs are irregular *and* partitionable (SA+GVB gains ~2× on them).
//! This generator reproduces that combination: each block is an
//! independent R-MAT (irregular, hub-heavy), and blocks are stitched with
//! a thin layer of uniform random edges that form the unavoidable cut.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::rmat::unit_weights;

/// Parameters for [`community_rmat`].
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Number of planted communities.
    pub blocks: usize,
    /// log2 of each community's vertex count (`n = blocks · 2^block_scale`).
    pub block_scale: u32,
    /// Directed R-MAT edges per vertex within its community.
    pub edge_factor_in: usize,
    /// Expected cross-community degree per vertex.
    pub cross_degree: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates the hybrid graph; returns the adjacency and each vertex's
/// community id (communities are contiguous id ranges, matching the
/// R-MAT id-locality the datasets' prefix labels rely on).
pub fn community_rmat(cfg: HybridConfig) -> (Csr, Vec<u32>) {
    let bs = 1usize << cfg.block_scale;
    let n = cfg.blocks * bs;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut coo = Coo::with_capacity(n, n, 2 * n * cfg.edge_factor_in);

    // Within-block R-MAT edges (Graph500 skew), offset into the block.
    let (a, b, c) = (0.57, 0.19, 0.19);
    for blk in 0..cfg.blocks {
        let base = blk * bs;
        let m = bs * cfg.edge_factor_in;
        for _ in 0..m {
            let (mut r, mut cidx) = (0usize, 0usize);
            for level in (0..cfg.block_scale).rev() {
                let noise = 0.9 + 0.2 * rng.gen::<f64>();
                let aa = (a * noise).min(1.0);
                let u: f64 = rng.gen();
                let (dr, dc) = if u < aa {
                    (0, 0)
                } else if u < aa + b {
                    (0, 1)
                } else if u < aa + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                r |= dr << level;
                cidx |= dc << level;
            }
            if r != cidx {
                coo.push(base + r, base + cidx, 1.0);
                coo.push(base + cidx, base + r, 1.0);
            }
        }
    }
    // Cross-block uniform edges.
    let m_cross = ((n as f64) * cfg.cross_degree / 2.0).round() as usize;
    for _ in 0..m_cross {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u / bs != v / bs {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    let labels = (0..n).map(|v| (v / bs) as u32).collect();
    (unit_weights(coo.to_csr()), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::degree_cv;

    fn cfg(seed: u64) -> HybridConfig {
        HybridConfig {
            blocks: 8,
            block_scale: 6,
            edge_factor_in: 8,
            cross_degree: 1.0,
            seed,
        }
    }

    #[test]
    fn deterministic_and_symmetric() {
        let (a, la) = community_rmat(cfg(1));
        let (b, lb) = community_rmat(cfg(1));
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert!(a.is_symmetric());
    }

    #[test]
    fn irregular_but_partitionable() {
        let (g, labels) = community_rmat(cfg(2));
        // Irregular: high degree CV like pure R-MAT.
        assert!(degree_cv(&g) > 0.6, "cv {}", degree_cv(&g));
        // Partitionable: cross-community edges are a small fraction.
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v, _) in g.iter() {
            if labels[u] == labels[v] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 5 * across, "within {within} across {across}");
        assert!(across > 0, "no cut at all — too easy");
    }

    #[test]
    fn size_and_labels() {
        let (g, labels) = community_rmat(cfg(3));
        assert_eq!(g.rows(), 8 * 64);
        assert_eq!(labels.len(), 512);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[511], 7);
    }
}
