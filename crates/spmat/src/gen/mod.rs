//! Synthetic graph generators.
//!
//! The paper evaluates on Reddit, Amazon, Protein and Papers — datasets we
//! cannot ship. These generators produce scaled-down graphs with the same
//! *character*:
//!
//! * [`rmat`] — recursive-matrix graphs with heavy-tailed, irregular degree
//!   distributions (Amazon/Reddit/Papers analogues; hard for partitioners),
//! * [`sbm`] — planted-partition graphs with strong community structure
//!   (Protein analogue; partitioners drive the cut to near zero),
//! * [`erdos`] — Erdős–Rényi baselines with no exploitable structure,
//! * [`grid`] — 2-D torus meshes, the perfectly regular extreme.
//!
//! All generators are deterministic given a seed, return a **symmetric**
//! adjacency pattern with unit weights and no self-loops, and use the
//! crate's [`crate::Coo`] → [`crate::Csr`] pipeline.

pub mod erdos;
pub mod grid;
pub mod hybrid;
pub mod rmat;
pub mod sbm;

pub use erdos::erdos_renyi;
pub use grid::grid2d;
pub use hybrid::{community_rmat, HybridConfig};
pub use rmat::{rmat, RmatConfig};
pub use sbm::{sbm, SbmConfig};
