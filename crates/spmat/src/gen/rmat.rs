//! R-MAT (recursive matrix) graph generator (Chakrabarti et al., 2004).
//!
//! Produces graphs with heavy-tailed degree distributions and poor
//! community structure — the "irregular" regime where the paper reports
//! large communication imbalance (Amazon) and partitioner difficulty.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`rmat`].
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count (`n = 2^scale`).
    pub scale: u32,
    /// Directed edges sampled per vertex before symmetrization/dedup.
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to 1. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05).
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style skew with the given size and seed.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }
}

/// Generates a symmetric R-MAT graph. Self-loops are dropped and duplicate
/// edges merged, so the resulting edge count is somewhat below
/// `2 · n · edge_factor`.
pub fn rmat(cfg: RmatConfig) -> Csr {
    assert!(
        cfg.a + cfg.b + cfg.c <= 1.0 + 1e-12,
        "quadrant probabilities exceed 1"
    );
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut coo = Coo::with_capacity(n, n, 2 * m);
    // Mild per-level probability noise decorrelates the quadrant choice
    // across levels, avoiding the grid artifacts of pure R-MAT.
    for _ in 0..m {
        let (mut r, mut c) = (0usize, 0usize);
        for level in (0..cfg.scale).rev() {
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let a = (cfg.a * noise).min(1.0);
            let u: f64 = rng.gen();
            let (dr, dc) = if u < a {
                (0, 0)
            } else if u < a + cfg.b {
                (0, 1)
            } else if u < a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            c |= dc << level;
        }
        if r != c {
            coo.push(r, c, 1.0);
            coo.push(c, r, 1.0);
        }
    }
    // Merge duplicates into unit weights by converting and re-normalizing.
    unit_weights(coo.to_csr())
}

/// Clamps all stored values to 1.0 (duplicate edges merge to weight > 1 in
/// `to_csr`; adjacency patterns are unweighted).
pub(crate) fn unit_weights(m: Csr) -> Csr {
    let values = vec![1.0; m.nnz()];
    Csr::from_raw_parts(
        m.rows(),
        m.cols(),
        m.indptr().to_vec(),
        m.indices().to_vec(),
        values,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{degree_cv, degree_stats};

    #[test]
    fn deterministic_given_seed() {
        let a = rmat(RmatConfig::graph500(8, 8, 1));
        let b = rmat(RmatConfig::graph500(8, 8, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(RmatConfig::graph500(8, 8, 1));
        let b = rmat(RmatConfig::graph500(8, 8, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn symmetric_no_self_loops_unit_weights() {
        let g = rmat(RmatConfig::graph500(7, 6, 3));
        assert!(g.is_symmetric());
        for i in 0..g.rows() {
            assert_eq!(g.get(i, i), None, "self loop at {i}");
        }
        assert!(g.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn heavy_tail_degree_distribution() {
        let g = rmat(RmatConfig::graph500(10, 8, 4));
        let stats = degree_stats(&g);
        // Skewed generator: max degree far exceeds the mean and the
        // coefficient of variation is large.
        assert!(
            stats.max as f64 > 5.0 * stats.avg,
            "max {} avg {}",
            stats.max,
            stats.avg
        );
        assert!(degree_cv(&g) > 0.8);
    }

    #[test]
    fn edge_count_in_expected_range() {
        let g = rmat(RmatConfig::graph500(9, 8, 5));
        let n = 512usize;
        // Before dedup we sample n*8 directed edges, symmetrized to ≤ 2x.
        assert!(g.nnz() <= 2 * n * 8);
        assert!(g.nnz() >= n * 4, "too many collisions: {}", g.nnz());
    }
}
