//! Stochastic block model (planted partition) generator.
//!
//! Produces graphs with strong community structure: dense within blocks,
//! sparse across. This is the "regular / partitioner-friendly" regime — the
//! paper's Protein dataset, where a good partitioner drives the edgecut to
//! a few thousand edges out of hundreds of millions and SA+GVB wins by 14×.
//!
//! Sampling is done per block pair by drawing the number of edges from the
//! expected count and placing endpoints uniformly, which is O(edges) rather
//! than O(n²).

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::rmat::unit_weights;

/// Parameters for [`sbm`].
#[derive(Clone, Copy, Debug)]
pub struct SbmConfig {
    /// Total vertex count (split as evenly as possible across blocks).
    pub n: usize,
    /// Number of planted communities.
    pub blocks: usize,
    /// Expected within-block degree per vertex.
    pub avg_degree_in: f64,
    /// Expected cross-block degree per vertex.
    pub avg_degree_out: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a symmetric planted-partition graph and returns it together
/// with the ground-truth block id of every vertex (used as classification
/// labels by the datasets).
pub fn sbm(cfg: SbmConfig) -> (Csr, Vec<u32>) {
    assert!(
        cfg.blocks >= 1 && cfg.n >= cfg.blocks,
        "need at least one vertex per block"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = cfg.blocks;
    // Block boundaries: blocks of size ⌈n/k⌉ then ⌊n/k⌋.
    let bounds = block_bounds(cfg.n, k);
    let labels: Vec<u32> = {
        let mut l = vec![0u32; cfg.n];
        for (b, w) in bounds.windows(2).enumerate() {
            l[w[0]..w[1]].fill(b as u32);
        }
        l
    };

    let mut coo = Coo::new(cfg.n, cfg.n);
    // Within-block edges: each block contributes ≈ size·deg_in/2 edges.
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let size = hi - lo;
        if size < 2 {
            continue;
        }
        let m = ((size as f64) * cfg.avg_degree_in / 2.0).round() as usize;
        for _ in 0..m {
            let u = rng.gen_range(lo..hi);
            let v = rng.gen_range(lo..hi);
            if u != v {
                coo.push(u, v, 1.0);
                coo.push(v, u, 1.0);
            }
        }
    }
    // Cross-block edges: total ≈ n·deg_out/2, endpoints in distinct blocks.
    let m_out = ((cfg.n as f64) * cfg.avg_degree_out / 2.0).round() as usize;
    for _ in 0..m_out {
        let u = rng.gen_range(0..cfg.n);
        let v = rng.gen_range(0..cfg.n);
        if labels[u] != labels[v] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    (unit_weights(coo.to_csr()), labels)
}

/// Returns `blocks + 1` boundaries splitting `0..n` as evenly as possible.
pub fn block_bounds(n: usize, blocks: usize) -> Vec<usize> {
    let base = n / blocks;
    let extra = n % blocks;
    let mut bounds = Vec::with_capacity(blocks + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for b in 0..blocks {
        acc += base + usize::from(b < extra);
        bounds.push(acc);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> SbmConfig {
        SbmConfig {
            n: 400,
            blocks: 4,
            avg_degree_in: 20.0,
            avg_degree_out: 1.0,
            seed,
        }
    }

    #[test]
    fn deterministic() {
        let (a, la) = sbm(cfg(1));
        let (b, lb) = sbm(cfg(1));
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn labels_match_blocks() {
        let (_, labels) = sbm(cfg(2));
        assert_eq!(labels.len(), 400);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[399], 3);
        // 4 blocks of 100.
        for b in 0..4u32 {
            assert_eq!(labels.iter().filter(|&&l| l == b).count(), 100);
        }
    }

    #[test]
    fn community_structure_dominates() {
        let (g, labels) = sbm(cfg(3));
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v, _) in g.iter() {
            if labels[u] == labels[v] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 10 * across, "within {within} across {across}");
    }

    #[test]
    fn symmetric_unit_weights() {
        let (g, _) = sbm(cfg(4));
        assert!(g.is_symmetric());
        assert!(g.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn block_bounds_even_and_uneven() {
        assert_eq!(block_bounds(10, 2), vec![0, 5, 10]);
        assert_eq!(block_bounds(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(block_bounds(3, 3), vec![0, 1, 2, 3]);
    }
}
