//! Coordinate-format (triplet) sparse matrix builder.
//!
//! `Coo` is the mutable staging format: generators push `(row, col, val)`
//! triplets, then [`Coo::to_csr`] sorts, deduplicates (summing values of
//! duplicate coordinates) and produces an immutable [`crate::Csr`].

use crate::csr::Csr;

/// A sparse matrix in coordinate (triplet) format.
///
/// Invariants are intentionally loose — entries may be unsorted and may
/// contain duplicates until [`Coo::to_csr`] canonicalizes them.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Creates an empty `rows × cols` COO matrix.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `u32::MAX`, the index width used
    /// throughout this crate to halve index memory traffic.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty COO with capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        let mut c = Self::new(rows, cols);
        c.entries.reserve(nnz);
        c
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before deduplication).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends a triplet.
    ///
    /// # Panics
    /// Panics if `row`/`col` are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        self.entries.push((row as u32, col as u32, val));
    }

    /// Appends the mirror of every off-diagonal triplet, making the pattern
    /// symmetric. Values are mirrored as-is; duplicates merge in `to_csr`.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        let n = self.entries.len();
        for i in 0..n {
            let (r, c, v) = self.entries[i];
            if r != c {
                self.entries.push((c, r, v));
            }
        }
    }

    /// Iterates over raw (possibly duplicated) triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, sorting by `(row, col)` and summing duplicates.
    pub fn to_csr(&self) -> Csr {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut indptr = vec![0u64; self.rows + 1];
        for &(r, _, _) in &merged {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        let indices = merged.iter().map(|e| e.1).collect();
        let values = merged.iter().map(|e| e.2).collect();
        Csr::from_raw_parts(self.rows, self.cols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_roundtrip() {
        let coo = Coo::new(3, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(1, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), Some(3.5));
        assert_eq!(csr.get(1, 0), Some(1.0));
        assert_eq!(csr.get(0, 0), None);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 2, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 1]);
        assert_eq!(csr.row_cols(1), &[0]);
        assert_eq!(csr.row_cols(2), &[2]);
    }

    #[test]
    fn symmetrize_mirrors_offdiagonal() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(2, 2, 5.0);
        coo.symmetrize();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), Some(2.0));
        assert_eq!(csr.get(1, 0), Some(2.0));
        assert_eq!(csr.get(2, 2), Some(5.0)); // diagonal not doubled
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn empty_rows_have_valid_ptrs() {
        let mut coo = Coo::new(5, 5);
        coo.push(4, 0, 1.0);
        let csr = coo.to_csr();
        for i in 0..4 {
            assert_eq!(csr.row_cols(i).len(), 0);
        }
        assert_eq!(csr.row_cols(4), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut coo = Coo::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
