//! Dependency-free shared-memory worker pool for the local kernels.
//!
//! Every distributed rank's *local* compute (SpMM, GEMM, packing) runs
//! through this module. The design goals, in order:
//!
//! 1. **Determinism** — results must be bit-identical to the serial
//!    kernels at every thread count, so the elastic-restart bit-for-bit
//!    recovery guarantee survives. The scheduler therefore only decides
//!    *which worker* executes a chunk, never *how* a chunk computes:
//!    chunk boundaries are fixed functions of the problem size (not of
//!    the thread count), each output element is written by exactly one
//!    chunk, and within a chunk the accumulation order equals the serial
//!    kernel's.
//! 2. **No dependencies** — the workspace is offline; no rayon. Workers
//!    are `std::thread::scope` threads with an atomic work-stealing
//!    counter over the chunk list, so nnz-imbalanced chunks load-balance
//!    without any unsafe code.
//! 3. **Graceful serial fallback** — one thread, one chunk, or a small
//!    problem runs inline on the caller with zero scheduling overhead.
//!
//! The process-wide thread count is set by [`set_threads`] (CLI
//! `--threads`), defaulting to the `GNN_THREADS` environment variable and
//! then to [`std::thread::available_parallelism`]. Kernels with `_with`
//! variants also accept an explicit count, which tests use to compare
//! thread counts without touching the global.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread count; 0 means "auto" (env var, then hardware).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Hardware parallelism (1 when it cannot be determined). Queried once
/// and cached — kernels consult it on every dispatch.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Resolved "auto" thread count: `GNN_THREADS` if set to a positive
/// integer, otherwise the hardware parallelism. Read once and cached.
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::env::var("GNN_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(hardware_threads)
    })
}

/// Sets the process-wide kernel thread count (0 restores "auto").
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The thread count kernels use when not given an explicit one.
pub fn current_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => auto_threads(),
        n => n,
    }
}

/// Problems with fewer items than this run serially: below it, thread
/// spawn + scheduling costs more than the work itself.
pub const PAR_MIN_ITEMS: usize = 1 << 13;

/// Clamps a requested thread count to what a problem of `work_items`
/// total elements can usefully use: 1 when the problem is small, and
/// never more than the hardware parallelism — oversubscribed workers
/// just time-slice one core, which slows the kernel down and pollutes
/// speedup measurements (results are unaffected either way: chunk
/// boundaries don't depend on the worker count).
pub fn effective_threads(threads: usize, work_items: usize) -> usize {
    if work_items < PAR_MIN_ITEMS {
        1
    } else {
        threads.max(1).min(hardware_threads())
    }
}

/// Fixed chunk boundaries: `[lo, hi)` ranges of length `chunk` covering
/// `0..n` (last range may be shorter). Boundaries depend only on `n` and
/// `chunk`, never on the thread count — the determinism invariant.
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and runs
/// `f(chunk_index, chunk)` on every chunk exactly once, distributed over
/// `threads` workers by an atomic work-stealing counter.
///
/// Chunk `i` covers `data[i*chunk_len .. min((i+1)*chunk_len, len)]`, so
/// callers can recover the global offset from the index. With
/// `threads <= 1` or a single chunk, everything runs inline.
///
/// # Panics
/// Panics if `chunk_len == 0` and `data` is non-empty.
pub fn for_each_chunk_mut<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk length must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    // Each chunk is claimed by exactly one worker via `next`; the mutex
    // per slot only hands out the `&mut` once (uncontended by design).
    let slots: Vec<Mutex<Option<&mut [T]>>> = data
        .chunks_mut(chunk_len)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n_chunks);
    std::thread::scope(|scope| {
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            let chunk = slots[i]
                .lock()
                .unwrap()
                .take()
                .expect("chunk claimed twice");
            f(i, chunk);
        };
        for _ in 1..workers {
            scope.spawn(work);
        }
        work(); // the calling thread is worker 0
    });
}

/// Runs `f(i)` for every `i in 0..n` exactly once across `threads`
/// workers (atomic work-stealing; inline when serial). For read-only
/// fan-out where the closure writes through its own channel.
pub fn for_each_index<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    if threads <= 1 || n == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i);
        };
        for _ in 1..workers {
            scope.spawn(work);
        }
        work();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(chunk_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunk_ranges(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(chunk_ranges(3, 100), vec![(0, 3)]);
    }

    #[test]
    fn every_chunk_visited_once_any_thread_count() {
        for threads in [1, 2, 4, 7, 16] {
            let mut data = vec![0u32; 1000];
            for_each_chunk_mut(threads, &mut data, 7, |_i, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
            assert!(data.iter().all(|&v| v == 1), "threads={threads}");
        }
    }

    #[test]
    fn chunk_index_maps_to_offset() {
        let mut data = vec![0usize; 103];
        for_each_chunk_mut(4, &mut data, 10, |i, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 10 + k;
            }
        });
        let expect: Vec<usize> = (0..103).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn empty_data_is_noop() {
        let mut data: Vec<u8> = Vec::new();
        for_each_chunk_mut(4, &mut data, 0, |_, _| panic!("must not run"));
    }

    #[test]
    fn for_each_index_counts() {
        for threads in [1, 3, 9] {
            let hits = AtomicU64::new(0);
            for_each_index(threads, 100, |i| {
                hits.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 5050, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let mut data = vec![0u8; 3];
        for_each_chunk_mut(64, &mut data, 1, |_, c| c[0] = 1);
        assert_eq!(data, vec![1, 1, 1]);
    }

    #[test]
    fn effective_threads_serializes_small_work() {
        assert_eq!(effective_threads(8, 10), 1);
        assert_eq!(
            effective_threads(8, PAR_MIN_ITEMS),
            8.min(hardware_threads())
        );
        assert_eq!(effective_threads(0, PAR_MIN_ITEMS), 1);
    }

    #[test]
    fn effective_threads_clamps_to_hardware() {
        let hw = hardware_threads();
        assert!(hw >= 1);
        assert_eq!(effective_threads(10_000, PAR_MIN_ITEMS), hw);
        // At or below the hardware count the request is honored.
        assert_eq!(effective_threads(1, PAR_MIN_ITEMS), 1);
        assert_eq!(effective_threads(hw, PAR_MIN_ITEMS), hw);
    }

    #[test]
    fn set_and_read_threads() {
        // Global is racy across parallel tests by design (results are
        // thread-count independent); just check the API round-trips.
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }
}
