//! Compressed sparse row matrices.
//!
//! `Csr` is the immutable workhorse format. Beyond the standard accessors
//! it provides the block operations the distributed algorithms are built
//! from:
//!
//! * [`Csr::row_block`] — extract a contiguous block of rows (a rank's
//!   local `Aᵀᵢ` in the 1D/1.5D distributions),
//! * [`Csr::distinct_cols_in_range`] — the `NnzCols(i, j)` sets of the
//!   paper: which columns of a block are non-empty within a peer's column
//!   range, i.e. which rows of `H` must be communicated,
//! * [`Csr::remap_cols`] — compact global column ids to local positions so
//!   the local SpMM can run against a gathered, compacted `H̃`,
//! * [`Csr::permute_symmetric`] — apply a partitioner's vertex relabeling.

/// An immutable sparse matrix in CSR format.
///
/// Invariants (checked in [`Csr::from_raw_parts`]):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, monotone non-decreasing;
/// * `indices`/`values` have length `indptr[rows]`;
/// * within each row, `indices` are strictly increasing and `< cols`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<u64>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR from raw parts, validating all invariants.
    ///
    /// # Panics
    /// Panics if any structural invariant is violated.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length mismatch");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap() as usize,
            indices.len(),
            "indptr end mismatch"
        );
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr not monotone at row {r}");
            let (lo, hi) = (indptr[r] as usize, indptr[r + 1] as usize);
            for k in lo..hi {
                assert!(
                    (indices[k] as usize) < cols,
                    "column out of bounds in row {r}"
                );
                if k > lo {
                    assert!(
                        indices[k - 1] < indices[k],
                        "columns not strictly increasing in row {r}"
                    );
                }
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty `rows × cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n as u64).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// Column indices, row-major concatenated.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values, aligned with [`Csr::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r] as usize..self.indptr[r + 1] as usize]
    }

    /// Values of row `r`.
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.values[self.indptr[r] as usize..self.indptr[r + 1] as usize]
    }

    /// Number of entries in row `r` (the vertex degree for adjacency
    /// matrices).
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.indptr[r + 1] - self.indptr[r]) as usize
    }

    /// Value at `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let cols = self.row_cols(r);
        cols.binary_search(&(c as u32))
            .ok()
            .map(|k| self.row_vals(r)[k])
    }

    /// Returns true when the sparsity pattern and values are symmetric.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                if self.get(c as usize, r) != Some(v) {
                    return false;
                }
            }
        }
        true
    }

    /// Transposes the matrix (O(nnz) counting sort).
    pub fn transpose(&self) -> Csr {
        let mut indptr = vec![0u64; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            indptr[i + 1] += indptr[i];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for r in 0..self.rows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                let k = cursor[c as usize] as usize;
                indices[k] = r as u32;
                values[k] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Applies the symmetric permutation `B[perm[i], perm[j]] = A[i, j]`.
    ///
    /// `perm` maps *old* index → *new* index, as produced by a partitioner
    /// relabeling vertices so each part's vertices are contiguous.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute_symmetric(&self, perm: &[u32]) -> Csr {
        assert_eq!(
            self.rows, self.cols,
            "symmetric permutation requires square matrix"
        );
        assert_eq!(perm.len(), self.rows);
        let n = self.rows;
        // inverse: new index -> old index
        let mut inv = vec![u32::MAX; n];
        for (old, &new) in perm.iter().enumerate() {
            assert!(
                (new as usize) < n && inv[new as usize] == u32::MAX,
                "perm is not a permutation"
            );
            inv[new as usize] = old as u32;
        }
        let mut indptr = vec![0u64; n + 1];
        for new_r in 0..n {
            indptr[new_r + 1] = indptr[new_r] + self.row_nnz(inv[new_r] as usize) as u64;
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for new_r in 0..n {
            let old_r = inv[new_r] as usize;
            scratch.clear();
            scratch.extend(
                self.row_cols(old_r)
                    .iter()
                    .zip(self.row_vals(old_r))
                    .map(|(&c, &v)| (perm[c as usize], v)),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let base = indptr[new_r] as usize;
            for (k, &(c, v)) in scratch.iter().enumerate() {
                indices[base + k] = c;
                values[base + k] = v;
            }
        }
        Csr {
            rows: n,
            cols: n,
            indptr,
            indices,
            values,
        }
    }

    /// Extracts rows `lo..hi` as a new CSR with the *same* column space
    /// (global column ids are preserved). This is a rank's local block row
    /// `Aᵀᵢ` in the 1D distribution.
    pub fn row_block(&self, lo: usize, hi: usize) -> Csr {
        assert!(lo <= hi && hi <= self.rows);
        let base = self.indptr[lo];
        let indptr: Vec<u64> = self.indptr[lo..=hi].iter().map(|&p| p - base).collect();
        let indices = self.indices[self.indptr[lo] as usize..self.indptr[hi] as usize].to_vec();
        let values = self.values[self.indptr[lo] as usize..self.indptr[hi] as usize].to_vec();
        Csr {
            rows: hi - lo,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Restricts the matrix to columns `[col_lo, col_hi)`, preserving the
    /// row count and the *global* column space (entries outside the range
    /// are dropped; indices are unchanged). Combined with
    /// [`Csr::row_block`] this extracts the 2D sub-blocks `Aᵀᵢⱼ` the
    /// 1.5D/2D algorithms stage over. O(rows·log(nnz/row) + kept).
    pub fn col_range_block(&self, col_lo: usize, col_hi: usize) -> Csr {
        assert!(col_lo <= col_hi && col_hi <= self.cols);
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0u64);
        for r in 0..self.rows {
            let cols = self.row_cols(r);
            let vals = self.row_vals(r);
            // Columns are sorted within a row: binary-search the window.
            let start = cols.partition_point(|&c| (c as usize) < col_lo);
            let end = cols.partition_point(|&c| (c as usize) < col_hi);
            indices.extend_from_slice(&cols[start..end]);
            values.extend_from_slice(&vals[start..end]);
            indptr.push(indices.len() as u64);
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// The sorted set of distinct columns with at least one nonzero in this
    /// matrix whose index lies in `[col_lo, col_hi)`.
    ///
    /// Applied to a block row `Aᵀᵢ` with a peer `j`'s column range, this is
    /// exactly the paper's `NnzCols(i, j)`: the rows of `Hⱼ` that rank `i`
    /// must receive from rank `j`.
    pub fn distinct_cols_in_range(&self, col_lo: usize, col_hi: usize) -> Vec<u32> {
        debug_assert!(col_lo <= col_hi && col_hi <= self.cols);
        let mut seen = vec![false; col_hi - col_lo];
        let mut count = 0usize;
        for &c in &self.indices {
            let c = c as usize;
            if c >= col_lo && c < col_hi && !seen[c - col_lo] {
                seen[c - col_lo] = true;
                count += 1;
            }
        }
        let mut out = Vec::with_capacity(count);
        for (off, &s) in seen.iter().enumerate() {
            if s {
                out.push((col_lo + off) as u32);
            }
        }
        out
    }

    /// The sorted set of all distinct columns that appear in this matrix.
    pub fn distinct_cols(&self) -> Vec<u32> {
        self.distinct_cols_in_range(0, self.cols)
    }

    /// Rewrites column indices through `new_of_old`, a sorted list of the
    /// distinct global columns this matrix touches; column `c` becomes the
    /// position of `c` in `new_of_old`. The result has
    /// `cols == new_of_old.len()` and is the compacted local matrix to
    /// multiply against a gathered, compacted `H̃`.
    ///
    /// # Panics
    /// Panics (debug) if some stored column is missing from `new_of_old`.
    pub fn remap_cols(&self, new_of_old: &[u32]) -> Csr {
        // Dense scatter map: O(cols) memory but O(1) lookups; the matrices
        // we remap are block rows whose column space is the full graph, so
        // this is at most one u32 per vertex.
        let mut map = vec![u32::MAX; self.cols];
        for (new, &old) in new_of_old.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let indices: Vec<u32> = self
            .indices
            .iter()
            .map(|&c| {
                let m = map[c as usize];
                debug_assert!(m != u32::MAX, "column {c} not present in remap list");
                m
            })
            .collect();
        Csr {
            rows: self.rows,
            cols: new_of_old.len(),
            indptr: self.indptr.clone(),
            indices,
            values: self.values.clone(),
        }
    }

    /// Dense representation, for tests and tiny examples only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for (r, row) in out.iter_mut().enumerate() {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                row[c as usize] = v;
            }
        }
        out
    }

    /// Iterates all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr {
        // 4x4:
        // [ .  1  .  2 ]
        // [ 3  .  .  . ]
        // [ .  .  .  . ]
        // [ 4  .  5  . ]
        let mut c = Coo::new(4, 4);
        c.push(0, 1, 1.0);
        c.push(0, 3, 2.0);
        c.push(1, 0, 3.0);
        c.push(3, 0, 4.0);
        c.push(3, 2, 5.0);
        c.to_csr()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_cols(0), &[1, 3]);
        assert_eq!(m.row_vals(3), &[4.0, 5.0]);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.get(3, 2), Some(5.0));
        assert_eq!(m.get(2, 2), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(3.0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let mut c = Coo::new(2, 3);
        c.push(0, 2, 7.0);
        c.push(1, 0, 8.0);
        let m = c.to_csr();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), Some(7.0));
        assert_eq!(t.get(0, 1), Some(8.0));
    }

    #[test]
    fn identity_is_symmetric() {
        let i = Csr::identity(5);
        assert!(i.is_symmetric());
        assert_eq!(i.nnz(), 5);
        assert_eq!(i.get(3, 3), Some(1.0));
    }

    #[test]
    fn symmetric_permutation_preserves_entries() {
        let m = sample();
        let perm = vec![2u32, 0, 3, 1]; // old -> new
        let p = m.permute_symmetric(&perm);
        for (r, c, v) in m.iter() {
            assert_eq!(p.get(perm[r] as usize, perm[c] as usize), Some(v));
        }
        assert_eq!(p.nnz(), m.nnz());
    }

    #[test]
    fn identity_permutation_is_noop() {
        let m = sample();
        let perm: Vec<u32> = (0..4).collect();
        assert_eq!(m.permute_symmetric(&perm), m);
    }

    #[test]
    fn row_block_preserves_column_space() {
        let m = sample();
        let b = m.row_block(1, 4);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 4);
        assert_eq!(b.get(0, 0), Some(3.0)); // old row 1
        assert_eq!(b.get(2, 2), Some(5.0)); // old row 3
    }

    #[test]
    fn distinct_cols_in_range_matches_nnzcols_definition() {
        let m = sample();
        // Columns with nonzeros: 0 (rows 1,3), 1 (row 0), 2 (row 3), 3 (row 0).
        assert_eq!(m.distinct_cols_in_range(0, 4), vec![0, 1, 2, 3]);
        assert_eq!(m.distinct_cols_in_range(0, 2), vec![0, 1]);
        assert_eq!(m.distinct_cols_in_range(2, 4), vec![2, 3]);
        let b = m.row_block(0, 1); // only row 0: cols 1, 3
        assert_eq!(b.distinct_cols_in_range(0, 2), vec![1]);
        assert_eq!(b.distinct_cols_in_range(2, 4), vec![3]);
    }

    #[test]
    fn col_range_block_keeps_window_only() {
        let m = sample();
        let b = m.col_range_block(1, 3); // keep columns 1 and 2
        assert_eq!(b.rows(), 4);
        assert_eq!(b.cols(), 4); // global column space preserved
        assert_eq!(b.get(0, 1), Some(1.0));
        assert_eq!(b.get(3, 2), Some(5.0));
        assert_eq!(b.get(0, 3), None); // outside window dropped
        assert_eq!(b.get(1, 0), None);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn col_range_blocks_partition_nnz() {
        let m = sample();
        let total: usize = [(0, 2), (2, 3), (3, 4)]
            .iter()
            .map(|&(l, h)| m.col_range_block(l, h).nnz())
            .sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn row_then_col_block_commutes() {
        let m = sample();
        let a = m.row_block(0, 2).col_range_block(1, 4);
        let mut direct_entries: Vec<(usize, usize, f64)> = m
            .iter()
            .filter(|&(r, c, _)| r < 2 && (1..4).contains(&c))
            .collect();
        let got: Vec<(usize, usize, f64)> = a.iter().collect();
        direct_entries.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(got, direct_entries);
    }

    #[test]
    fn remap_cols_compacts() {
        let m = sample().row_block(0, 1); // cols 1 and 3
        let distinct = m.distinct_cols();
        assert_eq!(distinct, vec![1, 3]);
        let compact = m.remap_cols(&distinct);
        assert_eq!(compact.cols(), 2);
        assert_eq!(compact.get(0, 0), Some(1.0));
        assert_eq!(compact.get(0, 1), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        sample().permute_symmetric(&[0, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn invalid_indptr_panics() {
        Csr::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
    }
}
