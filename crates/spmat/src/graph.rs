//! Graph-level helpers on top of CSR adjacency matrices: the GCN
//! normalization `Â = D^{-1/2}(A + I)D^{-1/2}` and structural statistics
//! used by the dataset tables.

use crate::coo::Coo;
use crate::csr::Csr;

/// Applies the Kipf–Welling GCN normalization: adds self-loops, then
/// symmetrically scales by inverse square-root degrees, producing the
/// "modified adjacency matrix" `A` the paper's equations multiply with.
///
/// # Panics
/// Panics if `adj` is not square.
pub fn gcn_normalize(adj: &Csr) -> Csr {
    assert_eq!(adj.rows(), adj.cols(), "adjacency matrix must be square");
    let n = adj.rows();
    let mut coo = Coo::with_capacity(n, n, adj.nnz() + n);
    for (r, c, v) in adj.iter() {
        if r != c {
            coo.push(r, c, v);
        }
    }
    for i in 0..n {
        coo.push(i, i, 1.0); // self loop (replaces any existing diagonal)
    }
    let with_loops = coo.to_csr();

    let mut inv_sqrt_deg = vec![0.0f64; n];
    for (i, d) in inv_sqrt_deg.iter_mut().enumerate() {
        let deg: f64 = with_loops.row_vals(i).iter().sum();
        *d = 1.0 / deg.sqrt();
    }
    let mut out = Coo::with_capacity(n, n, with_loops.nnz());
    for (r, c, v) in with_loops.iter() {
        out.push(r, c, v * inv_sqrt_deg[r] * inv_sqrt_deg[c]);
    }
    out.to_csr()
}

/// Summary statistics of an adjacency matrix (Table 3-style reporting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum row nonzero count.
    pub min: usize,
    /// Maximum row nonzero count.
    pub max: usize,
    /// Mean row nonzero count.
    pub avg: f64,
    /// Number of rows with no nonzeros (isolated vertices).
    pub isolated: usize,
}

/// Computes degree statistics over the rows of `adj`.
pub fn degree_stats(adj: &Csr) -> DegreeStats {
    let n = adj.rows();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            avg: 0.0,
            isolated: 0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut isolated = 0usize;
    for r in 0..n {
        let d = adj.row_nnz(r);
        min = min.min(d);
        max = max.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        min,
        max,
        avg: adj.nnz() as f64 / n as f64,
        isolated,
    }
}

/// Coefficient of variation of row degrees: a scalar "irregularity" score.
/// R-MAT graphs (Amazon/Reddit analogues) score high; planted-partition
/// graphs (Protein analogue) score low — this is the property the paper
/// says determines how hard the partitioner's job is.
pub fn degree_cv(adj: &Csr) -> f64 {
    let n = adj.rows();
    if n == 0 {
        return 0.0;
    }
    let mean = adj.nnz() as f64 / n as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = (0..n)
        .map(|r| {
            let d = adj.row_nnz(r) as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn normalize_adds_self_loops() {
        let a = path_graph(3);
        let norm = gcn_normalize(&a);
        for i in 0..3 {
            assert!(norm.get(i, i).is_some(), "diagonal missing at {i}");
        }
        assert_eq!(norm.nnz(), a.nnz() + 3);
    }

    #[test]
    fn normalize_is_symmetric_with_bounded_entries() {
        let a = path_graph(5);
        let norm = gcn_normalize(&a);
        assert!(norm.is_symmetric());
        // Entries of D^{-1/2}(A+I)D^{-1/2} lie in (0, 1] for unit weights.
        for &v in norm.values() {
            assert!(v > 0.0 && v <= 1.0 + 1e-12, "entry {v} out of (0, 1]");
        }
    }

    #[test]
    fn normalize_two_cycle_values() {
        // Two vertices with one edge: degrees with loops are 2, so every
        // entry of Â is 1/2.
        let a = path_graph(2);
        let norm = gcn_normalize(&a);
        for r in 0..2 {
            for c in 0..2 {
                assert!((norm.get(r, c).unwrap() - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stats_on_path() {
        let a = path_graph(4);
        let s = degree_stats(&a);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.avg - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_for_regular_graph() {
        // A 4-cycle is 2-regular.
        let mut coo = Coo::new(4, 4);
        for i in 0..4 {
            let j = (i + 1) % 4;
            coo.push(i, j, 1.0);
            coo.push(j, i, 1.0);
        }
        assert!(degree_cv(&coo.to_csr()) < 1e-12);
    }

    #[test]
    fn cv_positive_for_star() {
        let mut coo = Coo::new(5, 5);
        for i in 1..5 {
            coo.push(0, i, 1.0);
            coo.push(i, 0, 1.0);
        }
        // Degrees 4,1,1,1,1: mean 1.6, std 1.2 → CV = 0.75.
        assert!((degree_cv(&coo.to_csr()) - 0.75).abs() < 1e-12);
    }
}
