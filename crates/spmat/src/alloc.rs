//! Cache-line-aligned `f64` buffers.
//!
//! [`AVec`] is a growable `f64` buffer whose allocation is always
//! 64-byte aligned — one cache line, and a superset of every SIMD
//! vector alignment in use (32 B for AVX2, 16 B for NEON). Matrices
//! backed by it start every row on an aligned address whenever the row
//! stride is a multiple of 8 `f64`s, which covers the specialized
//! feature widths 32/64/128 — so the kernel layer's vector loads on
//! row starts never straddle a cache line.
//!
//! Implementation: a `Vec` of 64-byte [`Lane`]s (`#[repr(align(64))]`
//! wrappers around `[f64; 8]`) plus a logical element length. Allocation
//! and deallocation both happen through `Vec<Lane>` with the same
//! layout, so there is no hand-rolled allocator code to get wrong; the
//! only `unsafe` is the contiguous reinterpretation of the lane storage
//! as a flat `[f64]`, which is sound because `Lane` is a `repr(C)`
//! array wrapper with size == alignment == 64 (stride leaves no gaps).

use std::ops::{Deref, DerefMut};

/// `f64` elements per cache line.
const LANE: usize = 8;

/// One 64-byte-aligned cache line of 8 `f64`s.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Lane([f64; LANE]);

const ZERO_LANE: Lane = Lane([0.0; LANE]);

/// A 64-byte-aligned growable `f64` buffer (see the module docs).
#[derive(Clone, Default)]
pub struct AVec {
    lanes: Vec<Lane>,
    len: usize,
}

impl AVec {
    /// An empty buffer (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let mut v = Self::new();
        v.resize_zeroed(len);
        v
    }

    /// An aligned copy of `src`.
    pub fn from_slice(src: &[f64]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.as_mut_slice().copy_from_slice(src);
        v
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements the current allocation can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.lanes.capacity() * LANE
    }

    /// Drops all elements, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.lanes.clear();
        self.len = 0;
    }

    /// Reserves capacity for at least `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        let need = (self.len + additional).div_ceil(LANE);
        self.lanes.reserve(need.saturating_sub(self.lanes.len()));
    }

    /// Resets the buffer to exactly `len` **zero** elements (the pooled
    /// "take a fresh zeroed matrix" operation).
    pub fn resize_zeroed(&mut self, len: usize) {
        self.lanes.clear();
        self.lanes.resize(len.div_ceil(LANE), ZERO_LANE);
        self.len = len;
    }

    /// Appends a copy of `src`.
    pub fn extend_from_slice(&mut self, src: &[f64]) {
        let old = self.len;
        // Growing by whole zeroed lanes keeps the tail padding defined.
        self.lanes
            .resize((old + src.len()).div_ceil(LANE), ZERO_LANE);
        self.len = old + src.len();
        self.as_mut_slice()[old..].copy_from_slice(src);
    }

    /// The elements as a flat slice (also via `Deref`).
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `lanes` stores `len.div_ceil(8)` contiguous `Lane`s;
        // `Lane` is a repr(C) `[f64; 8]` wrapper with size == stride ==
        // 64, so the storage is `lanes.len() * 8 >= len` contiguous,
        // initialized `f64`s starting at an 8-byte-aligned (in fact
        // 64-byte-aligned) address.
        unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast::<f64>(), self.len) }
    }

    /// The elements as a flat mutable slice (also via `DerefMut`).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: see `as_slice`; `&mut self` gives exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast::<f64>(), self.len) }
    }

    /// Copies out into a plain `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }
}

impl Deref for AVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for AVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[f64]> for AVec {
    fn from(src: &[f64]) -> Self {
        Self::from_slice(src)
    }
}

impl From<Vec<f64>> for AVec {
    fn from(src: Vec<f64>) -> Self {
        Self::from_slice(&src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_64_byte_aligned() {
        for len in [1usize, 7, 8, 9, 63, 64, 1000] {
            let v = AVec::zeroed(len);
            assert_eq!(v.as_slice().as_ptr() as usize % 64, 0, "len={len}");
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn empty_is_cheap_and_valid() {
        let v = AVec::new();
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        assert_eq!(v.capacity(), 0);
    }

    #[test]
    fn from_slice_roundtrips() {
        let src = [1.0, -2.5, 3.25, 4.0, 5.0];
        let v = AVec::from_slice(&src);
        assert_eq!(v.as_slice(), &src);
        assert_eq!(v.to_vec(), src.to_vec());
    }

    #[test]
    fn extend_and_mutate() {
        let mut v = AVec::from_slice(&[1.0, 2.0]);
        v.extend_from_slice(&[3.0; 9]);
        assert_eq!(v.len(), 11);
        assert_eq!(v[1], 2.0);
        v[10] = 7.0;
        assert_eq!(v.as_slice()[10], 7.0);
    }

    #[test]
    fn resize_zeroed_rezeroes_reused_storage() {
        let mut v = AVec::from_slice(&[9.0; 32]);
        let cap = v.capacity();
        v.resize_zeroed(16);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.capacity(), cap, "reuses the allocation");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut v = AVec::zeroed(100);
        v.clear();
        assert!(v.is_empty());
        assert!(v.capacity() >= 100);
    }

    #[test]
    fn equality_ignores_padding() {
        let a = AVec::from_slice(&[1.0, 2.0, 3.0]);
        let mut b = AVec::zeroed(11);
        b.resize_zeroed(3);
        b.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
