//! Matrix Market (`.mtx`) I/O for sparse matrices.
//!
//! The paper's datasets ship as edge lists / sparse matrices; Matrix
//! Market is the lingua franca (SuiteSparse, HipMCL, OGB converters all
//! speak it). Supported flavors: `matrix coordinate
//! real|pattern|integer general|symmetric`, 1-based indices, `%` comments.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::csr::Csr;

/// I/O or format error.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "mtx io error: {e}"),
            MtxError::Parse(m) => write!(f, "mtx parse error: {m}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// Reads a Matrix Market file into CSR.
///
/// `symmetric` files are expanded (each off-diagonal entry mirrored);
/// `pattern` files get unit values. Duplicate entries are summed.
pub fn read_mtx(path: &Path) -> Result<Csr, MtxError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();

    // Header.
    reader.read_line(&mut line)?;
    let header = line.trim().to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(parse_err(format!("unsupported header: {header}")));
    }
    let pattern = header.contains(" pattern");
    let symmetric = header.contains(" symmetric");
    if !header.contains(" general") && !symmetric {
        return Err(parse_err(
            "only 'general' and 'symmetric' layouts supported",
        ));
    }

    // Size line (skipping comments).
    let (rows, cols, nnz) = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_err("missing size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let rows: usize = it
            .next()
            .ok_or_else(|| parse_err("size line too short"))?
            .parse()
            .map_err(|e| parse_err(format!("bad row count: {e}")))?;
        let cols: usize = it
            .next()
            .ok_or_else(|| parse_err("size line too short"))?
            .parse()
            .map_err(|e| parse_err(format!("bad col count: {e}")))?;
        let nnz: usize = it
            .next()
            .ok_or_else(|| parse_err("size line too short"))?
            .parse()
            .map_err(|e| parse_err(format!("bad nnz count: {e}")))?;
        break (rows, cols, nnz);
    };

    let mut coo = Coo::with_capacity(rows, cols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("entry line too short"))?
            .parse()
            .map_err(|e| parse_err(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("entry line too short"))?
            .parse()
            .map_err(|e| parse_err(format!("bad col index: {e}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|e| parse_err(format!("bad value: {e}")))?
        };
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(format!("index ({r}, {c}) out of bounds")));
        }
        coo.push(r - 1, c - 1, v);
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix as `matrix coordinate real general` (1-based).
pub fn write_mtx(path: &Path, m: &Csr) -> Result<(), MtxError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by dist-gnn spmat")?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {v}", r + 1, c + 1)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid2d;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spmat-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = grid2d(6);
        let path = tmp("roundtrip.mtx");
        write_mtx(&path, &m).unwrap();
        let back = read_mtx(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reads_symmetric_pattern() {
        let path = tmp("sym.mtx");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "%%MatrixMarket matrix coordinate pattern symmetric").unwrap();
        writeln!(f, "% a triangle").unwrap();
        writeln!(f, "3 3 3").unwrap();
        writeln!(f, "2 1").unwrap();
        writeln!(f, "3 1").unwrap();
        writeln!(f, "3 2").unwrap();
        drop(f);
        let m = read_mtx(&path).unwrap();
        assert_eq!(m.nnz(), 6);
        assert!(m.is_symmetric());
        assert_eq!(m.get(0, 1), Some(1.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_header() {
        let path = tmp("bad.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
        )
        .unwrap();
        assert!(matches!(read_mtx(&path), Err(MtxError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_bounds_index() {
        let path = tmp("oob.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
        )
        .unwrap();
        assert!(matches!(read_mtx(&path), Err(MtxError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("trunc.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
        )
        .unwrap();
        assert!(matches!(read_mtx(&path), Err(MtxError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_mtx(Path::new("/nonexistent/x.mtx")),
            Err(MtxError::Io(_))
        ));
    }
}
