//! x86_64 AVX2(+FMA) kernels: 4 × f64 lanes, register-blocked output
//! tiles.
//!
//! Strict mode vectorizes **across output elements only**: a 256-bit
//! accumulator holds 4 independent per-element chains, each updated
//! with a separately rounded multiply then add (`_mm256_mul_pd` +
//! `_mm256_add_pd`) in the same source order as the scalar loop — so
//! every lane is bit-identical to the scalar oracle. Fast mode swaps
//! the pair for `_mm256_fmadd_pd` (single rounding) and is covered by
//! the documented tolerance instead.
//!
//! The SpMM/GEMM row kernels walk the feature dimension in 32-column
//! register blocks (8 accumulators + a broadcast + a load = 10 of the
//! 16 ymm registers): the common widths 32/64/128 decompose into 1/2/4
//! full blocks with no remainder, which is exactly the
//! const-generic-specialized shape ([`super::SPECIALIZED_WIDTHS`]).
//! All loads/stores are unaligned-tolerant (`loadu`/`storeu`);
//! alignment of [`crate::alloc::AVec`]-backed matrices just makes them
//! faster.
//!
//! # Safety
//!
//! Every function here is `#[target_feature(enable = "avx2,fma")]` and
//! must only be called after [`super::Backend::Avx2.supported()`]
//! returned true — the dispatcher guarantees this.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

/// One SpMM output row: `out_row[0..f] += Σ vals[k] · h[cols[k]·f ..]`.
///
/// # Safety
/// Requires AVX2+FMA; call only after [`super::Backend::Avx2`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn spmm_row(
    cols: &[u32],
    vals: &[f64],
    h: &[f64],
    f: usize,
    out_row: &mut [f64],
    fast: bool,
) {
    debug_assert_eq!(out_row.len(), f);
    let mut j = 0;
    while j + 32 <= f {
        spmm_block::<8>(cols, vals, h, f, out_row, j, fast);
        j += 32;
    }
    while j + 4 <= f {
        spmm_block::<1>(cols, vals, h, f, out_row, j, fast);
        j += 4;
    }
    if j < f {
        // Scalar tail (< 4 lanes), same per-element chains as the oracle.
        for (&c, &v) in cols.iter().zip(vals) {
            let base = c as usize * f;
            for jj in j..f {
                out_row[jj] += v * h[base + jj];
            }
        }
    }
}

/// A `T`-accumulator (4·T columns) SpMM register block at column
/// offset `j`: load the output tile once, stream every nonzero through
/// it, store once.
#[target_feature(enable = "avx2,fma")]
unsafe fn spmm_block<const T: usize>(
    cols: &[u32],
    vals: &[f64],
    h: &[f64],
    f: usize,
    out_row: &mut [f64],
    j: usize,
    fast: bool,
) {
    debug_assert!(j + 4 * T <= f);
    let op = out_row.as_mut_ptr().add(j);
    let mut acc = [_mm256_setzero_pd(); T];
    for (t, a) in acc.iter_mut().enumerate() {
        *a = _mm256_loadu_pd(op.add(4 * t));
    }
    let hp = h.as_ptr();
    if fast {
        for (&c, &v) in cols.iter().zip(vals) {
            let base = hp.add(c as usize * f + j);
            let vv = _mm256_set1_pd(v);
            for (t, a) in acc.iter_mut().enumerate() {
                *a = _mm256_fmadd_pd(vv, _mm256_loadu_pd(base.add(4 * t)), *a);
            }
        }
    } else {
        for (&c, &v) in cols.iter().zip(vals) {
            let base = hp.add(c as usize * f + j);
            let vv = _mm256_set1_pd(v);
            for (t, a) in acc.iter_mut().enumerate() {
                *a = _mm256_add_pd(*a, _mm256_mul_pd(vv, _mm256_loadu_pd(base.add(4 * t))));
            }
        }
    }
    for (t, a) in acc.iter().enumerate() {
        _mm256_storeu_pd(op.add(4 * t), *a);
    }
}

/// One GEMM output row from zero: `out_row = Σ_k a_row[k] · b_row(k)`,
/// ascending `k`, exact zeros skipped.
///
/// # Safety
/// Requires AVX2+FMA; call only after [`super::Backend::Avx2`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemm_row(a_row: &[f64], b: &[f64], n: usize, out_row: &mut [f64], fast: bool) {
    debug_assert_eq!(out_row.len(), n);
    let mut j = 0;
    while j + 32 <= n {
        gemm_block::<8>(a_row, b, n, out_row, j, fast);
        j += 32;
    }
    while j + 4 <= n {
        gemm_block::<1>(a_row, b, n, out_row, j, fast);
        j += 4;
    }
    if j < n {
        for o in &mut out_row[j..] {
            *o = 0.0;
        }
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let base = k * n;
            for jj in j..n {
                out_row[jj] += a * b[base + jj];
            }
        }
    }
}

/// A `T`-accumulator GEMM register block: accumulators start at zero
/// and the output tile is written exactly once.
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_block<const T: usize>(
    a_row: &[f64],
    b: &[f64],
    n: usize,
    out_row: &mut [f64],
    j: usize,
    fast: bool,
) {
    debug_assert!(j + 4 * T <= n);
    let mut acc = [_mm256_setzero_pd(); T];
    let bp = b.as_ptr();
    if fast {
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let base = bp.add(k * n + j);
            let av = _mm256_set1_pd(a);
            for (t, ac) in acc.iter_mut().enumerate() {
                *ac = _mm256_fmadd_pd(av, _mm256_loadu_pd(base.add(4 * t)), *ac);
            }
        }
    } else {
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let base = bp.add(k * n + j);
            let av = _mm256_set1_pd(a);
            for (t, ac) in acc.iter_mut().enumerate() {
                *ac = _mm256_add_pd(*ac, _mm256_mul_pd(av, _mm256_loadu_pd(base.add(4 * t))));
            }
        }
    }
    let op = out_row.as_mut_ptr().add(j);
    for (t, ac) in acc.iter().enumerate() {
        _mm256_storeu_pd(op.add(4 * t), *ac);
    }
}

/// `out += a · x` element-wise (lane-independent ⇒ strict-safe).
///
/// # Safety
/// Requires AVX2+FMA; call only after [`super::Backend::Avx2`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy(out: &mut [f64], a: f64, x: &[f64], fast: bool) {
    debug_assert_eq!(out.len(), x.len());
    let n = out.len();
    let av = _mm256_set1_pd(a);
    let op = out.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    if fast {
        while i + 4 <= n {
            let r = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(op.add(i)));
            _mm256_storeu_pd(op.add(i), r);
            i += 4;
        }
    } else {
        while i + 4 <= n {
            let r = _mm256_add_pd(
                _mm256_loadu_pd(op.add(i)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
            );
            _mm256_storeu_pd(op.add(i), r);
            i += 4;
        }
    }
    while i < n {
        out[i] += a * x[i];
        i += 1;
    }
}

/// Fast-mode dot product: 4 vector accumulators (16 f64 per step) with
/// FMA, horizontally reduced at the end. Reassociates — never used in
/// strict mode.
///
/// # Safety
/// Requires AVX2+FMA; call only after [`super::Backend::Avx2`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dot_fast(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [_mm256_setzero_pd(); 4];
    let mut i = 0;
    while i + 16 <= n {
        for (t, ac) in acc.iter_mut().enumerate() {
            *ac = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 4 * t)),
                _mm256_loadu_pd(bp.add(i + 4 * t)),
                *ac,
            );
        }
        i += 16;
    }
    while i + 4 <= n {
        acc[0] = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i)),
            _mm256_loadu_pd(bp.add(i)),
            acc[0],
        );
        i += 4;
    }
    let s = _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]), _mm256_add_pd(acc[2], acc[3]));
    let lo = _mm256_castpd256_pd128(s);
    let hi = _mm256_extractf128_pd(s, 1);
    let pair = _mm_add_pd(lo, hi);
    let mut total = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
    while i < n {
        total += a[i] * b[i];
        i += 1;
    }
    total
}
