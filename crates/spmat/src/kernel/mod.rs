//! SIMD-specialized compute kernels with runtime dispatch.
//!
//! Every local kernel the distributed variants execute — CSR SpMM rows,
//! the GEMM family, dot products — funnels through this module. At
//! process start the best available backend is detected **once**
//! ([`Backend::detect`] via `is_x86_feature_detected!` / the aarch64
//! baseline) and all kernels dispatch to it:
//!
//! * **`Avx2`** — x86_64 AVX2(+FMA) intrinsics, 4 × f64 lanes,
//!   register-blocked 32-column output tiles ([`x86`]).
//! * **`Neon`** — aarch64 NEON intrinsics, 2 × f64 lanes ([`neon`]).
//! * **`Scalar`** — the portable loop every backend is tested against;
//!   always available, and the whole story when the `simd` cargo
//!   feature is off.
//!
//! # Determinism contract
//!
//! The default [`KernelMode::Strict`] stays **bit-identical to the
//! historical serial scalar loop on every backend and at every thread
//! count**. The SIMD kernels achieve this by vectorizing only across
//! *independent output elements* (lanes of the feature dimension), never
//! across a reduction: each output element still accumulates its terms
//! in exactly the serial order with separately rounded multiply and add
//! (`_mm256_mul_pd` + `_mm256_add_pd`, not FMA). Kernels whose inner
//! loop *is* a reduction (the `A·Bᵀ` dot products) stay scalar in
//! strict mode, because any vectorization would reassociate the sum.
//!
//! [`KernelMode::Fast`] (opt-in: `--kernel fast` or `GNN_KERNEL=fast`)
//! unlocks fused multiply-add and multi-accumulator reductions. Results
//! then differ from strict by rounding only: property tests bound the
//! max relative error at [`FAST_MODE_RTOL`].
//!
//! # Environment
//!
//! * `GNN_KERNEL=strict|fast` — default mode (CLI `--kernel` overrides).
//! * `GNN_KERNEL_BACKEND=auto|scalar|avx2|neon` — pins the backend;
//!   an unsupported pin falls back to scalar (never to an illegal
//!   instruction). `scalar` is how CI's portable job forces the
//!   fallback path on SIMD-capable hosts.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod scalar;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod x86;

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
pub mod neon;

/// Documented bound on `max|fast − strict| / scale` for the Fast-mode
/// kernels (FMA + 4-way reassociated reductions), where `scale` is the
/// magnitude of the computation — the result's infinity norm for matrix
/// ops, `Σ|xᵢ·yᵢ|` for dot products. (Per-element relative error is the
/// wrong contract: cancellation can leave individual outputs near zero.)
/// The real error is a few ULPs; the bound leaves three orders of
/// magnitude of headroom and is asserted by `tests/kernel_dispatch.rs`.
pub const FAST_MODE_RTOL: f64 = 1e-12;

/// Feature widths with register-blocked specializations; other widths
/// take the generic blocked path.
pub const SPECIALIZED_WIDTHS: [usize; 3] = [32, 64, 128];

/// Numerical mode of the kernel layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Bit-identical to the historical serial scalar loop (default).
    Strict,
    /// FMA + reassociated reductions; bounded by [`FAST_MODE_RTOL`].
    Fast,
}

impl KernelMode {
    /// Parses `strict` / `fast` (the `--kernel` and `GNN_KERNEL` values).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(Self::Strict),
            "fast" => Ok(Self::Fast),
            other => Err(format!("unknown kernel mode {other} (strict|fast)")),
        }
    }

    /// The mode's CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Self::Strict => "strict",
            Self::Fast => "fast",
        }
    }
}

/// A compute backend the dispatcher can select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops; always available, the bit-exactness oracle.
    Scalar,
    /// x86_64 AVX2 + FMA intrinsics (4 × f64 lanes).
    Avx2,
    /// aarch64 NEON intrinsics (2 × f64 lanes).
    Neon,
}

impl Backend {
    /// True when this process can execute the backend's instructions.
    pub fn supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            Backend::Neon => true, // NEON is aarch64 baseline
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The best supported backend, honoring `GNN_KERNEL_BACKEND`.
    /// Detected once per process and cached.
    pub fn detect() -> Backend {
        static DETECTED: OnceLock<Backend> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            let pinned = std::env::var("GNN_KERNEL_BACKEND").ok();
            let pick = match pinned.as_deref() {
                Some("scalar") => Some(Backend::Scalar),
                Some("avx2") => Some(Backend::Avx2),
                Some("neon") => Some(Backend::Neon),
                _ => None, // auto (also any unrecognized value)
            };
            match pick {
                Some(b) if b.supported() => b,
                Some(_) => Backend::Scalar, // pinned but unsupported: safe fallback
                None => {
                    if Backend::Avx2.supported() {
                        Backend::Avx2
                    } else if Backend::Neon.supported() {
                        Backend::Neon
                    } else {
                        Backend::Scalar
                    }
                }
            }
        })
    }

    /// Short name used in logs, bench keys and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// Process-wide mode: 0 = unset (use `GNN_KERNEL` env), 1 = strict,
/// 2 = fast.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Process-wide forced backend (bench/test hook): 0 = auto-detect,
/// 1 = scalar, 2 = avx2, 3 = neon.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn env_mode() -> KernelMode {
    static ENV: OnceLock<KernelMode> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("GNN_KERNEL")
            .ok()
            .and_then(|s| KernelMode::parse(&s).ok())
            .unwrap_or(KernelMode::Strict)
    })
}

/// Sets the process-wide kernel mode (CLI `--kernel`).
pub fn set_mode(mode: KernelMode) {
    let v = match mode {
        KernelMode::Strict => 1,
        KernelMode::Fast => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The mode kernels run in: [`set_mode`] if called, else `GNN_KERNEL`,
/// else [`KernelMode::Strict`].
pub fn current_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Strict,
        2 => KernelMode::Fast,
        _ => env_mode(),
    }
}

/// Pins dispatch to `backend` for this process (bench/test hook; the
/// CLI path is the `GNN_KERNEL_BACKEND` env var). Fails rather than
/// dispatching instructions the host cannot execute.
pub fn try_force_backend(backend: Backend) -> Result<(), String> {
    if !backend.supported() {
        return Err(format!(
            "backend {} is not supported on this host",
            backend.label()
        ));
    }
    let v = match backend {
        Backend::Scalar => 1,
        Backend::Avx2 => 2,
        Backend::Neon => 3,
    };
    FORCED.store(v, Ordering::Relaxed);
    Ok(())
}

/// Clears a [`try_force_backend`] pin; dispatch returns to auto-detect.
pub fn clear_forced_backend() {
    FORCED.store(0, Ordering::Relaxed);
}

/// The backend kernels dispatch to right now.
pub fn active_backend() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Avx2,
        3 => Backend::Neon,
        _ => Backend::detect(),
    }
}

/// A resolved (backend, mode) pair. Kernels resolve dispatch **once per
/// matrix operation** (two atomic loads), then every row/chunk call is a
/// direct branch on plain enum values — nothing per-element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernels {
    /// The instruction set the kernels execute on.
    pub backend: Backend,
    /// Strict (bit-exact) or fast (FMA) numerics.
    pub mode: KernelMode,
}

/// The currently active (backend, mode) pair.
pub fn active() -> Kernels {
    Kernels {
        backend: active_backend(),
        mode: current_mode(),
    }
}

impl Kernels {
    /// A pair that always runs the portable strict loops (the oracle).
    pub fn scalar_strict() -> Self {
        Kernels {
            backend: Backend::Scalar,
            mode: KernelMode::Strict,
        }
    }

    #[inline]
    fn fast(self) -> bool {
        self.mode == KernelMode::Fast
    }

    /// One SpMM output row: `out_row[0..f] += Σ vals[k] · h[cols[k]·f ..]`,
    /// accumulating nonzeros in CSR order per output element.
    #[inline]
    pub fn spmm_row(self, cols: &[u32], vals: &[f64], h: &[f64], f: usize, out_row: &mut [f64]) {
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert_eq!(out_row.len(), f);
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => unsafe { x86::spmm_row(cols, vals, h, f, out_row, self.fast()) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            Backend::Neon => unsafe { neon::spmm_row(cols, vals, h, f, out_row, self.fast()) },
            _ => scalar::spmm_row(cols, vals, h, f, out_row),
        }
    }

    /// One GEMM output row from zero:
    /// `out_row[0..n] = Σ_k a_row[k] · b[k·n .. k·n+n]`, terms in
    /// ascending `k` with exact zeros skipped (the historical kernel's
    /// order).
    #[inline]
    pub fn gemm_row(self, a_row: &[f64], b: &[f64], n: usize, out_row: &mut [f64]) {
        debug_assert_eq!(out_row.len(), n);
        debug_assert_eq!(b.len(), a_row.len() * n);
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => unsafe { x86::gemm_row(a_row, b, n, out_row, self.fast()) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            Backend::Neon => unsafe { neon::gemm_row(a_row, b, n, out_row, self.fast()) },
            _ => scalar::gemm_row(a_row, b, n, out_row),
        }
    }

    /// `out += a · x` element-wise (the axpy update inside
    /// `transpose_matmul`). Lane-independent, so SIMD stays bit-exact.
    #[inline]
    pub fn axpy(self, out: &mut [f64], a: f64, x: &[f64]) {
        debug_assert_eq!(out.len(), x.len());
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => unsafe { x86::axpy(out, a, x, self.fast()) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            Backend::Neon => unsafe { neon::axpy(out, a, x, self.fast()) },
            _ => scalar::axpy(out, a, x),
        }
    }

    /// Dot product `Σ a[i]·b[i]` (the `A·Bᵀ` inner kernel). A true
    /// reduction: strict mode is scalar on every backend (vectorizing
    /// would reassociate); fast mode uses multi-accumulator SIMD.
    #[inline]
    pub fn dot(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        if !self.fast() {
            return scalar::dot(a, b);
        }
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => unsafe { x86::dot_fast(a, b) },
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            Backend::Neon => unsafe { neon::dot_fast(a, b) },
            _ => scalar::dot(a, b),
        }
    }
}

/// Measured single-core SpMM throughput of the **active** backend in
/// GFLOP/s, from a one-shot ~milliseconds micro-bench on a synthetic
/// CSR (deterministic structure, f = 64). Cached per process; feeds the
/// α–β–γ cost model's compute term when the CLI asks for a measured
/// `γ` (`train --flop-rate auto`) instead of the paper's A100 constant.
pub fn measured_gflops() -> f64 {
    static MEASURED: OnceLock<f64> = OnceLock::new();
    *MEASURED.get_or_init(|| {
        use crate::coo::Coo;
        use crate::dense::Dense;
        use crate::spmm::{spmm_flops, spmm_with};
        const N: usize = 2048;
        const NNZ_PER_ROW: usize = 16;
        const F: usize = 64;
        // Deterministic pseudo-random structure via an LCG; values and
        // features from a fixed affine pattern. No RNG state involved.
        let mut coo = Coo::new(N, N);
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for r in 0..N {
            for _ in 0..NNZ_PER_ROW {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let c = (state >> 33) as usize % N;
                coo.push(r, c, 1.0 + (c % 7) as f64 * 0.125);
            }
        }
        let a = coo.to_csr();
        let h = Dense::from_fn(N, F, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.0625 - 0.375);
        let flops = spmm_flops(&a, F) as f64;
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            std::hint::black_box(spmm_with(&a, &h, 1));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        flops / best / 1e9
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_returns_supported_backend() {
        assert!(Backend::detect().supported());
    }

    #[test]
    fn scalar_always_supported() {
        assert!(Backend::Scalar.supported());
        assert_eq!(try_force_backend(Backend::Scalar), Ok(()));
        clear_forced_backend();
    }

    #[test]
    fn forcing_unsupported_backend_errors() {
        for be in [Backend::Avx2, Backend::Neon] {
            if !be.supported() {
                assert!(try_force_backend(be).is_err());
                // The failed pin must not change dispatch.
                assert!(active_backend().supported());
            }
        }
    }

    #[test]
    fn mode_parse_roundtrip() {
        assert_eq!(KernelMode::parse("strict"), Ok(KernelMode::Strict));
        assert_eq!(KernelMode::parse("fast"), Ok(KernelMode::Fast));
        assert!(KernelMode::parse("fused").is_err());
        assert_eq!(KernelMode::Fast.label(), "fast");
    }

    #[test]
    fn measured_gflops_is_positive_and_cached() {
        let a = measured_gflops();
        assert!(a.is_finite() && a > 0.0);
        assert_eq!(measured_gflops(), a, "must be cached");
    }
}
