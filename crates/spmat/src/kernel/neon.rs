//! aarch64 NEON kernels: 2 × f64 lanes, register-blocked output tiles.
//!
//! Structurally a half-width mirror of [`super::x86`]: strict mode
//! vectorizes only across independent output elements with separately
//! rounded `vmulq_f64` + `vaddq_f64` (bit-identical to the scalar
//! oracle per lane); fast mode uses the fused `vfmaq_f64`. Row kernels
//! walk the feature dimension in 16-column register blocks (8
//! accumulators), so the specialized widths 32/64/128 decompose into
//! 2/4/8 full blocks.
//!
//! # Safety
//!
//! Functions are `#[target_feature(enable = "neon")]` and must only be
//! called after [`super::Backend::Neon.supported()`] returned true
//! (NEON is baseline on aarch64, but the dispatcher checks anyway).

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

/// One SpMM output row: `out_row[0..f] += Σ vals[k] · h[cols[k]·f ..]`.
///
/// # Safety
/// Requires NEON; call only after [`super::Backend::Neon`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "neon")]
pub unsafe fn spmm_row(
    cols: &[u32],
    vals: &[f64],
    h: &[f64],
    f: usize,
    out_row: &mut [f64],
    fast: bool,
) {
    debug_assert_eq!(out_row.len(), f);
    let mut j = 0;
    while j + 16 <= f {
        spmm_block::<8>(cols, vals, h, f, out_row, j, fast);
        j += 16;
    }
    while j + 2 <= f {
        spmm_block::<1>(cols, vals, h, f, out_row, j, fast);
        j += 2;
    }
    if j < f {
        for (&c, &v) in cols.iter().zip(vals) {
            out_row[j] += v * h[c as usize * f + j];
        }
    }
}

/// A `T`-accumulator (2·T columns) SpMM register block at offset `j`.
#[target_feature(enable = "neon")]
unsafe fn spmm_block<const T: usize>(
    cols: &[u32],
    vals: &[f64],
    h: &[f64],
    f: usize,
    out_row: &mut [f64],
    j: usize,
    fast: bool,
) {
    debug_assert!(j + 2 * T <= f);
    let op = out_row.as_mut_ptr().add(j);
    let mut acc = [vdupq_n_f64(0.0); T];
    for (t, a) in acc.iter_mut().enumerate() {
        *a = vld1q_f64(op.add(2 * t));
    }
    let hp = h.as_ptr();
    if fast {
        for (&c, &v) in cols.iter().zip(vals) {
            let base = hp.add(c as usize * f + j);
            let vv = vdupq_n_f64(v);
            for (t, a) in acc.iter_mut().enumerate() {
                *a = vfmaq_f64(*a, vv, vld1q_f64(base.add(2 * t)));
            }
        }
    } else {
        for (&c, &v) in cols.iter().zip(vals) {
            let base = hp.add(c as usize * f + j);
            let vv = vdupq_n_f64(v);
            for (t, a) in acc.iter_mut().enumerate() {
                *a = vaddq_f64(*a, vmulq_f64(vv, vld1q_f64(base.add(2 * t))));
            }
        }
    }
    for (t, a) in acc.iter().enumerate() {
        vst1q_f64(op.add(2 * t), *a);
    }
}

/// One GEMM output row from zero, ascending `k`, exact zeros skipped.
///
/// # Safety
/// Requires NEON; call only after [`super::Backend::Neon`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "neon")]
pub unsafe fn gemm_row(a_row: &[f64], b: &[f64], n: usize, out_row: &mut [f64], fast: bool) {
    debug_assert_eq!(out_row.len(), n);
    let mut j = 0;
    while j + 16 <= n {
        gemm_block::<8>(a_row, b, n, out_row, j, fast);
        j += 16;
    }
    while j + 2 <= n {
        gemm_block::<1>(a_row, b, n, out_row, j, fast);
        j += 2;
    }
    if j < n {
        out_row[j] = 0.0;
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            out_row[j] += a * b[k * n + j];
        }
    }
}

/// A `T`-accumulator GEMM register block starting from zero.
#[target_feature(enable = "neon")]
unsafe fn gemm_block<const T: usize>(
    a_row: &[f64],
    b: &[f64],
    n: usize,
    out_row: &mut [f64],
    j: usize,
    fast: bool,
) {
    debug_assert!(j + 2 * T <= n);
    let mut acc = [vdupq_n_f64(0.0); T];
    let bp = b.as_ptr();
    if fast {
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let base = bp.add(k * n + j);
            let av = vdupq_n_f64(a);
            for (t, ac) in acc.iter_mut().enumerate() {
                *ac = vfmaq_f64(*ac, av, vld1q_f64(base.add(2 * t)));
            }
        }
    } else {
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let base = bp.add(k * n + j);
            let av = vdupq_n_f64(a);
            for (t, ac) in acc.iter_mut().enumerate() {
                *ac = vaddq_f64(*ac, vmulq_f64(av, vld1q_f64(base.add(2 * t))));
            }
        }
    }
    let op = out_row.as_mut_ptr().add(j);
    for (t, ac) in acc.iter().enumerate() {
        vst1q_f64(op.add(2 * t), *ac);
    }
}

/// `out += a · x` element-wise (lane-independent ⇒ strict-safe).
///
/// # Safety
/// Requires NEON; call only after [`super::Backend::Neon`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "neon")]
pub unsafe fn axpy(out: &mut [f64], a: f64, x: &[f64], fast: bool) {
    debug_assert_eq!(out.len(), x.len());
    let n = out.len();
    let av = vdupq_n_f64(a);
    let op = out.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    if fast {
        while i + 2 <= n {
            vst1q_f64(
                op.add(i),
                vfmaq_f64(vld1q_f64(op.add(i)), av, vld1q_f64(xp.add(i))),
            );
            i += 2;
        }
    } else {
        while i + 2 <= n {
            let r = vaddq_f64(vld1q_f64(op.add(i)), vmulq_f64(av, vld1q_f64(xp.add(i))));
            vst1q_f64(op.add(i), r);
            i += 2;
        }
    }
    while i < n {
        out[i] += a * x[i];
        i += 1;
    }
}

/// Fast-mode dot product: 4 vector accumulators with FMA, horizontally
/// reduced at the end. Reassociates — never used in strict mode.
///
/// # Safety
/// Requires NEON; call only after [`super::Backend::Neon`]'s
/// `supported()` returned true (the dispatcher guarantees this).
#[target_feature(enable = "neon")]
pub unsafe fn dot_fast(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [vdupq_n_f64(0.0); 4];
    let mut i = 0;
    while i + 8 <= n {
        for (t, ac) in acc.iter_mut().enumerate() {
            *ac = vfmaq_f64(
                *ac,
                vld1q_f64(ap.add(i + 2 * t)),
                vld1q_f64(bp.add(i + 2 * t)),
            );
        }
        i += 8;
    }
    while i + 2 <= n {
        acc[0] = vfmaq_f64(acc[0], vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        i += 2;
    }
    let s = vaddq_f64(vaddq_f64(acc[0], acc[1]), vaddq_f64(acc[2], acc[3]));
    let mut total = vaddvq_f64(s);
    while i < n {
        total += a[i] * b[i];
        i += 1;
    }
    total
}
