//! Portable scalar kernels — the always-available fallback and the
//! bit-exactness oracle every SIMD backend is property-tested against.
//!
//! The accumulation order here **is** the determinism contract: each
//! output element sums its terms in ascending source order with
//! separately rounded multiply and add. The generic SpMM path keeps the
//! historical [`FTILE`]-column tiling (tile width never changes the
//! per-element order, only the cache behavior); the common feature
//! widths 32/64/128 go through const-generic specializations whose
//! fixed trip counts let the compiler unroll fully and keep the output
//! tile register-resident.

/// Column-tile width of the generic SpMM path: 64 f64 = one 512-byte
/// output tile, small enough to stay in registers/L1 across the nnz
/// stream. (Historical constant, moved here from `spmm.rs`.)
pub const FTILE: usize = 64;

/// One SpMM output row: `out_row += Σ vals[k] · h[cols[k]·f ..][0..f]`.
#[inline]
pub fn spmm_row(cols: &[u32], vals: &[f64], h: &[f64], f: usize, out_row: &mut [f64]) {
    match f {
        32 => spmm_row_spec::<32>(cols, vals, h, out_row),
        64 => spmm_row_spec::<64>(cols, vals, h, out_row),
        128 => spmm_row_spec::<128>(cols, vals, h, out_row),
        _ => spmm_row_generic(cols, vals, h, f, out_row),
    }
}

/// Generic-width row kernel: the historical FTILE-tiled loop.
fn spmm_row_generic(cols: &[u32], vals: &[f64], h: &[f64], f: usize, out_row: &mut [f64]) {
    // Column tiling: keep one FTILE-wide output window hot while the
    // row's nonzeros stream rows of H through it.
    let mut ft = 0;
    while ft < f {
        let fe = (ft + FTILE).min(f);
        let out_t = &mut out_row[ft..fe];
        for (&c, &v) in cols.iter().zip(vals) {
            let base = c as usize * f;
            let h_t = &h[base + ft..base + fe];
            for (o, &x) in out_t.iter_mut().zip(h_t) {
                *o += v * x;
            }
        }
        ft = fe;
    }
}

/// Specialized row kernel for a compile-time feature width: fixed-size
/// array windows drop every bounds check and let the compiler unroll
/// the whole width. Per-element accumulation order is identical to the
/// generic path (ascending nonzeros, mul then add).
fn spmm_row_spec<const F: usize>(cols: &[u32], vals: &[f64], h: &[f64], out_row: &mut [f64]) {
    let out: &mut [f64; F] = out_row.try_into().expect("specialized width mismatch");
    for (&c, &v) in cols.iter().zip(vals) {
        let base = c as usize * F;
        let h_row: &[f64; F] = h[base..base + F].try_into().expect("h row window");
        for j in 0..F {
            out[j] += v * h_row[j];
        }
    }
}

/// One GEMM output row from zero: `out_row = Σ_k a_row[k] · b_row(k)`,
/// ascending `k`, exact zeros skipped (the historical ikj order).
#[inline]
pub fn gemm_row(a_row: &[f64], b: &[f64], n: usize, out_row: &mut [f64]) {
    match n {
        32 => gemm_row_spec::<32>(a_row, b, out_row),
        64 => gemm_row_spec::<64>(a_row, b, out_row),
        128 => gemm_row_spec::<128>(a_row, b, out_row),
        _ => {
            out_row.fill(0.0);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                axpy(out_row, a, &b[k * n..(k + 1) * n]);
            }
        }
    }
}

/// Width-specialized GEMM row (see [`spmm_row_spec`] for the idea).
fn gemm_row_spec<const N: usize>(a_row: &[f64], b: &[f64], out_row: &mut [f64]) {
    let out: &mut [f64; N] = out_row.try_into().expect("specialized width mismatch");
    *out = [0.0; N];
    for (k, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row: &[f64; N] = b[k * N..(k + 1) * N].try_into().expect("b row window");
        for j in 0..N {
            out[j] += a * b_row[j];
        }
    }
}

/// `out += a · x` element-wise.
#[inline]
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += a * v;
    }
}

/// Sequential dot product — the strict-mode reduction order.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialized_widths_match_generic_bitwise() {
        // Structure with repeats and zeros; values exercise rounding.
        for f in [32usize, 64, 128] {
            let cols: Vec<u32> = (0..17).map(|k| (k * 5 % 7) as u32).collect();
            let vals: Vec<f64> = (0..17).map(|k| (k as f64 - 8.0) * 0.37).collect();
            let h: Vec<f64> = (0..7 * f).map(|i| (i as f64 * 0.013).sin()).collect();
            let mut spec = vec![0.1; f];
            let mut gen = vec![0.1; f];
            spmm_row(&cols, &vals, &h, f, &mut spec);
            spmm_row_generic(&cols, &vals, &h, f, &mut gen);
            assert_eq!(spec, gen, "f={f}");
        }
    }

    #[test]
    fn gemm_spec_matches_generic_bitwise() {
        for n in [32usize, 64, 128] {
            let k = 9;
            let a: Vec<f64> = (0..k)
                .map(|i| if i == 4 { 0.0 } else { i as f64 * 0.21 })
                .collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.007).cos()).collect();
            let mut spec = vec![9.0; n];
            let mut gen = vec![9.0; n];
            gemm_row(&a, &b, n, &mut spec);
            // Generic path, forced: replicate the non-special branch.
            gen.fill(0.0);
            for (kk, &av) in a.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                axpy(&mut gen, av, &b[kk * n..(kk + 1) * n]);
            }
            assert_eq!(spec, gen, "n={n}");
        }
    }

    #[test]
    fn dot_is_sequential_sum() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), ((4.0 + 10.0) + 18.0));
    }
}
