//! Sparse/dense matrix substrate for distributed GNN training.
//!
//! This crate provides everything the training stack needs from linear
//! algebra and data generation:
//!
//! * [`coo::Coo`] — coordinate-format triplet builder.
//! * [`csr::Csr`] — compressed sparse row matrices with the block-access
//!   operations distributed SpMM needs (row blocks, per-block non-empty
//!   column sets, symmetric permutation).
//! * [`dense::Dense`] — row-major dense matrices (activations, weights)
//!   with GEMM and the element-wise operations GCN training uses.
//! * [`spmm`] — parallel cache-blocked CSR × dense kernels, the local
//!   workhorse of every distributed algorithm variant.
//! * [`kernel`] — runtime-dispatched SIMD backends (AVX2/NEON/scalar)
//!   under the row kernels, with a strict bit-exact default mode and an
//!   opt-in fast (FMA) mode.
//! * [`alloc`] — 64-byte-aligned `f64` buffers backing dense storage.
//! * [`pool`] — dependency-free scoped-thread worker pool the kernels
//!   run on (deterministic chunked scheduling, bit-identical to serial).
//! * [`gen`] — synthetic graph generators (R-MAT, planted partition,
//!   Erdős–Rényi, 2-D grid).
//! * [`dataset`] — scaled-down analogues of the paper's four evaluation
//!   datasets (Reddit, Amazon, Protein, Papers).

pub mod alloc;
pub mod coo;
pub mod csr;
pub mod dataset;
pub mod dense;
pub mod gen;
pub mod graph;
pub mod io;
pub mod kernel;
pub mod pool;
pub mod spmm;

pub use coo::Coo;
pub use csr::Csr;
pub use dense::Dense;
