//! Row-major dense matrices.
//!
//! `Dense` stores activations (`H`, tall-skinny `n × f`) and weights
//! (`W`, small `f × f'`). Row-major layout matches the access pattern of
//! both the SpMM kernels (stream rows of `H`) and row gather/scatter for
//! communication.
//!
//! The GEMM, transpose, element-wise and row-packing kernels are
//! parallelized over the [`crate::pool`] worker pool with fixed chunk
//! boundaries and serial-order accumulation per output element, so every
//! result is bit-identical to the serial kernels at any thread count
//! (small problems fall back to the serial path automatically). The
//! GEMM-family inner loops run through the [`crate::kernel`] dispatch
//! layer (AVX2/NEON/scalar, strict-by-default numerics). The `*_into`
//! variants write into caller-provided buffers so steady-state training
//! epochs can run without heap allocation.
//!
//! Storage is dual-backed ([`DenseStorage`]): matrices this crate
//! allocates itself live in 64-byte-aligned [`AVec`] buffers (SIMD- and
//! cache-line-friendly), while [`Dense::from_vec`] keeps wrapping a plain
//! `Vec<f64>` zero-copy — that path is how received network payloads
//! become matrices without a copy, and how buffer pools recycle
//! allocations across epochs.

use crate::alloc::AVec;
use crate::kernel;
use crate::pool;
use rand::Rng;

/// Output rows per scheduling chunk for the GEMM-family kernels. Fixed so
/// chunk boundaries never depend on the thread count.
const GEMM_CHUNK_ROWS: usize = 16;

/// Elements per scheduling chunk for flat element-wise kernels.
const ELEM_CHUNK: usize = 1 << 15;

/// Packed rows per scheduling chunk for gather/pack kernels.
const PACK_CHUNK_ROWS: usize = 128;

/// Backing buffer of a [`Dense`] matrix: either a plain `Vec<f64>`
/// (adopted zero-copy from network payloads and `Vec`-based pools) or a
/// 64-byte-aligned [`AVec`] (everything this crate allocates itself).
#[derive(Clone, Debug)]
pub enum DenseStorage {
    /// A plain heap buffer with `Vec`'s default (8-byte) alignment.
    Unaligned(Vec<f64>),
    /// A cache-line-aligned buffer.
    Aligned(AVec),
}

impl DenseStorage {
    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            DenseStorage::Unaligned(v) => v,
            DenseStorage::Aligned(a) => a.as_slice(),
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [f64] {
        match self {
            DenseStorage::Unaligned(v) => v,
            DenseStorage::Aligned(a) => a.as_mut_slice(),
        }
    }
}

/// A row-major dense `rows × cols` matrix of `f64`.
#[derive(Clone, Debug)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: DenseStorage,
}

impl PartialEq for Dense {
    fn eq(&self, other: &Self) -> bool {
        // Equality is over shape and logical contents, not over which
        // backing variant holds them.
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.as_slice() == other.data.as_slice()
    }
}

impl Dense {
    /// An all-zeros matrix (aligned storage).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: DenseStorage::Aligned(AVec::zeroed(rows * cols)),
        }
    }

    /// Builds from a generator function over `(row, col)`, called in
    /// row-major order.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = AVec::zeroed(rows * cols);
        let s = data.as_mut_slice();
        for r in 0..rows {
            for c in 0..cols {
                s[r * cols + c] = f(r, c);
            }
        }
        Self {
            rows,
            cols,
            data: DenseStorage::Aligned(data),
        }
    }

    /// Wraps an existing row-major buffer **zero-copy** (the buffer keeps
    /// its `Vec` alignment). This is the path network payloads and
    /// `Vec`-based scratch pools take.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self {
            rows,
            cols,
            data: DenseStorage::Unaligned(data),
        }
    }

    /// Wraps an existing aligned buffer zero-copy.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_avec(rows: usize, cols: usize, data: AVec) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self {
            rows,
            cols,
            data: DenseStorage::Aligned(data),
        }
    }

    /// Consumes the matrix and returns its backing buffer as a plain
    /// `Vec<f64>`. Zero-copy for [`Dense::from_vec`]-backed matrices;
    /// aligned-backed matrices are copied out. Pools that want to keep
    /// the alignment should use [`Dense::into_storage`] instead.
    pub fn into_vec(self) -> Vec<f64> {
        match self.data {
            DenseStorage::Unaligned(v) => v,
            DenseStorage::Aligned(a) => a.to_vec(),
        }
    }

    /// Consumes the matrix and returns its backing buffer with the
    /// variant intact, so scratch pools can recycle each kind of
    /// allocation without a copy or an alignment downgrade.
    pub fn into_storage(self) -> DenseStorage {
        self.data
    }

    /// Glorot/Xavier-uniform initialization, the standard GCN weight init.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let cols = self.cols;
        &mut self.data.as_mut_slice()[r * cols..(r + 1) * cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data.as_slice()[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let cols = self.cols;
        self.data.as_mut_slice()[r * cols + c] = v;
    }

    /// `C = self · other` (standard GEMM, `m×k · k×n`), parallel over
    /// output rows with the process-wide thread count.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Dense) -> Dense {
        self.matmul_with(other, pool::current_threads())
    }

    /// [`Dense::matmul`] with an explicit thread count.
    pub fn matmul_with(&self, other: &Dense, threads: usize) -> Dense {
        let mut out = Dense::zeros(self.rows, other.cols);
        self.matmul_into_with(other, &mut out, threads);
        out
    }

    /// `out = self · other` into a caller-provided buffer (overwritten).
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn matmul_into(&self, other: &Dense, out: &mut Dense) {
        self.matmul_into_with(other, out, pool::current_threads());
    }

    /// [`Dense::matmul_into`] with an explicit thread count.
    pub fn matmul_into_with(&self, other: &Dense, out: &mut Dense, threads: usize) {
        assert_eq!(self.cols, other.rows, "gemm inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "gemm output rows mismatch");
        assert_eq!(out.cols, other.cols, "gemm output cols mismatch");
        let (k_dim, n) = (self.cols, other.cols);
        if self.rows == 0 || n == 0 {
            return;
        }
        let t = pool::effective_threads(threads, 2 * self.rows * k_dim * n);
        let ker = kernel::active();
        let b = other.data.as_slice();
        pool::for_each_chunk_mut(
            t,
            out.data.as_mut_slice(),
            GEMM_CHUNK_ROWS * n,
            |ci, out_chunk| {
                let row0 = ci * GEMM_CHUNK_ROWS;
                // ikj order per row (ascending k, exact zeros skipped) — the
                // accumulation order the kernel contract preserves.
                for (i, out_row) in out_chunk.chunks_exact_mut(n).enumerate() {
                    ker.gemm_row(self.row(row0 + i), b, n, out_row);
                }
            },
        );
    }

    /// `C = selfᵀ · other` without materializing the transpose
    /// (`k×m` result from `m×?` inputs). Used for weight gradients
    /// `Y = Hᵀ(AG)`.
    pub fn transpose_matmul(&self, other: &Dense) -> Dense {
        self.transpose_matmul_with(other, pool::current_threads())
    }

    /// [`Dense::transpose_matmul`] with an explicit thread count.
    pub fn transpose_matmul_with(&self, other: &Dense, threads: usize) -> Dense {
        let mut out = Dense::zeros(self.cols, other.cols);
        self.transpose_matmul_into_with(other, &mut out, threads);
        out
    }

    /// `out = selfᵀ · other` into a caller-provided buffer (overwritten).
    pub fn transpose_matmul_into(&self, other: &Dense, out: &mut Dense) {
        self.transpose_matmul_into_with(other, out, pool::current_threads());
    }

    /// [`Dense::transpose_matmul_into`] with an explicit thread count.
    ///
    /// Parallel over output rows `k`; each output element still
    /// accumulates over `i = 0..rows` in ascending order, matching the
    /// serial kernel bit for bit.
    pub fn transpose_matmul_into_with(&self, other: &Dense, out: &mut Dense, threads: usize) {
        assert_eq!(self.rows, other.rows, "transpose_matmul row mismatch");
        assert_eq!(out.rows, self.cols, "transpose_matmul output rows mismatch");
        assert_eq!(
            out.cols, other.cols,
            "transpose_matmul output cols mismatch"
        );
        let n = other.cols;
        if self.cols == 0 || n == 0 {
            out.data.as_mut_slice().fill(0.0);
            return;
        }
        let t = pool::effective_threads(threads, 2 * self.rows * self.cols * n);
        let ker = kernel::active();
        if t <= 1 {
            // Serial reference order: stream rows of self/other once.
            let out_data = out.data.as_mut_slice();
            out_data.fill(0.0);
            for i in 0..self.rows {
                let a_row = self.row(i);
                let b_row = other.row(i);
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    ker.axpy(&mut out_data[k * n..(k + 1) * n], a, b_row);
                }
            }
            return;
        }
        let cols = self.cols;
        let a_data = self.data.as_slice();
        pool::for_each_chunk_mut(
            t,
            out.data.as_mut_slice(),
            GEMM_CHUNK_ROWS * n,
            |ci, out_chunk| {
                let k0 = ci * GEMM_CHUNK_ROWS;
                for (dk, out_row) in out_chunk.chunks_exact_mut(n).enumerate() {
                    out_row.fill(0.0);
                    let k = k0 + dk;
                    for i in 0..self.rows {
                        let a = a_data[i * cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        ker.axpy(out_row, a, other.row(i));
                    }
                }
            },
        );
    }

    /// `C = self · otherᵀ` without materializing the transpose. Used for
    /// gradient propagation `G W ᵀ`.
    pub fn matmul_transpose(&self, other: &Dense) -> Dense {
        self.matmul_transpose_with(other, pool::current_threads())
    }

    /// [`Dense::matmul_transpose`] with an explicit thread count.
    pub fn matmul_transpose_with(&self, other: &Dense, threads: usize) -> Dense {
        let mut out = Dense::zeros(self.rows, other.rows);
        self.matmul_transpose_into_with(other, &mut out, threads);
        out
    }

    /// `out = self · otherᵀ` into a caller-provided buffer (overwritten).
    pub fn matmul_transpose_into(&self, other: &Dense, out: &mut Dense) {
        self.matmul_transpose_into_with(other, out, pool::current_threads());
    }

    /// [`Dense::matmul_transpose_into`] with an explicit thread count.
    pub fn matmul_transpose_into_with(&self, other: &Dense, out: &mut Dense, threads: usize) {
        assert_eq!(self.cols, other.cols, "matmul_transpose col mismatch");
        assert_eq!(out.rows, self.rows, "matmul_transpose output rows mismatch");
        assert_eq!(
            out.cols, other.rows,
            "matmul_transpose output cols mismatch"
        );
        let n = other.rows;
        if self.rows == 0 || n == 0 {
            return;
        }
        let t = pool::effective_threads(threads, 2 * self.rows * self.cols * n);
        // Dot-product-shaped: a true reduction per output element, so the
        // kernel layer keeps it scalar in strict mode and only fast mode
        // vectorizes it.
        let ker = kernel::active();
        pool::for_each_chunk_mut(
            t,
            out.data.as_mut_slice(),
            GEMM_CHUNK_ROWS * n,
            |ci, out_chunk| {
                let row0 = ci * GEMM_CHUNK_ROWS;
                for (i, out_row) in out_chunk.chunks_exact_mut(n).enumerate() {
                    let a_row = self.row(row0 + i);
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = ker.dot(a_row, other.row(j));
                    }
                }
            },
        );
    }

    /// Materialized transpose (parallel over output rows).
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let (rows, cols) = (self.rows, self.cols);
        let src = self.data.as_slice();
        pool::for_each_chunk_mut(
            t,
            out.data.as_mut_slice(),
            GEMM_CHUNK_ROWS * rows,
            |ci, out_chunk| {
                let c0 = ci * GEMM_CHUNK_ROWS;
                for (dc, out_row) in out_chunk.chunks_exact_mut(rows).enumerate() {
                    let c = c0 + dc;
                    for (r, o) in out_row.iter_mut().enumerate() {
                        *o = src[r * cols + c];
                    }
                }
            },
        );
        out
    }

    /// `self += other` (parallel element-wise).
    pub fn add_assign(&mut self, other: &Dense) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let src = other.data.as_slice();
        pool::for_each_chunk_mut(t, self.data.as_mut_slice(), ELEM_CHUNK, |ci, chunk| {
            let (off, len) = (ci * ELEM_CHUNK, chunk.len());
            for (a, &b) in chunk.iter_mut().zip(&src[off..off + len]) {
                *a += b;
            }
        });
    }

    /// `self -= scale * other` (SGD update, parallel element-wise).
    pub fn sub_scaled_assign(&mut self, other: &Dense, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let src = other.data.as_slice();
        pool::for_each_chunk_mut(t, self.data.as_mut_slice(), ELEM_CHUNK, |ci, chunk| {
            let (off, len) = (ci * ELEM_CHUNK, chunk.len());
            for (a, &b) in chunk.iter_mut().zip(&src[off..off + len]) {
                *a -= scale * b;
            }
        });
    }

    /// In-place scaling (parallel element-wise).
    pub fn scale(&mut self, s: f64) {
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        pool::for_each_chunk_mut(t, self.data.as_mut_slice(), ELEM_CHUNK, |_ci, chunk| {
            for a in chunk.iter_mut() {
                *a *= s;
            }
        });
    }

    /// `self ⊙= other` (in-place Hadamard, parallel element-wise).
    pub fn hadamard_assign(&mut self, other: &Dense) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let src = other.data.as_slice();
        pool::for_each_chunk_mut(t, self.data.as_mut_slice(), ELEM_CHUNK, |ci, chunk| {
            let (off, len) = (ci * ELEM_CHUNK, chunk.len());
            for (a, &b) in chunk.iter_mut().zip(&src[off..off + len]) {
                *a *= b;
            }
        });
    }

    /// Element-wise product `self ⊙ other` (Hadamard).
    pub fn hadamard(&self, other: &Dense) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        self.hadamard_into(other, &mut out);
        out
    }

    /// `out = self ⊙ other` into a caller-provided buffer.
    pub fn hadamard_into(&self, other: &Dense, out: &mut Dense) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        assert_eq!((self.rows, self.cols), (out.rows, out.cols));
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let (lhs, rhs) = (self.data.as_slice(), other.data.as_slice());
        pool::for_each_chunk_mut(t, out.data.as_mut_slice(), ELEM_CHUNK, |ci, chunk| {
            let (off, len) = (ci * ELEM_CHUNK, chunk.len());
            for ((o, &a), &b) in chunk
                .iter_mut()
                .zip(&lhs[off..off + len])
                .zip(&rhs[off..off + len])
            {
                *o = a * b;
            }
        });
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        self.relu_into(&mut out);
        out
    }

    /// `out = relu(self)` into a caller-provided buffer.
    pub fn relu_into(&self, out: &mut Dense) {
        assert_eq!((self.rows, self.cols), (out.rows, out.cols));
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let src = self.data.as_slice();
        pool::for_each_chunk_mut(t, out.data.as_mut_slice(), ELEM_CHUNK, |ci, chunk| {
            let (off, len) = (ci * ELEM_CHUNK, chunk.len());
            for (o, &v) in chunk.iter_mut().zip(&src[off..off + len]) {
                *o = v.max(0.0);
            }
        });
    }

    /// Element-wise ReLU derivative (1 where the input was positive).
    pub fn relu_prime(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        self.relu_prime_into(&mut out);
        out
    }

    /// `out = relu'(self)` into a caller-provided buffer.
    pub fn relu_prime_into(&self, out: &mut Dense) {
        assert_eq!((self.rows, self.cols), (out.rows, out.cols));
        let t = pool::effective_threads(pool::current_threads(), self.data().len());
        let src = self.data.as_slice();
        pool::for_each_chunk_mut(t, out.data.as_mut_slice(), ELEM_CHUNK, |ci, chunk| {
            let (off, len) = (ci * ELEM_CHUNK, chunk.len());
            for (o, &v) in chunk.iter_mut().zip(&src[off..off + len]) {
                *o = if v > 0.0 { 1.0 } else { 0.0 };
            }
        });
    }

    /// Gathers the listed rows into a new matrix (communication packing:
    /// the rows of `H` a peer asked for).
    pub fn gather_rows(&self, rows: &[u32]) -> Dense {
        let mut out = Dense::zeros(rows.len(), self.cols);
        self.pack_rows_into(rows, 0, out.data.as_mut_slice());
        out
    }

    /// Packs rows `idx[i] - base` of `self` contiguously into `out`
    /// (`out.len() == idx.len() * cols`), parallel over packed rows. This
    /// is the sparsity-aware `NnzCols` send-staging kernel: `idx` holds
    /// global row ids and `base` the rank's first owned row.
    ///
    /// # Panics
    /// Panics on length mismatch or an id below `base`.
    pub fn pack_rows_into(&self, idx: &[u32], base: usize, out: &mut [f64]) {
        assert_eq!(out.len(), idx.len() * self.cols, "pack buffer mismatch");
        if idx.is_empty() || self.cols == 0 {
            return;
        }
        let cols = self.cols;
        let t = pool::effective_threads(pool::current_threads(), out.len());
        pool::for_each_chunk_mut(t, out, PACK_CHUNK_ROWS * cols, |ci, chunk| {
            let i0 = ci * PACK_CHUNK_ROWS;
            for (di, dst) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = idx[i0 + di] as usize - base;
                dst.copy_from_slice(self.row(r));
            }
        });
    }

    /// Scatters `src`'s rows into this matrix at the listed positions
    /// (communication unpacking). Serial: `rows` may contain duplicates,
    /// which a parallel scatter could not handle deterministically.
    pub fn scatter_rows(&mut self, rows: &[u32], src: &Dense) {
        assert_eq!(rows.len(), src.rows);
        assert_eq!(self.cols, src.cols);
        for (i, &r) in rows.iter().enumerate() {
            self.row_mut(r as usize).copy_from_slice(src.row(i));
        }
    }

    /// Extracts rows `lo..hi`.
    pub fn row_slice(&self, lo: usize, hi: usize) -> Dense {
        assert!(lo <= hi && hi <= self.rows);
        Dense {
            rows: hi - lo,
            cols: self.cols,
            data: DenseStorage::Aligned(AVec::from_slice(
                &self.data.as_slice()[lo * self.cols..hi * self.cols],
            )),
        }
    }

    /// Vertically concatenates blocks with equal column counts.
    pub fn vstack(blocks: &[&Dense]) -> Dense {
        assert!(!blocks.is_empty());
        let cols = blocks[0].cols;
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = AVec::new();
        data.reserve(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack column mismatch");
            data.extend_from_slice(b.data.as_slice());
        }
        Dense {
            rows,
            cols,
            data: DenseStorage::Aligned(data),
        }
    }

    /// Applies a row permutation: `out[perm[i]] = self[i]` (old → new),
    /// matching [`crate::Csr::permute_symmetric`] so features follow their
    /// relabeled vertices.
    pub fn permute_rows(&self, perm: &[u32]) -> Dense {
        assert_eq!(perm.len(), self.rows);
        let mut out = Dense::zeros(self.rows, self.cols);
        for (old, &new) in perm.iter().enumerate() {
            out.row_mut(new as usize).copy_from_slice(self.row(old));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data().iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute element-wise difference; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Dense) -> Option<f64> {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return None;
        }
        Some(
            self.data()
                .iter()
                .zip(other.data())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// True when all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        self.max_abs_diff(other).is_some_and(|d| d <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, vals: &[f64]) -> Dense {
        Dense::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_thread_counts_bit_identical() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Dense::glorot(3 * GEMM_CHUNK_ROWS + 7, 40, &mut rng);
        let b = Dense::glorot(40, 33, &mut rng);
        let serial = a.matmul_with(&b, 1);
        for t in [2, 4, 7] {
            assert_eq!(a.matmul_with(&b, t).data(), serial.data(), "threads={t}");
        }
        let tm1 = a.transpose_matmul_with(&a, 1);
        for t in [2, 4, 7] {
            assert_eq!(
                a.transpose_matmul_with(&a, t).data(),
                tm1.data(),
                "threads={t}"
            );
        }
        let mt1 = a.matmul_transpose_with(&a, 1);
        for t in [2, 4, 7] {
            assert_eq!(
                a.matmul_transpose_with(&a, t).data(),
                mt1.data(),
                "threads={t}"
            );
        }
    }

    #[test]
    fn into_variants_match_owned() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Dense::glorot(9, 5, &mut rng);
        let b = Dense::glorot(5, 4, &mut rng);
        let mut out = Dense::from_fn(9, 4, |_, _| 42.0); // dirty buffer
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), a.matmul(&b).data());

        let c = Dense::glorot(9, 4, &mut rng);
        let mut out2 = Dense::from_fn(5, 4, |_, _| -1.0);
        a.transpose_matmul_into(&c, &mut out2);
        assert_eq!(out2.data(), a.transpose_matmul(&c).data());

        let d = Dense::glorot(7, 5, &mut rng);
        let mut out3 = Dense::from_fn(9, 7, |_, _| 3.0);
        a.matmul_transpose_into(&d, &mut out3);
        assert_eq!(out3.data(), a.matmul_transpose(&d).data());

        let mut out4 = Dense::from_fn(9, 5, |_, _| 9.0);
        a.relu_into(&mut out4);
        assert_eq!(out4.data(), a.relu().data());

        let e = Dense::glorot(9, 5, &mut rng);
        let mut out5 = Dense::zeros(9, 5);
        a.hadamard_into(&e, &mut out5);
        assert_eq!(out5.data(), a.hadamard(&e).data());
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Dense::glorot(5, 3, &mut rng);
        let b = Dense::glorot(5, 4, &mut rng);
        let fast = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fast.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Dense::glorot(4, 3, &mut rng);
        let b = Dense::glorot(5, 3, &mut rng);
        let fast = a.matmul_transpose(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fast.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn relu_and_prime() {
        let a = m(1, 4, &[-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(a.relu_prime().data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = m(4, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0]);
        let picked = a.gather_rows(&[3, 1]);
        assert_eq!(picked.row(0), &[30.0, 31.0]);
        assert_eq!(picked.row(1), &[10.0, 11.0]);
        let mut b = Dense::zeros(4, 2);
        b.scatter_rows(&[3, 1], &picked);
        assert_eq!(b.row(3), a.row(3));
        assert_eq!(b.row(1), a.row(1));
        assert_eq!(b.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn pack_rows_into_with_base() {
        let a = m(3, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        // Global ids 5..8 map to local rows 0..3 with base 5.
        let mut out = vec![0.0; 4];
        a.pack_rows_into(&[7, 5], 5, &mut out);
        assert_eq!(out, vec![20.0, 21.0, 0.0, 1.0]);
    }

    #[test]
    fn into_vec_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let v = a.clone().into_vec();
        assert_eq!(Dense::from_vec(2, 2, v), a);
    }

    #[test]
    fn permute_rows_matches_csr_convention() {
        let a = m(3, 1, &[0.0, 1.0, 2.0]);
        let p = a.permute_rows(&[2, 0, 1]);
        assert_eq!(p.data(), &[1.0, 2.0, 0.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let s = Dense::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn sgd_update() {
        let mut w = m(1, 2, &[1.0, 1.0]);
        let g = m(1, 2, &[0.5, -0.5]);
        w.sub_scaled_assign(&g, 0.1);
        assert!(w.approx_eq(&m(1, 2, &[0.95, 1.05]), 1e-15));
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Dense::glorot(10, 10, &mut rng);
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
    }
}
