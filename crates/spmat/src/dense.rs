//! Row-major dense matrices.
//!
//! `Dense` stores activations (`H`, tall-skinny `n × f`) and weights
//! (`W`, small `f × f'`). Row-major layout matches the access pattern of
//! both the SpMM kernels (stream rows of `H`) and row gather/scatter for
//! communication.

use rand::Rng;

/// A row-major dense `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialization, the standard GCN weight init.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `C = self · other` (standard GEMM, `m×k · k×n`).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows, "gemm inner dimension mismatch");
        let mut out = Dense::zeros(self.rows, other.cols);
        // ikj loop order: streams `other` and `out` rows, vectorizes well.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `C = selfᵀ · other` without materializing the transpose
    /// (`k×m` result from `m×?` inputs). Used for weight gradients
    /// `Y = Hᵀ(AG)`.
    pub fn transpose_matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "transpose_matmul row mismatch");
        let mut out = Dense::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `C = self · otherᵀ` without materializing the transpose. Used for
    /// gradient propagation `G W ᵀ`.
    pub fn matmul_transpose(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.cols, "matmul_transpose col mismatch");
        let mut out = Dense::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Dense) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= scale * other` (SGD update).
    pub fn sub_scaled_assign(&mut self, other: &Dense, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= scale * b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise product `self ⊙ other` (Hadamard).
    pub fn hadamard(&self, other: &Dense) -> Dense {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Dense {
        let data = self.data.iter().map(|&v| v.max(0.0)).collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise ReLU derivative (1 where the input was positive).
    pub fn relu_prime(&self) -> Dense {
        let data = self
            .data
            .iter()
            .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
            .collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Gathers the listed rows into a new matrix (communication packing:
    /// the rows of `H` a peer asked for).
    pub fn gather_rows(&self, rows: &[u32]) -> Dense {
        let mut out = Dense::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r as usize));
        }
        out
    }

    /// Scatters `src`'s rows into this matrix at the listed positions
    /// (communication unpacking).
    pub fn scatter_rows(&mut self, rows: &[u32], src: &Dense) {
        assert_eq!(rows.len(), src.rows);
        assert_eq!(self.cols, src.cols);
        for (i, &r) in rows.iter().enumerate() {
            self.row_mut(r as usize).copy_from_slice(src.row(i));
        }
    }

    /// Extracts rows `lo..hi`.
    pub fn row_slice(&self, lo: usize, hi: usize) -> Dense {
        assert!(lo <= hi && hi <= self.rows);
        Dense {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Vertically concatenates blocks with equal column counts.
    pub fn vstack(blocks: &[&Dense]) -> Dense {
        assert!(!blocks.is_empty());
        let cols = blocks[0].cols;
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&b.data);
        }
        Dense { rows, cols, data }
    }

    /// Applies a row permutation: `out[perm[i]] = self[i]` (old → new),
    /// matching [`crate::Csr::permute_symmetric`] so features follow their
    /// relabeled vertices.
    pub fn permute_rows(&self, perm: &[u32]) -> Dense {
        assert_eq!(perm.len(), self.rows);
        let mut out = Dense::zeros(self.rows, self.cols);
        for (old, &new) in perm.iter().enumerate() {
            out.row_mut(new as usize).copy_from_slice(self.row(old));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute element-wise difference; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Dense) -> Option<f64> {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// True when all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        self.max_abs_diff(other).is_some_and(|d| d <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, vals: &[f64]) -> Dense {
        Dense::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Dense::glorot(5, 3, &mut rng);
        let b = Dense::glorot(5, 4, &mut rng);
        let fast = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fast.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Dense::glorot(4, 3, &mut rng);
        let b = Dense::glorot(5, 3, &mut rng);
        let fast = a.matmul_transpose(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fast.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn relu_and_prime() {
        let a = m(1, 4, &[-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(a.relu_prime().data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = m(4, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0]);
        let picked = a.gather_rows(&[3, 1]);
        assert_eq!(picked.row(0), &[30.0, 31.0]);
        assert_eq!(picked.row(1), &[10.0, 11.0]);
        let mut b = Dense::zeros(4, 2);
        b.scatter_rows(&[3, 1], &picked);
        assert_eq!(b.row(3), a.row(3));
        assert_eq!(b.row(1), a.row(1));
        assert_eq!(b.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn permute_rows_matches_csr_convention() {
        let a = m(3, 1, &[0.0, 1.0, 2.0]);
        let p = a.permute_rows(&[2, 0, 1]);
        assert_eq!(p.data(), &[1.0, 2.0, 0.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let s = Dense::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn sgd_update() {
        let mut w = m(1, 2, &[1.0, 1.0]);
        let g = m(1, 2, &[0.5, -0.5]);
        w.sub_scaled_assign(&g, 0.1);
        assert!(w.approx_eq(&m(1, 2, &[0.95, 1.05]), 1e-15));
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Dense::glorot(10, 10, &mut rng);
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
    }
}
