//! Property tests for the SIMD kernel dispatch layer.
//!
//! The contract under test (see `spmat::kernel`):
//!
//! 1. **Strict mode is bit-identical to the portable scalar oracle on
//!    every backend**, at every feature width (specialized and generic,
//!    including awkward tails) and every thread count.
//! 2. **Fast mode** (FMA + reassociated reductions) stays within the
//!    documented relative-error bound `FAST_MODE_RTOL` of strict.
//! 3. **Dispatch never selects an unsupported backend**, and pinning an
//!    unsupported one fails instead of executing illegal instructions.
//!
//! Most comparisons drive per-row kernels through explicit
//! [`Kernels`] values (pure, no global state). The thread-count sweep
//! exercises the full public ops (`spmm_with`, `matmul_with`, …) and
//! therefore pins the process-global backend/mode — those sections
//! serialize on a file-local mutex so the file's tests can still run
//! concurrently.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spmat::kernel::{self, Backend, KernelMode, Kernels, FAST_MODE_RTOL, SPECIALIZED_WIDTHS};
use spmat::spmm::spmm_with;
use spmat::{Coo, Csr, Dense};

/// Serializes every test section that mutates the process-global
/// backend/mode pins.
static GLOBAL_DISPATCH: Mutex<()> = Mutex::new(());

/// Feature widths crossing every code path: sub-lane tails, exact lane
/// multiples, register-block multiples, the specialized widths and their
/// off-by-one neighbors, and a multi-block generic width.
const WIDTHS: &[usize] = &[
    1, 3, 4, 7, 8, 16, 31, 32, 33, 48, 63, 64, 65, 96, 127, 128, 129, 160,
];

/// Every backend this host can execute (scalar always; SIMD when real).
fn supported_backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|b| b.supported())
        .collect()
}

fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Csr {
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density) {
                coo.push(r, c, rng.gen_range(-1.0..1.0));
            }
        }
    }
    coo.to_csr()
}

/// Max element-wise difference scaled by the result's infinity norm —
/// `FAST_MODE_RTOL` is documented relative to the computation's scale,
/// not per element (cancellation can leave individual elements near
/// zero with arbitrarily large per-element relative error).
fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let scale = a.iter().chain(b).fold(1e-300_f64, |m, &x| m.max(x.abs()));
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / scale)
        .fold(0.0, f64::max)
}

#[test]
fn detect_only_picks_supported_backends() {
    assert!(Backend::detect().supported());
    assert!(kernel::active().backend.supported());
    for b in [Backend::Avx2, Backend::Neon] {
        if !b.supported() {
            assert!(
                kernel::try_force_backend(b).is_err(),
                "{} must refuse to pin on a host that cannot run it",
                b.label()
            );
        }
    }
}

#[test]
fn strict_spmm_rows_bitwise_equal_scalar_on_all_backends_and_widths() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let oracle = Kernels::scalar_strict();
    for &f in WIDTHS {
        let k = 23;
        let a = random_csr(1, k, 0.4, &mut rng);
        let h = Dense::glorot(k, f, &mut rng);
        let cols = a.row_cols(0);
        let vals = a.row_vals(0);
        // Dirty initial accumulator: += semantics must match too.
        let init: Vec<f64> = (0..f).map(|j| (j as f64 - 3.0) * 0.1).collect();
        let mut want = init.clone();
        oracle.spmm_row(cols, vals, h.data(), f, &mut want);
        for backend in supported_backends() {
            let ker = Kernels {
                backend,
                mode: KernelMode::Strict,
            };
            let mut got = init.clone();
            ker.spmm_row(cols, vals, h.data(), f, &mut got);
            assert_eq!(got, want, "backend={} f={f}", backend.label());
        }
    }
}

#[test]
fn strict_gemm_rows_bitwise_equal_scalar_on_all_backends_and_widths() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let oracle = Kernels::scalar_strict();
    for &n in WIDTHS {
        let k = 17;
        // Exact zeros included: the skip branch is part of the contract.
        let a_row: Vec<f64> = (0..k)
            .map(|i| {
                if i % 5 == 0 {
                    0.0
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            })
            .collect();
        let b = Dense::glorot(k, n, &mut rng);
        let mut want = vec![9.0; n]; // overwritten, not accumulated
        oracle.gemm_row(&a_row, b.data(), n, &mut want);
        for backend in supported_backends() {
            let ker = Kernels {
                backend,
                mode: KernelMode::Strict,
            };
            let mut got = vec![-9.0; n];
            ker.gemm_row(&a_row, b.data(), n, &mut got);
            assert_eq!(got, want, "backend={} n={n}", backend.label());
        }
    }
}

#[test]
fn strict_axpy_and_dot_bitwise_equal_scalar_on_all_backends() {
    let mut rng = StdRng::seed_from_u64(0xABCD);
    let oracle = Kernels::scalar_strict();
    for &n in WIDTHS {
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let a = rng.gen_range(-1.5..1.5);
        let mut want = y.clone();
        oracle.axpy(&mut want, a, &x);
        let want_dot = oracle.dot(&x, &y);
        for backend in supported_backends() {
            let ker = Kernels {
                backend,
                mode: KernelMode::Strict,
            };
            let mut got = y.clone();
            ker.axpy(&mut got, a, &x);
            assert_eq!(got, want, "axpy backend={} n={n}", backend.label());
            // Strict dot is a reduction → scalar on every backend.
            assert_eq!(
                ker.dot(&x, &y).to_bits(),
                want_dot.to_bits(),
                "dot backend={} n={n}",
                backend.label()
            );
        }
    }
}

#[test]
fn strict_full_ops_bitwise_equal_across_backends_and_thread_counts() {
    let _guard = GLOBAL_DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    // Multiple scheduling chunks in every op; mixed specialized (64) and
    // generic (33) widths.
    for &f in &[33usize, 64] {
        let a = random_csr(200, 90, 0.15, &mut rng);
        let h = Dense::glorot(90, f, &mut rng);
        let w = Dense::glorot(f, 48, &mut rng);
        let mut want: Option<(Dense, Dense, Dense, Dense)> = None;
        for backend in supported_backends() {
            kernel::try_force_backend(backend).unwrap();
            kernel::set_mode(KernelMode::Strict);
            for threads in [1usize, 2, 4, 7] {
                let got = (
                    spmm_with(&a, &h, threads),
                    h.matmul_with(&w, threads),
                    h.transpose_matmul_with(&h, threads),
                    h.matmul_transpose_with(&h, threads),
                );
                match &want {
                    None => want = Some(got),
                    Some(w0) => {
                        assert_eq!(
                            got.0.data(),
                            w0.0.data(),
                            "spmm {backend:?} t={threads} f={f}"
                        );
                        assert_eq!(
                            got.1.data(),
                            w0.1.data(),
                            "gemm {backend:?} t={threads} f={f}"
                        );
                        assert_eq!(
                            got.2.data(),
                            w0.2.data(),
                            "transpose_matmul {backend:?} t={threads} f={f}"
                        );
                        assert_eq!(
                            got.3.data(),
                            w0.3.data(),
                            "matmul_transpose {backend:?} t={threads} f={f}"
                        );
                    }
                }
            }
        }
        kernel::clear_forced_backend();
    }
}

#[test]
fn fast_mode_stays_within_documented_tolerance() {
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let oracle = Kernels::scalar_strict();
    for &f in WIDTHS {
        let k = 64;
        let a = random_csr(1, k, 0.5, &mut rng);
        let h = Dense::glorot(k, f, &mut rng);
        let (cols, vals) = (a.row_cols(0), a.row_vals(0));
        let mut want = vec![0.0; f];
        oracle.spmm_row(cols, vals, h.data(), f, &mut want);
        let x: Vec<f64> = (0..256).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..256).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let want_dot = oracle.dot(&x, &y);
        for backend in supported_backends() {
            let ker = Kernels {
                backend,
                mode: KernelMode::Fast,
            };
            let mut got = vec![0.0; f];
            ker.spmm_row(cols, vals, h.data(), f, &mut got);
            assert!(
                max_rel_diff(&got, &want) <= FAST_MODE_RTOL,
                "fast spmm beyond rtol: backend={} f={f}",
                backend.label()
            );
            let got_dot = ker.dot(&x, &y);
            // Scale of the reduction, immune to cancellation in the sum.
            let denom = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a * b).abs())
                .sum::<f64>()
                .max(1e-300);
            assert!(
                (got_dot - want_dot).abs() / denom <= FAST_MODE_RTOL,
                "fast dot beyond rtol: backend={}",
                backend.label()
            );
        }
    }
}

#[test]
fn fast_mode_full_training_ops_close_to_strict() {
    let _guard = GLOBAL_DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let a = random_csr(150, 80, 0.2, &mut rng);
    let h = Dense::glorot(80, 64, &mut rng);
    kernel::clear_forced_backend();
    kernel::set_mode(KernelMode::Strict);
    let strict = spmm_with(&a, &h, 2);
    let strict_mt = h.matmul_transpose_with(&h, 2);
    kernel::set_mode(KernelMode::Fast);
    let fast = spmm_with(&a, &h, 2);
    let fast_mt = h.matmul_transpose_with(&h, 2);
    kernel::set_mode(KernelMode::Strict);
    assert!(max_rel_diff(fast.data(), strict.data()) <= FAST_MODE_RTOL);
    assert!(max_rel_diff(fast_mt.data(), strict_mt.data()) <= FAST_MODE_RTOL);
}

#[test]
fn specialized_widths_are_block_multiples() {
    // The register-blocked SIMD kernels assume the specialized widths
    // decompose into whole vector blocks on every backend.
    for w in SPECIALIZED_WIDTHS {
        assert_eq!(w % 32, 0, "width {w} must be a multiple of the x86 block");
        assert_eq!(w % 16, 0, "width {w} must be a multiple of the neon block");
    }
}

#[test]
fn forced_backend_roundtrip_restores_auto_detect() {
    let _guard = GLOBAL_DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
    let auto = Backend::detect();
    kernel::try_force_backend(Backend::Scalar).unwrap();
    assert_eq!(kernel::active().backend, Backend::Scalar);
    kernel::clear_forced_backend();
    assert_eq!(kernel::active().backend, auto);
}
