//! Property-style tests for the parallel kernels: for seeded random
//! shapes and densities, the chunked parallel SpMM/GEMM paths must be
//! **bit-identical** to their serial forms (chunk boundaries depend only
//! on the problem size, and per-element accumulation order matches the
//! serial kernel), and numerically consistent with the naive reference.
//! Edge cases — empty matrices, single-row chunks, more threads than
//! rows — are exercised explicitly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmat::spmm::{spmm_acc_with, spmm_naive, spmm_with};
use spmat::{Coo, Csr, Dense};

/// Thread counts to pit against serial; deliberately includes an odd
/// count and one far beyond this machine's cores.
const THREADS: [usize; 4] = [2, 4, 7, 16];

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> Csr {
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen::<f64>() < density {
                coo.push(r, c, rng.gen_range(-2.0..2.0));
            }
        }
    }
    coo.to_csr()
}

fn random_dense(rng: &mut StdRng, rows: usize, cols: usize) -> Dense {
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn assert_bits_eq(a: &Dense, b: &Dense, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

#[test]
fn spmm_random_shapes_thread_invariant_and_match_naive() {
    let mut rng = StdRng::seed_from_u64(42);
    for case in 0..24 {
        let rows = rng.gen_range(0..200);
        let cols = rng.gen_range(1..180);
        // Cross the FTILE=64 column-tile boundary from both sides.
        let f = rng.gen_range(1..150);
        let density = [0.01, 0.1, 0.5][case % 3];
        let a = random_csr(&mut rng, rows, cols, density);
        let h = random_dense(&mut rng, cols, f);

        let serial = spmm_with(&a, &h, 1);
        let naive = spmm_naive(&a, &h);
        assert!(
            serial.approx_eq(&naive, 1e-12),
            "case {case}: serial vs naive ({rows}x{cols}, f={f}, d={density})"
        );
        for t in THREADS {
            let par = spmm_with(&a, &h, t);
            assert_bits_eq(&serial, &par, &format!("case {case} spmm t={t}"));
        }
    }
}

#[test]
fn spmm_acc_on_dirty_output_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..8 {
        let (rows, cols, f) = (
            rng.gen_range(1..120),
            rng.gen_range(1..120),
            rng.gen_range(1..100),
        );
        let a = random_csr(&mut rng, rows, cols, 0.15);
        let h = random_dense(&mut rng, cols, f);
        let dirty = random_dense(&mut rng, rows, f);

        let mut serial = dirty.clone();
        spmm_acc_with(&a, &h, &mut serial, 1);
        for t in THREADS {
            let mut par = dirty.clone();
            spmm_acc_with(&a, &h, &mut par, t);
            assert_bits_eq(&serial, &par, &format!("spmm_acc t={t}"));
        }
    }
}

#[test]
fn spmm_empty_matrices() {
    let h0 = Dense::zeros(0, 8);
    for t in [1, 2, 16] {
        // Zero rows.
        let z = spmm_with(&Csr::empty(0, 0), &h0, t);
        assert_eq!((z.rows(), z.cols()), (0, 8));
        // Zero feature columns.
        let z = spmm_with(&Csr::identity(5), &Dense::zeros(5, 0), t);
        assert_eq!((z.rows(), z.cols()), (5, 0));
        // Structurally empty (no nonzeros) but shaped.
        let z = spmm_with(&Csr::empty(6, 4), &Dense::zeros(4, 3), t);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn spmm_more_threads_than_rows() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = random_csr(&mut rng, 3, 10, 0.5);
    let h = random_dense(&mut rng, 10, 33);
    let serial = spmm_with(&a, &h, 1);
    for t in [4, 16, 64] {
        assert_bits_eq(&serial, &spmm_with(&a, &h, t), &format!("3 rows, t={t}"));
    }
}

#[test]
fn spmm_single_row_identity_chunks() {
    // One row per matrix forces a single chunk regardless of threads.
    let mut rng = StdRng::seed_from_u64(13);
    let a = random_csr(&mut rng, 1, 50, 0.3);
    let h = random_dense(&mut rng, 50, 65); // f just over one tile
    let serial = spmm_with(&a, &h, 1);
    for t in THREADS {
        assert_bits_eq(&serial, &spmm_with(&a, &h, t), &format!("1 row, t={t}"));
    }
}

#[test]
fn gemm_random_shapes_thread_invariant() {
    let mut rng = StdRng::seed_from_u64(99);
    for case in 0..12 {
        let (m, k, n) = (
            rng.gen_range(0..90),
            rng.gen_range(1..90),
            rng.gen_range(1..90),
        );
        let a = random_dense(&mut rng, m, k);
        let b = random_dense(&mut rng, k, n);

        let serial = a.matmul_with(&b, 1);
        for t in THREADS {
            assert_bits_eq(
                &serial,
                &a.matmul_with(&b, t),
                &format!("case {case} matmul t={t}"),
            );
        }

        // AᵀB: (k×m)ᵀ · (k×n)
        let at = random_dense(&mut rng, k, m);
        let serial = at.transpose_matmul_with(&b, 1);
        for t in THREADS {
            assert_bits_eq(
                &serial,
                &at.transpose_matmul_with(&b, t),
                &format!("case {case} transpose_matmul t={t}"),
            );
        }

        // ABᵀ: (m×k) · (n×k)ᵀ
        let bt = random_dense(&mut rng, n, k);
        let serial = a.matmul_transpose_with(&bt, 1);
        for t in THREADS {
            assert_bits_eq(
                &serial,
                &a.matmul_transpose_with(&bt, t),
                &format!("case {case} matmul_transpose t={t}"),
            );
        }
    }
}

#[test]
fn gemm_against_explicit_reference() {
    let mut rng = StdRng::seed_from_u64(5);
    let (m, k, n) = (17, 23, 9);
    let a = random_dense(&mut rng, m, k);
    let b = random_dense(&mut rng, k, n);
    let got = a.matmul_with(&b, 4);
    let want = Dense::from_fn(m, n, |i, j| {
        (0..k)
            .map(|l| a.data()[i * k + l] * b.data()[l * n + j])
            .sum()
    });
    assert!(got.approx_eq(&want, 1e-12));
}

#[test]
fn global_thread_setting_is_bit_invariant_end_to_end() {
    // The env-driven global default feeds the same `*_with` kernels, so
    // flipping it must not change results either.
    let mut rng = StdRng::seed_from_u64(21);
    let a = random_csr(&mut rng, 150, 150, 0.05);
    let h = random_dense(&mut rng, 150, 40);
    let mut outs = Vec::new();
    for t in [1usize, 2, 4, 7] {
        spmat::pool::set_threads(t);
        outs.push(spmat::spmm::spmm(&a, &h));
    }
    spmat::pool::set_threads(0);
    for (i, o) in outs.iter().enumerate().skip(1) {
        assert_bits_eq(&outs[0], o, &format!("global threads variant {i}"));
    }
}
