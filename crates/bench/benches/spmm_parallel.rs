//! Kernel-level scaling bench: serial vs multi-threaded SpMM and GEMM
//! across matrix density and feature width, per-backend (forced scalar
//! vs SIMD) single-core throughput, plus an end-to-end epoch-time axis
//! over thread counts. Writes machine-readable results (with GFLOP/s) to
//! `results/BENCH_kernels.json` in one run:
//!
//! ```text
//! cargo bench --bench spmm_parallel
//! ```
//!
//! Times are minimums over several repetitions (the usual way to cut
//! scheduler noise out of kernel measurements). The JSON records the
//! host's hardware thread count so speedups can be judged fairly: thread
//! counts beyond the physical cores time-slice one core and cannot beat
//! serial.
//!
//! # Per-host perf gate
//!
//! Absolute GFLOP/s are meaningless across machines (a 1-thread CI
//! runner is not a regression relative to a 16-core workstation), so
//! the gate compares each kernel only against a baseline recorded *on
//! the same host class*, keyed by `<hostname>/<hardware_threads>` in
//! `results/BASELINE_kernels.json`. The first run on a new host records
//! its numbers and passes; later runs fail (exit 1) if any kernel drops
//! below 70% of that host's baseline, and ratchet the baseline up when
//! a run beats it. Thread counts above the host's hardware parallelism
//! are measured and reported but never gated.
//!
//! Default-dispatch SpMM rows keep the original `spmm/<matrix>/f<f>/t<t>`
//! key format so baselines recorded before the SIMD kernel layer landed
//! still gate (and get ratcheted by) the dispatched numbers — that
//! continuity is what lets the ratchet *prove* a dispatch speedup on a
//! host instead of silently re-baselining it. Forced-backend rows carry
//! an `@<backend>` key suffix (and `@fast` in Fast mode) so each backend
//! ratchets independently.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use gnn_comm::CostModel;
use gnn_core::dist::even_bounds;
use gnn_core::{train_distributed, Algo, DistConfig, GcnConfig};
use spmat::dataset::amazon_scaled;
use spmat::gen::{rmat, RmatConfig};
use spmat::graph::gcn_normalize;
use spmat::kernel::{self, Backend};
use spmat::pool;
use spmat::spmm::{spmm_flops, spmm_with};
use spmat::{Csr, Dense};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

struct KernelRow {
    /// Which kernel family: `"spmm"` or `"gemm"`.
    op: &'static str,
    matrix: String,
    n: usize,
    nnz: usize,
    f: usize,
    threads: usize,
    /// Backend label the row executed under (e.g. `avx2`, `scalar`).
    backend: &'static str,
    /// Numerics mode label (`strict` or `fast`).
    mode: &'static str,
    /// `true` for rows measured under an explicitly pinned backend —
    /// these gate under backend-tagged keys, never the legacy ones.
    forced: bool,
    seconds: f64,
    gflops: f64,
    speedup: f64,
}

struct EpochRow {
    algo: String,
    threads: usize,
    seconds_per_epoch: f64,
}

fn min_time(mut run: impl FnMut()) -> f64 {
    // One untimed warm-up: the first measured kernel of the process
    // otherwise pays for page faults and frequency ramp-up, which can
    // halve its apparent GFLOP/s and trip the per-host gate.
    run();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Sustained kernel work before any measurement: on hosts with
/// aggressive frequency scaling (1-vCPU VMs especially) the first
/// measured case otherwise reads ~2x low — enough to trip the per-host
/// gate — because the governor hasn't ramped yet. One second of real
/// SpMM is enough to reach steady clocks.
fn warm_cpu() {
    let adj: Csr = gcn_normalize(&rmat(RmatConfig::graph500(10, 8, 7)));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let h = Dense::glorot(adj.rows(), 32, &mut rng);
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < 1.0 {
        std::hint::black_box(spmm_with(&adj, &h, 1));
    }
}

/// Every backend this host can pin: scalar always, plus the SIMD one
/// auto-detect would pick (when that isn't already scalar).
fn pinnable_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    let auto = Backend::detect();
    if auto != Backend::Scalar {
        v.push(auto);
    }
    v
}

fn mode_label() -> &'static str {
    kernel::current_mode().label()
}

fn bench_spmm() -> Vec<KernelRow> {
    let mut rows = Vec::new();
    // Density axis: R-MAT edge factor; width axis: feature count —
    // every specialized width (32/64/128) appears on at least one
    // matrix so the register-blocked paths are all exercised.
    let cases: Vec<(u32, usize, usize)> = vec![
        (12, 4, 32),   // sparse, narrow
        (12, 4, 128),  // sparse, wide
        (12, 16, 32),  // dense, narrow
        (12, 16, 64),  // dense, mid — the third specialized width
        (12, 16, 128), // dense, wide — the largest benchmark matrix
    ];
    for (scale, edge_factor, f) in cases {
        let adj: Csr = gcn_normalize(&rmat(RmatConfig::graph500(scale, edge_factor, 7)));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(scale as u64);
        let h = Dense::glorot(adj.rows(), f, &mut rng);
        let name = format!("rmat-s{scale}-e{edge_factor}");
        let flops = spmm_flops(&adj, f) as f64;

        // Default dispatch across the thread sweep.
        let auto = kernel::active().backend.label();
        let serial = min_time(|| {
            std::hint::black_box(spmm_with(&adj, &h, 1));
        });
        for &t in &THREAD_COUNTS {
            let secs = if t == 1 {
                serial
            } else {
                min_time(|| {
                    std::hint::black_box(spmm_with(&adj, &h, t));
                })
            };
            let row = KernelRow {
                op: "spmm",
                matrix: name.clone(),
                n: adj.rows(),
                nnz: adj.nnz(),
                f,
                threads: t,
                backend: auto,
                mode: mode_label(),
                forced: false,
                seconds: secs,
                gflops: flops / secs / 1e9,
                speedup: serial / secs,
            };
            println!(
                "spmm/{}/f{}/t{} [{}]  {:>10.3} ms   {:>7.3} GFLOP/s   {:>5.2}x vs serial",
                row.matrix,
                row.f,
                row.threads,
                row.backend,
                row.seconds * 1e3,
                row.gflops,
                row.speedup
            );
            rows.push(row);
        }

        // Forced-backend single-core rows: the scalar-vs-SIMD axis.
        for backend in pinnable_backends() {
            kernel::try_force_backend(backend).expect("pinnable backend must pin");
            let secs = min_time(|| {
                std::hint::black_box(spmm_with(&adj, &h, 1));
            });
            kernel::clear_forced_backend();
            let row = KernelRow {
                op: "spmm",
                matrix: name.clone(),
                n: adj.rows(),
                nnz: adj.nnz(),
                f,
                threads: 1,
                backend: backend.label(),
                mode: mode_label(),
                forced: true,
                seconds: secs,
                gflops: flops / secs / 1e9,
                speedup: serial / secs,
            };
            println!(
                "spmm/{}/f{}/t1@{}  {:>10.3} ms   {:>7.3} GFLOP/s   {:>5.2}x vs dispatch",
                row.matrix,
                row.f,
                row.backend,
                row.seconds * 1e3,
                row.gflops,
                row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn bench_gemm() -> Vec<KernelRow> {
    let mut rows = Vec::new();
    // Tall-skinny GEMM shapes from the training loop: activations
    // (n × k) times a weight block (k × c). The output width c is what
    // the register-blocked kernels specialize on — sweep the
    // specialized widths plus one generic width (96 = 3 × 32 blocks but
    // no dedicated const instantiation).
    let n = 4096usize;
    let k = 64usize;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let a = Dense::glorot(n, k, &mut rng);
    for c in [32usize, 64, 96, 128] {
        let b = Dense::glorot(k, c, &mut rng);
        let name = format!("dense-{n}x{k}");
        let flops = (2 * n * k * c) as f64;

        let auto = kernel::active().backend.label();
        let serial = min_time(|| {
            std::hint::black_box(a.matmul_with(&b, 1));
        });
        for &t in &THREAD_COUNTS {
            let secs = if t == 1 {
                serial
            } else {
                min_time(|| {
                    std::hint::black_box(a.matmul_with(&b, t));
                })
            };
            let row = KernelRow {
                op: "gemm",
                matrix: name.clone(),
                n,
                nnz: n * k,
                f: c,
                threads: t,
                backend: auto,
                mode: mode_label(),
                forced: false,
                seconds: secs,
                gflops: flops / secs / 1e9,
                speedup: serial / secs,
            };
            println!(
                "gemm/{}/f{}/t{} [{}]  {:>10.3} ms   {:>7.3} GFLOP/s   {:>5.2}x vs serial",
                row.matrix,
                row.f,
                row.threads,
                row.backend,
                row.seconds * 1e3,
                row.gflops,
                row.speedup
            );
            rows.push(row);
        }

        for backend in pinnable_backends() {
            kernel::try_force_backend(backend).expect("pinnable backend must pin");
            let secs = min_time(|| {
                std::hint::black_box(a.matmul_with(&b, 1));
            });
            kernel::clear_forced_backend();
            let row = KernelRow {
                op: "gemm",
                matrix: name.clone(),
                n,
                nnz: n * k,
                f: c,
                threads: 1,
                backend: backend.label(),
                mode: mode_label(),
                forced: true,
                seconds: secs,
                gflops: flops / secs / 1e9,
                speedup: serial / secs,
            };
            println!(
                "gemm/{}/f{}/t1@{}  {:>10.3} ms   {:>7.3} GFLOP/s   {:>5.2}x vs dispatch",
                row.matrix,
                row.f,
                row.backend,
                row.seconds * 1e3,
                row.gflops,
                row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn bench_epochs() -> Vec<EpochRow> {
    let mut rows = Vec::new();
    let ds = amazon_scaled(10, 1);
    let gcn = GcnConfig::paper_default(ds.f(), ds.num_classes);
    let algo = Algo::OneD { aware: true };
    let bounds = even_bounds(ds.n(), 4);
    let epochs = 2;
    let cfg = DistConfig::new(algo, gcn, epochs, CostModel::perlmutter_like());
    for &t in &THREAD_COUNTS {
        pool::set_threads(t);
        let secs = min_time(|| {
            std::hint::black_box(train_distributed(&ds, &bounds, &cfg));
        }) / epochs as f64;
        println!(
            "epoch/{}/t{}  {:>10.3} ms per epoch (simulation wall time)",
            algo.label(),
            t,
            secs * 1e3
        );
        rows.push(EpochRow {
            algo: algo.label(),
            threads: t,
            seconds_per_epoch: secs,
        });
    }
    pool::set_threads(0);
    rows
}

/// `<hostname>/<hardware_threads>` — the identity a baseline belongs
/// to. Two hosts with the same name but different core counts (or the
/// same box with threads restricted) get independent baselines.
fn host_key() -> String {
    let host = std::env::var("HOSTNAME")
        .ok()
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "unknown".into());
    format!("{host}/{}", pool::hardware_threads())
}

/// The best backend this hardware can execute, ignoring any
/// `GNN_KERNEL_BACKEND` pin. Legacy untagged baseline keys always mean
/// "the best auto-dispatched kernel on this host" — an env-pinned run
/// must not gate its (slower) numbers against them.
fn hardware_best() -> Backend {
    if Backend::Avx2.supported() {
        Backend::Avx2
    } else if Backend::Neon.supported() {
        Backend::Neon
    } else {
        Backend::Scalar
    }
}

/// The baseline identity of a row. Default-dispatch rows on the
/// hardware-best backend use the pre-SIMD legacy format for baseline
/// continuity (see module docs); everything else — forced rows, env
/// pins, fast mode — is explicitly tagged by backend / mode.
fn gate_key(host: &str, r: &KernelRow) -> String {
    let mut k = format!("{host}|{}/{}/f{}/t{}", r.op, r.matrix, r.f, r.threads);
    if r.forced || r.backend != hardware_best().label() {
        let _ = write!(k, "@{}", r.backend);
    }
    if r.mode != "strict" {
        let _ = write!(k, "@{}", r.mode);
    }
    k
}

fn results_dir() -> PathBuf {
    // Bench binaries run with the package as CWD; anchor the output at
    // the workspace-level results/ directory instead.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn baseline_path() -> PathBuf {
    results_dir().join("BASELINE_kernels.json")
}

/// The baseline store is a flat one-entry-per-line JSON object written
/// by [`write_baselines`]; that rigid shape is what makes this
/// dependency-free parse safe.
fn load_baselines() -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(baseline_path()) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once("\": ") else {
            continue;
        };
        let key = key.trim_start_matches('"');
        if let Ok(v) = value.parse::<f64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

fn write_baselines(map: &BTreeMap<String, f64>) -> std::io::Result<()> {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 == map.len() { "" } else { "," };
        let _ = writeln!(s, "  \"{k}\": {v:.4}{comma}");
    }
    let _ = writeln!(s, "}}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(baseline_path(), s)
}

/// Fraction of the recorded per-host baseline a kernel may drop to
/// before the gate fails; headroom for scheduler noise on shared CI.
const GATE_TOLERANCE: f64 = 0.70;

/// Compares this run against the host's recorded baselines. Returns the
/// list of regressions (empty on a first run, which only records).
fn gate_against_baselines(kernels: &[KernelRow]) -> Vec<String> {
    let key = host_key();
    let hw = pool::hardware_threads();
    let mut baselines = load_baselines();
    let mut failures = Vec::new();
    let mut recorded = 0usize;
    // Best sample per gate key: a key can be measured more than once in
    // a run (an env-pinned default row and a forced row on the same
    // backend), and taking the max extends min-over-reps across rows —
    // on steal-prone shared VMs a single min_time can still read low.
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for r in kernels {
        if r.threads > hw {
            continue; // oversubscribed: time-sliced, not a perf signal
        }
        let k = gate_key(&key, r);
        let e = best.entry(k).or_insert(f64::NEG_INFINITY);
        *e = e.max(r.gflops);
    }
    for (k, gflops) in &best {
        let (k, gflops) = (k.clone(), *gflops);
        match baselines.get(&k).copied() {
            None => {
                baselines.insert(k, gflops);
                recorded += 1;
            }
            Some(base) if gflops < base * GATE_TOLERANCE => {
                failures.push(format!(
                    "kernel regression on {k}: {gflops:.3} GFLOP/s is below {:.0}% of \
                     the host baseline {base:.3}",
                    GATE_TOLERANCE * 100.0,
                ));
            }
            Some(base) if gflops > base => {
                println!(
                    "[ratchet] {k}: {base:.3} -> {gflops:.3} GFLOP/s ({:.2}x)",
                    gflops / base
                );
                baselines.insert(k, gflops); // ratchet the baseline up
            }
            Some(_) => {}
        }
    }
    if failures.is_empty() {
        if let Err(e) = write_baselines(&baselines) {
            eprintln!(
                "warning: could not write {}: {e}",
                baseline_path().display()
            );
        }
    }
    if recorded > 0 {
        println!("[{recorded} baseline(s) recorded for host {key}; gate passes on first sight]");
    } else if failures.is_empty() {
        println!("[kernel gate passed against recorded baselines for host {key}]");
    }
    failures
}

fn write_json(kernels: &[KernelRow], epochs: &[EpochRow]) -> std::io::Result<String> {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"host\": {{ \"key\": \"{}\", \"hardware_threads\": {}, \
         \"auto_backend\": \"{}\", \"mode\": \"{}\" }},",
        host_key(),
        pool::hardware_threads(),
        Backend::detect().label(),
        mode_label()
    );
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"op\": \"{}\", \"matrix\": \"{}\", \"n\": {}, \"nnz\": {}, \"f\": {}, \
             \"threads\": {}, \"backend\": \"{}\", \"mode\": \"{}\", \"forced\": {}, \
             \"seconds\": {:.6e}, \"gflops\": {:.4}, \"speedup_vs_serial\": {:.3} }}{comma}",
            r.op,
            r.matrix,
            r.n,
            r.nnz,
            r.f,
            r.threads,
            r.backend,
            r.mode,
            r.forced,
            r.seconds,
            r.gflops,
            r.speedup
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"epochs\": [");
    for (i, r) in epochs.iter().enumerate() {
        let comma = if i + 1 == epochs.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"algo\": \"{}\", \"threads\": {}, \"seconds_per_epoch\": {:.6e} }}{comma}",
            r.algo, r.threads, r.seconds_per_epoch
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(&path, &s)?;
    Ok(path.display().to_string())
}

fn main() {
    // Honor GNN_KERNEL for mode (strict is the default); non-strict
    // runs gate under `@fast`-tagged keys so they never pollute the
    // strict baselines.
    let kernels_active = kernel::active();
    println!(
        "host: {} ({} hardware thread(s); {} backend, {} mode)",
        host_key(),
        pool::hardware_threads(),
        kernels_active.backend.label(),
        kernels_active.mode.label()
    );
    warm_cpu();
    let mut kernels = bench_spmm();
    kernels.extend(bench_gemm());
    let epochs = bench_epochs();
    match write_json(&kernels, &epochs) {
        Ok(path) => println!("[results written to {path}]"),
        Err(e) => eprintln!("warning: could not write BENCH_kernels.json: {e}"),
    }
    let failures = gate_against_baselines(&kernels);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
