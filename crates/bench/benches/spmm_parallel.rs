//! Kernel-level scaling bench: serial vs multi-threaded SpMM across
//! matrix density and feature width, plus an end-to-end epoch-time axis
//! over thread counts. Writes machine-readable results (with GFLOP/s) to
//! `results/BENCH_kernels.json` in one run:
//!
//! ```text
//! cargo bench --bench spmm_parallel
//! ```
//!
//! Times are minimums over several repetitions (the usual way to cut
//! scheduler noise out of kernel measurements). The JSON records the
//! host's hardware thread count so speedups can be judged fairly: thread
//! counts beyond the physical cores time-slice one core and cannot beat
//! serial.
//!
//! # Per-host perf gate
//!
//! Absolute GFLOP/s are meaningless across machines (a 1-thread CI
//! runner is not a regression relative to a 16-core workstation), so
//! the gate compares each kernel only against a baseline recorded *on
//! the same host class*, keyed by `<hostname>/<hardware_threads>` in
//! `results/BASELINE_kernels.json`. The first run on a new host records
//! its numbers and passes; later runs fail (exit 1) if any kernel drops
//! below 70% of that host's baseline, and ratchet the baseline up when
//! a run beats it. Thread counts above the host's hardware parallelism
//! are measured and reported but never gated.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use gnn_comm::CostModel;
use gnn_core::dist::even_bounds;
use gnn_core::{train_distributed, Algo, DistConfig, GcnConfig};
use spmat::dataset::amazon_scaled;
use spmat::gen::{rmat, RmatConfig};
use spmat::graph::gcn_normalize;
use spmat::pool;
use spmat::spmm::{spmm_flops, spmm_with};
use spmat::{Csr, Dense};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

struct KernelRow {
    matrix: String,
    n: usize,
    nnz: usize,
    f: usize,
    threads: usize,
    seconds: f64,
    gflops: f64,
    speedup: f64,
}

struct EpochRow {
    algo: String,
    threads: usize,
    seconds_per_epoch: f64,
}

fn min_time(mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_kernels() -> Vec<KernelRow> {
    let mut rows = Vec::new();
    // Density axis: R-MAT edge factor; width axis: feature count.
    let cases: Vec<(u32, usize, usize)> = vec![
        (12, 4, 32),   // sparse, narrow
        (12, 4, 128),  // sparse, wide
        (12, 16, 32),  // dense, narrow
        (12, 16, 128), // dense, wide — the largest benchmark matrix
    ];
    for (scale, edge_factor, f) in cases {
        let adj: Csr = gcn_normalize(&rmat(RmatConfig::graph500(scale, edge_factor, 7)));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(scale as u64);
        let h = Dense::glorot(adj.rows(), f, &mut rng);
        let name = format!("rmat-s{scale}-e{edge_factor}");
        let flops = spmm_flops(&adj, f) as f64;

        let serial = min_time(|| {
            std::hint::black_box(spmm_with(&adj, &h, 1));
        });
        for &t in &THREAD_COUNTS {
            let secs = if t == 1 {
                serial
            } else {
                min_time(|| {
                    std::hint::black_box(spmm_with(&adj, &h, t));
                })
            };
            let row = KernelRow {
                matrix: name.clone(),
                n: adj.rows(),
                nnz: adj.nnz(),
                f,
                threads: t,
                seconds: secs,
                gflops: flops / secs / 1e9,
                speedup: serial / secs,
            };
            println!(
                "spmm/{}/f{}/t{}  {:>10.3} ms   {:>7.3} GFLOP/s   {:>5.2}x vs serial",
                row.matrix,
                row.f,
                row.threads,
                row.seconds * 1e3,
                row.gflops,
                row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn bench_epochs() -> Vec<EpochRow> {
    let mut rows = Vec::new();
    let ds = amazon_scaled(10, 1);
    let gcn = GcnConfig::paper_default(ds.f(), ds.num_classes);
    let algo = Algo::OneD { aware: true };
    let bounds = even_bounds(ds.n(), 4);
    let epochs = 2;
    let cfg = DistConfig::new(algo, gcn, epochs, CostModel::perlmutter_like());
    for &t in &THREAD_COUNTS {
        pool::set_threads(t);
        let secs = min_time(|| {
            std::hint::black_box(train_distributed(&ds, &bounds, &cfg));
        }) / epochs as f64;
        println!(
            "epoch/{}/t{}  {:>10.3} ms per epoch (simulation wall time)",
            algo.label(),
            t,
            secs * 1e3
        );
        rows.push(EpochRow {
            algo: algo.label(),
            threads: t,
            seconds_per_epoch: secs,
        });
    }
    pool::set_threads(0);
    rows
}

/// `<hostname>/<hardware_threads>` — the identity a baseline belongs
/// to. Two hosts with the same name but different core counts (or the
/// same box with threads restricted) get independent baselines.
fn host_key() -> String {
    let host = std::env::var("HOSTNAME")
        .ok()
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .unwrap_or_else(|| "unknown".into());
    format!("{host}/{}", pool::hardware_threads())
}

fn results_dir() -> PathBuf {
    // Bench binaries run with the package as CWD; anchor the output at
    // the workspace-level results/ directory instead.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn baseline_path() -> PathBuf {
    results_dir().join("BASELINE_kernels.json")
}

/// The baseline store is a flat one-entry-per-line JSON object written
/// by [`write_baselines`]; that rigid shape is what makes this
/// dependency-free parse safe.
fn load_baselines() -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(baseline_path()) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once("\": ") else {
            continue;
        };
        let key = key.trim_start_matches('"');
        if let Ok(v) = value.parse::<f64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

fn write_baselines(map: &BTreeMap<String, f64>) -> std::io::Result<()> {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    for (i, (k, v)) in map.iter().enumerate() {
        let comma = if i + 1 == map.len() { "" } else { "," };
        let _ = writeln!(s, "  \"{k}\": {v:.4}{comma}");
    }
    let _ = writeln!(s, "}}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(baseline_path(), s)
}

/// Fraction of the recorded per-host baseline a kernel may drop to
/// before the gate fails; headroom for scheduler noise on shared CI.
const GATE_TOLERANCE: f64 = 0.70;

/// Compares this run against the host's recorded baselines. Returns the
/// list of regressions (empty on a first run, which only records).
fn gate_against_baselines(kernels: &[KernelRow]) -> Vec<String> {
    let key = host_key();
    let hw = pool::hardware_threads();
    let mut baselines = load_baselines();
    let mut failures = Vec::new();
    let mut recorded = 0usize;
    for r in kernels {
        if r.threads > hw {
            continue; // oversubscribed: time-sliced, not a perf signal
        }
        let k = format!("{key}|spmm/{}/f{}/t{}", r.matrix, r.f, r.threads);
        match baselines.get(&k).copied() {
            None => {
                baselines.insert(k, r.gflops);
                recorded += 1;
            }
            Some(base) if r.gflops < base * GATE_TOLERANCE => {
                failures.push(format!(
                    "kernel regression on {key}: spmm/{}/f{}/t{} at {:.3} GFLOP/s \
                     is below {:.0}% of the host baseline {:.3}",
                    r.matrix,
                    r.f,
                    r.threads,
                    r.gflops,
                    GATE_TOLERANCE * 100.0,
                    base
                ));
            }
            Some(base) if r.gflops > base => {
                baselines.insert(k, r.gflops); // ratchet the baseline up
            }
            Some(_) => {}
        }
    }
    if failures.is_empty() {
        if let Err(e) = write_baselines(&baselines) {
            eprintln!(
                "warning: could not write {}: {e}",
                baseline_path().display()
            );
        }
    }
    if recorded > 0 {
        println!("[{recorded} baseline(s) recorded for host {key}; gate passes on first sight]");
    } else if failures.is_empty() {
        println!("[kernel gate passed against recorded baselines for host {key}]");
    }
    failures
}

fn write_json(kernels: &[KernelRow], epochs: &[EpochRow]) -> std::io::Result<String> {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"host\": {{ \"key\": \"{}\", \"hardware_threads\": {} }},",
        host_key(),
        pool::hardware_threads()
    );
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"matrix\": \"{}\", \"n\": {}, \"nnz\": {}, \"f\": {}, \"threads\": {}, \
             \"seconds\": {:.6e}, \"gflops\": {:.4}, \"speedup_vs_serial\": {:.3} }}{comma}",
            r.matrix, r.n, r.nnz, r.f, r.threads, r.seconds, r.gflops, r.speedup
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"epochs\": [");
    for (i, r) in epochs.iter().enumerate() {
        let comma = if i + 1 == epochs.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"algo\": \"{}\", \"threads\": {}, \"seconds_per_epoch\": {:.6e} }}{comma}",
            r.algo, r.threads, r.seconds_per_epoch
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(&path, &s)?;
    Ok(path.display().to_string())
}

fn main() {
    println!(
        "host: {} ({} hardware thread(s) available)",
        host_key(),
        pool::hardware_threads()
    );
    let kernels = bench_kernels();
    let epochs = bench_epochs();
    match write_json(&kernels, &epochs) {
        Ok(path) => println!("[results written to {path}]"),
        Err(e) => eprintln!("warning: could not write BENCH_kernels.json: {e}"),
    }
    let failures = gate_against_baselines(&kernels);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
