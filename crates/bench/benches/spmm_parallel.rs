//! Kernel-level scaling bench: serial vs multi-threaded SpMM across
//! matrix density and feature width, plus an end-to-end epoch-time axis
//! over thread counts. Writes machine-readable results (with GFLOP/s) to
//! `results/BENCH_kernels.json` in one run:
//!
//! ```text
//! cargo bench --bench spmm_parallel
//! ```
//!
//! Times are minimums over several repetitions (the usual way to cut
//! scheduler noise out of kernel measurements). The JSON records the
//! host's hardware thread count so speedups can be judged fairly: thread
//! counts beyond the physical cores time-slice one core and cannot beat
//! serial.

use std::fmt::Write as _;
use std::time::Instant;

use gnn_comm::CostModel;
use gnn_core::dist::even_bounds;
use gnn_core::{train_distributed, Algo, DistConfig, GcnConfig};
use spmat::dataset::amazon_scaled;
use spmat::gen::{rmat, RmatConfig};
use spmat::graph::gcn_normalize;
use spmat::pool;
use spmat::spmm::{spmm_flops, spmm_with};
use spmat::{Csr, Dense};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

struct KernelRow {
    matrix: String,
    n: usize,
    nnz: usize,
    f: usize,
    threads: usize,
    seconds: f64,
    gflops: f64,
    speedup: f64,
}

struct EpochRow {
    algo: String,
    threads: usize,
    seconds_per_epoch: f64,
}

fn min_time(mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_kernels() -> Vec<KernelRow> {
    let mut rows = Vec::new();
    // Density axis: R-MAT edge factor; width axis: feature count.
    let cases: Vec<(u32, usize, usize)> = vec![
        (12, 4, 32),   // sparse, narrow
        (12, 4, 128),  // sparse, wide
        (12, 16, 32),  // dense, narrow
        (12, 16, 128), // dense, wide — the largest benchmark matrix
    ];
    for (scale, edge_factor, f) in cases {
        let adj: Csr = gcn_normalize(&rmat(RmatConfig::graph500(scale, edge_factor, 7)));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(scale as u64);
        let h = Dense::glorot(adj.rows(), f, &mut rng);
        let name = format!("rmat-s{scale}-e{edge_factor}");
        let flops = spmm_flops(&adj, f) as f64;

        let serial = min_time(|| {
            std::hint::black_box(spmm_with(&adj, &h, 1));
        });
        for &t in &THREAD_COUNTS {
            let secs = if t == 1 {
                serial
            } else {
                min_time(|| {
                    std::hint::black_box(spmm_with(&adj, &h, t));
                })
            };
            let row = KernelRow {
                matrix: name.clone(),
                n: adj.rows(),
                nnz: adj.nnz(),
                f,
                threads: t,
                seconds: secs,
                gflops: flops / secs / 1e9,
                speedup: serial / secs,
            };
            println!(
                "spmm/{}/f{}/t{}  {:>10.3} ms   {:>7.3} GFLOP/s   {:>5.2}x vs serial",
                row.matrix,
                row.f,
                row.threads,
                row.seconds * 1e3,
                row.gflops,
                row.speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn bench_epochs() -> Vec<EpochRow> {
    let mut rows = Vec::new();
    let ds = amazon_scaled(10, 1);
    let gcn = GcnConfig::paper_default(ds.f(), ds.num_classes);
    let algo = Algo::OneD { aware: true };
    let bounds = even_bounds(ds.n(), 4);
    let epochs = 2;
    let cfg = DistConfig::new(algo, gcn, epochs, CostModel::perlmutter_like());
    for &t in &THREAD_COUNTS {
        pool::set_threads(t);
        let secs = min_time(|| {
            std::hint::black_box(train_distributed(&ds, &bounds, &cfg));
        }) / epochs as f64;
        println!(
            "epoch/{}/t{}  {:>10.3} ms per epoch (simulation wall time)",
            algo.label(),
            t,
            secs * 1e3
        );
        rows.push(EpochRow {
            algo: algo.label(),
            threads: t,
            seconds_per_epoch: secs,
        });
    }
    pool::set_threads(0);
    rows
}

fn write_json(kernels: &[KernelRow], epochs: &[EpochRow]) -> std::io::Result<String> {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"host\": {{ \"hardware_threads\": {} }},",
        pool::hardware_threads()
    );
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"matrix\": \"{}\", \"n\": {}, \"nnz\": {}, \"f\": {}, \"threads\": {}, \
             \"seconds\": {:.6e}, \"gflops\": {:.4}, \"speedup_vs_serial\": {:.3} }}{comma}",
            r.matrix, r.n, r.nnz, r.f, r.threads, r.seconds, r.gflops, r.speedup
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"epochs\": [");
    for (i, r) in epochs.iter().enumerate() {
        let comma = if i + 1 == epochs.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"algo\": \"{}\", \"threads\": {}, \"seconds_per_epoch\": {:.6e} }}{comma}",
            r.algo, r.threads, r.seconds_per_epoch
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");

    // Bench binaries run with the package as CWD; anchor the output at
    // the workspace-level results/ directory instead.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(&path, &s)?;
    Ok(path.display().to_string())
}

fn main() {
    println!(
        "host: {} hardware thread(s) available",
        pool::hardware_threads()
    );
    let kernels = bench_kernels();
    let epochs = bench_epochs();
    match write_json(&kernels, &epochs) {
        Ok(path) => println!("[results written to {path}]"),
        Err(e) => eprintln!("warning: could not write BENCH_kernels.json: {e}"),
    }
}
