//! Ablation: how the sparsity-aware algorithm assembles the gathered
//! rows before the local SpMM.
//!
//! * **compact** (this workspace's default): remap the block's columns
//!   once at plan time, gather received rows into a dense `H̃` of exactly
//!   the needed height.
//! * **full-height scatter** (Algorithm 1 as written): scatter received
//!   rows into an `n × f` buffer and multiply the unremapped block —
//!   simpler, but allocates and touches `O(n·f)` memory per SpMM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spmat::dataset::amazon_scaled;
use spmat::spmm::spmm;
use spmat::Dense;

fn bench_assemble(c: &mut Criterion) {
    let ds = amazon_scaled(12, 1);
    let p = 8;
    let rows = ds.n() / p;
    let block = ds.norm_adj.row_block(0, rows);
    let cols = block.distinct_cols();
    let compact = block.remap_cols(&cols);
    let f = 32;
    let mut rng = StdRng::seed_from_u64(2);
    // The "received" rows, one dense row per needed column.
    let gathered = Dense::glorot(cols.len(), f, &mut rng);

    // Correctness guard: both paths multiply to the same block.
    let z_compact = spmm(&compact, &gathered);
    let mut full = Dense::zeros(ds.n(), f);
    full.scatter_rows(&cols, &gathered);
    let z_full = spmm(&block, &full);
    assert!(z_compact.approx_eq(&z_full, 1e-12));

    let mut group = c.benchmark_group("ablation_spmm");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("assemble", "compact"),
        &(&compact, &gathered),
        |b, (compact, gathered)| {
            b.iter(|| {
                // Assembly for the compact path is a straight copy.
                let mut h = Dense::zeros(gathered.rows(), f);
                h.data_mut().copy_from_slice(gathered.data());
                spmm(compact, &h)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("assemble", "full-height"),
        &(&block, &gathered, &cols),
        |b, (block, gathered, cols)| {
            b.iter(|| {
                let mut h = Dense::zeros(ds.n(), f);
                h.scatter_rows(cols, gathered);
                spmm(block, &h)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_assemble);
criterion_main!(benches);
