//! Local SpMM kernel throughput — the compute term of every epoch-time
//! model (the role of cuSPARSE csrmm2 in the paper's setup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spmat::gen::{rmat, sbm, RmatConfig, SbmConfig};
use spmat::graph::gcn_normalize;
use spmat::spmm::{spmm, spmm_flops};
use spmat::Dense;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(10);

    let mut rng = StdRng::seed_from_u64(1);
    let cases = vec![
        (
            "rmat-irregular",
            gcn_normalize(&rmat(RmatConfig::graph500(12, 8, 1))),
        ),
        (
            "sbm-regular",
            gcn_normalize(
                &sbm(SbmConfig {
                    n: 4096,
                    blocks: 64,
                    avg_degree_in: 14.0,
                    avg_degree_out: 2.0,
                    seed: 1,
                })
                .0,
            ),
        ),
    ];
    for (name, adj) in &cases {
        for f in [16usize, 64] {
            let h = Dense::glorot(adj.rows(), f, &mut rng);
            group.throughput(Throughput::Elements(spmm_flops(adj, f)));
            group.bench_with_input(
                BenchmarkId::new(*name, format!("f{f}")),
                &(adj, h),
                |b, (adj, h)| b.iter(|| spmm(adj, h)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
