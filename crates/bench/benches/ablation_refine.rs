//! Ablation: what each stage of the multilevel pipeline buys.
//!
//! * edgecut refinement alone vs + volume refinement (the GVB delta);
//! * multilevel vs flat FM (coarsening disabled by setting the target
//!   above the graph size).
//!
//! Criterion measures runtime; the *quality* deltas are printed once at
//! startup so the trade-off is visible in the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partition::metrics::volume_metrics;
use partition::wgraph::WGraph;
use partition::{partition_graph, Method, PartitionConfig};
use spmat::dataset::amazon_scaled;

fn bench_refine(c: &mut Criterion) {
    let ds = amazon_scaled(11, 1);
    let g = WGraph::from_csr(&ds.adj);
    let k = 16;

    // Quality report (once).
    for (label, cfg) in [
        (
            "edgecut-only",
            PartitionConfig::new(Method::EdgeCut).with_seed(3),
        ),
        (
            "with-volume-refine",
            PartitionConfig::new(Method::VolumeBalanced).with_seed(3),
        ),
        ("flat-fm", {
            let mut c = PartitionConfig::new(Method::EdgeCut).with_seed(3);
            c.coarsen_factor = usize::MAX / k; // disable coarsening
            c
        }),
    ] {
        let part = partition_graph(&ds.adj, k, &cfg);
        let m = volume_metrics(&g, &part);
        println!(
            "[ablation_refine] {label:>20}: total_vol={:>7} max_send={:>6} imbalance={:>6.1}%",
            m.total, m.max_send, m.imbalance_pct
        );
    }

    let mut group = c.benchmark_group("ablation_refine");
    group.sample_size(10);
    for (label, method, factor) in [
        ("edgecut-only", Method::EdgeCut, 16usize),
        ("with-volume-refine", Method::VolumeBalanced, 16),
        ("flat-fm", Method::EdgeCut, usize::MAX / k),
    ] {
        let mut cfg = PartitionConfig::new(method).with_seed(3);
        cfg.coarsen_factor = factor;
        group.bench_with_input(BenchmarkId::new("partition", label), &cfg, |b, cfg| {
            b.iter(|| partition_graph(&ds.adj, k, cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refine);
criterion_main!(benches);
