//! Partitioner cost: the one-time preprocessing the paper amortizes over
//! hundreds of epochs (§1). Block/random are effectively free; the
//! multilevel methods pay for coarsening + refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partition::{partition_graph, Method, PartitionConfig};
use spmat::dataset::{amazon_scaled, protein_scaled};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);

    let datasets = vec![amazon_scaled(11, 1), protein_scaled(2048, 32, 1)];
    for ds in &datasets {
        for method in [
            Method::Block,
            Method::Random,
            Method::EdgeCut,
            Method::VolumeBalanced,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), &ds.name),
                &ds.adj,
                |b, adj| {
                    let cfg = PartitionConfig::new(method).with_seed(3);
                    b.iter(|| partition_graph(adj, 16, &cfg));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
