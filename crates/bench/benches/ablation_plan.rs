//! Ablation: `NnzCols` construction strategy. The plan builder uses a
//! bitmap over the column range (O(n + nnz)); the alternative is
//! sort-and-dedup of the raw column indices (O(nnz log nnz)). Bitmaps
//! win on dense blocks, sort-dedup can win when blocks are very sparse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmat::dataset::amazon_scaled;
use spmat::Csr;

/// The sort-dedup alternative to [`Csr::distinct_cols`].
fn distinct_cols_sort(block: &Csr) -> Vec<u32> {
    let mut cols: Vec<u32> = block.indices().to_vec();
    cols.sort_unstable();
    cols.dedup();
    cols
}

fn bench_nnzcols(c: &mut Criterion) {
    let ds = amazon_scaled(12, 1);
    let mut group = c.benchmark_group("ablation_plan");
    group.sample_size(10);

    for p in [8usize, 64] {
        let rows = ds.n() / p;
        let block = ds.norm_adj.row_block(0, rows);
        // Correctness guard: both strategies agree.
        assert_eq!(block.distinct_cols(), distinct_cols_sort(&block));
        group.bench_with_input(BenchmarkId::new("bitmap", p), &block, |b, block| {
            b.iter(|| block.distinct_cols());
        });
        group.bench_with_input(BenchmarkId::new("sort-dedup", p), &block, |b, block| {
            b.iter(|| distinct_cols_sort(block));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nnzcols);
criterion_main!(benches);
