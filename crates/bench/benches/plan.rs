//! Communication-plan construction cost — the `NnzCols` precomputation
//! that happens once before training (§6.2's preprocessing step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn_core::dist::{even_bounds, Plan15d, Plan1d};
use spmat::dataset::amazon_scaled;

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);

    let ds = amazon_scaled(12, 1);
    for p in [8usize, 32] {
        let bounds = even_bounds(ds.n(), p);
        group.bench_with_input(BenchmarkId::new("plan1d", p), &bounds, |b, bounds| {
            b.iter(|| Plan1d::build(&ds.norm_adj, bounds));
        });
    }
    for (p, cc) in [(8usize, 2usize), (16, 4)] {
        let bounds = even_bounds(ds.n(), p / cc);
        group.bench_with_input(
            BenchmarkId::new("plan15d", format!("p{p}c{cc}")),
            &bounds,
            |b, bounds| {
                b.iter(|| Plan15d::build(&ds.norm_adj, p, cc, bounds, true));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
