//! End-to-end epoch cost of the four distributed algorithm variants on
//! the threaded executor (wall time of the simulation itself — the
//! modeled times come from the `repro` harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn_comm::CostModel;
use gnn_core::dist::even_bounds;
use gnn_core::{train_distributed, Algo, DistConfig, GcnConfig};
use spmat::dataset::amazon_scaled;
use spmat::pool;

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch");
    group.sample_size(10);

    let ds = amazon_scaled(10, 1);
    let gcn = GcnConfig::paper_default(ds.f(), ds.num_classes);
    let cases = vec![
        (Algo::OneD { aware: false }, 4usize),
        (Algo::OneD { aware: true }, 4),
        (Algo::OneFiveD { aware: false, c: 2 }, 2),
        (Algo::OneFiveD { aware: true, c: 2 }, 2),
    ];
    for (algo, parts) in cases {
        let bounds = even_bounds(ds.n(), parts);
        let cfg = DistConfig::new(algo, gcn.clone(), 1, CostModel::perlmutter_like());
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let id = BenchmarkId::new(format!("train-t{threads}"), algo.label());
            group.bench_with_input(id, &cfg, |b, cfg| {
                b.iter(|| train_distributed(&ds, &bounds, cfg));
            });
        }
    }
    pool::set_threads(0);
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
