//! Collective primitives of the simulated runtime: the broadcast round
//! the oblivious algorithm performs per SpMM vs the single all-to-allv
//! of the sparsity-aware algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn_comm::msg::Payload;
use gnn_comm::{CostModel, ThreadWorld};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);

    for p in [4usize, 8] {
        let rows = 1024 / p;
        let f = 32;
        group.bench_with_input(BenchmarkId::new("bcast_round", p), &p, |b, &p| {
            let world = ThreadWorld::new(p, CostModel::perlmutter_like());
            b.iter(|| {
                world.run(|ctx| {
                    for root in 0..ctx.p() {
                        let payload =
                            (ctx.rank() == root).then(|| Payload::F64(vec![1.0; rows * f]));
                        ctx.bcast(root, payload);
                    }
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("alltoallv", p), &p, |b, &p| {
            let world = ThreadWorld::new(p, CostModel::perlmutter_like());
            b.iter(|| {
                world.run(|ctx| {
                    let sends = (0..ctx.p())
                        .map(|_| Payload::F64(vec![1.0; rows * f / p]))
                        .collect();
                    ctx.alltoallv(sends)
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("allreduce", p), &p, |b, &p| {
            let world = ThreadWorld::new(p, CostModel::perlmutter_like());
            let group_all: Vec<usize> = (0..p).collect();
            b.iter(|| {
                world.run(|ctx| {
                    let mut buf = vec![1.0f64; rows * f];
                    ctx.allreduce_sum(&mut buf, &group_all);
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
