//! 2D SUMMA-style SpMM: plan construction and one full layer step, the
//! extension layout beyond the paper's 1D/1.5D evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn_comm::{CostModel, ThreadWorld};
use gnn_core::dist::even_bounds;
use gnn_core::dist::twod::{spmm_2d, Plan2d};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spmat::dataset::amazon_scaled;
use spmat::Dense;

fn bench_twod(c: &mut Criterion) {
    let ds = amazon_scaled(10, 1);
    let mut group = c.benchmark_group("twod");
    group.sample_size(10);

    for (pr, pc) in [(2usize, 2usize), (4, 2)] {
        let bounds = even_bounds(ds.n(), pr);
        group.bench_with_input(
            BenchmarkId::new("plan", format!("{pr}x{pc}")),
            &bounds,
            |b, bounds| {
                b.iter(|| Plan2d::build(&ds.norm_adj, pr, pc, bounds, true));
            },
        );
        let plan = Plan2d::build(&ds.norm_adj, pr, pc, &bounds, true);
        let f = 32usize;
        let mut rng = StdRng::seed_from_u64(3);
        let h = Dense::glorot(ds.n(), f, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("spmm", format!("{pr}x{pc}")),
            &plan,
            |b, plan| {
                let world = ThreadWorld::new(pr * pc, CostModel::perlmutter_like());
                let pb = plan.panel_bounds(f);
                b.iter(|| {
                    world.run(|ctx| {
                        let rp = &plan.ranks[ctx.rank()];
                        let rows = h.row_slice(rp.row_lo, rp.row_hi);
                        let local =
                            Dense::from_fn(rows.rows(), pb[rp.j + 1] - pb[rp.j], |r, cc| {
                                rows.get(r, pb[rp.j] + cc)
                            });
                        spmm_2d(ctx, plan, &local)
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_twod);
criterion_main!(benches);
