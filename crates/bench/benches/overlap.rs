//! Overlap bench: blocking vs chunked-pipeline schedules through the
//! real executor, on the modeled clock. Writes machine-readable results
//! to `results/BENCH_overlap.json` in one run:
//!
//! ```text
//! cargo bench --bench overlap
//! ```
//!
//! Each row runs `train_distributed` twice on the same partitioned
//! dataset — once blocking, once with `OverlapConfig::on(chunks)` — and
//! records both modeled epoch times plus the measured hidden/exposed
//! split. For comm-bound configurations (oblivious 1D broadcasts, 1.5D
//! stage traffic) the pipelined schedule must come out no slower than
//! blocking; the JSON makes that inequality auditable. Simulation wall
//! time is also recorded so the pipeline's host-side overhead is
//! visible.

use std::fmt::Write as _;
use std::time::Instant;

use gnn_bench::{prepare_full, Scheme};
use gnn_comm::{CostModel, OverlapConfig};
use gnn_core::{train_distributed, Algo, DistConfig, GcnConfig};
use spmat::dataset::amazon_scaled;
use spmat::pool;

const EPOCHS: usize = 2;
const CHUNK_COUNTS: [usize; 3] = [1, 2, 4];

struct Row {
    config: String,
    scheme: &'static str,
    p: usize,
    chunks: usize,
    /// Modeled epoch time of the blocking schedule, seconds.
    blocking: f64,
    /// Modeled epoch time of the pipelined schedule, seconds.
    overlapped: f64,
    /// Comm seconds hidden behind compute (per epoch, all ranks).
    hidden: f64,
    /// Comm seconds the pipeline could not hide (per epoch, all ranks).
    exposed: f64,
    /// `true` when the schedule guarantees overlapped <= blocking.
    comm_bound: bool,
    /// Simulation wall seconds for the overlapped run.
    wall: f64,
}

fn bench_config(
    name: &str,
    scheme: Scheme,
    algo: Algo,
    parts: usize,
    p: usize,
    rows: &mut Vec<Row>,
) {
    let ds = amazon_scaled(12, 3);
    let (pds, bounds) = prepare_full(&ds, parts, scheme, 3);
    let gcn = GcnConfig::paper_default(pds.f(), pds.num_classes);
    let mut cfg = DistConfig::new(algo, gcn, EPOCHS, CostModel::perlmutter_like());
    let blocking = train_distributed(&pds, &bounds, &cfg);
    let t_block = blocking.stats.modeled_epoch_time() / EPOCHS as f64;
    // Per-chunk duplex pricing can exceed the blocking collective's
    // single max(send, recv) term when 1D-aware imbalance varies across
    // chunks; the guaranteed-≤ configs are the comm-bound ones whose
    // pipelined charges sum to exactly the blocking charges.
    let comm_bound = matches!(algo, Algo::OneD { aware: false } | Algo::OneFiveD { .. });
    for chunks in CHUNK_COUNTS {
        cfg.overlap = OverlapConfig::on(chunks);
        let t0 = Instant::now();
        let out = train_distributed(&pds, &bounds, &cfg);
        let wall = t0.elapsed().as_secs_f64();
        let t_ov = out.stats.modeled_epoch_time() / EPOCHS as f64;
        let hidden = out.stats.total_overlap_hidden_seconds() / EPOCHS as f64;
        let exposed = out.stats.total_overlap_exposed_seconds() / EPOCHS as f64;
        println!(
            "{name}/chunks{chunks}  blocking {:>9.3} ms  overlapped {:>9.3} ms  \
             ({:>6.3} ms hidden, {:>6.3} ms exposed){}",
            t_block * 1e3,
            t_ov * 1e3,
            hidden * 1e3,
            exposed * 1e3,
            if comm_bound && t_ov > t_block * (1.0 + 1e-12) {
                "  !! REGRESSION"
            } else {
                ""
            }
        );
        rows.push(Row {
            config: name.to_string(),
            scheme: scheme.label(),
            p,
            chunks,
            blocking: t_block,
            overlapped: t_ov,
            hidden,
            exposed,
            comm_bound,
            wall,
        });
    }
    cfg.overlap = OverlapConfig::off();
}

fn write_json(rows: &[Row]) -> std::io::Result<String> {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"host\": {{ \"hardware_threads\": {} }},",
        pool::hardware_threads()
    );
    let _ = writeln!(s, "  \"epochs\": {EPOCHS},");
    let _ = writeln!(s, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"config\": \"{}\", \"scheme\": \"{}\", \"p\": {}, \"chunks\": {}, \
             \"blocking_epoch_s\": {:.6e}, \"overlapped_epoch_s\": {:.6e}, \
             \"hidden_s\": {:.6e}, \"exposed_s\": {:.6e}, \"comm_bound\": {}, \
             \"sim_wall_s\": {:.3} }}{comma}",
            r.config,
            r.scheme,
            r.p,
            r.chunks,
            r.blocking,
            r.overlapped,
            r.hidden,
            r.exposed,
            r.comm_bound,
            r.wall
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");

    // Bench binaries run with the package as CWD; anchor the output at
    // the workspace-level results/ directory instead.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_overlap.json");
    std::fs::write(&path, &s)?;
    Ok(path.display().to_string())
}

fn main() {
    println!(
        "host: {} hardware thread(s) available",
        pool::hardware_threads()
    );
    let mut rows = Vec::new();
    bench_config(
        "1d-oblivious-cagnet",
        Scheme::Cagnet,
        Algo::OneD { aware: false },
        8,
        8,
        &mut rows,
    );
    bench_config(
        "1d-aware-gvb",
        Scheme::SaGvb,
        Algo::OneD { aware: true },
        8,
        8,
        &mut rows,
    );
    bench_config(
        "15d-aware-gvb",
        Scheme::SaGvb,
        Algo::OneFiveD { aware: true, c: 2 },
        4,
        8,
        &mut rows,
    );
    bench_config(
        "15d-oblivious",
        Scheme::Cagnet,
        Algo::OneFiveD { aware: false, c: 2 },
        4,
        8,
        &mut rows,
    );
    let regressions: Vec<&Row> = rows
        .iter()
        .filter(|r| r.comm_bound && r.overlapped > r.blocking * (1.0 + 1e-12))
        .collect();
    match write_json(&rows) {
        Ok(path) => println!("[results written to {path}]"),
        Err(e) => eprintln!("warning: could not write BENCH_overlap.json: {e}"),
    }
    if !regressions.is_empty() {
        for r in regressions {
            eprintln!(
                "overlap regression: {}/chunks{}: overlapped {:.6} s > blocking {:.6} s",
                r.config, r.chunks, r.overlapped, r.blocking
            );
        }
        std::process::exit(1);
    }
}
