//! The evaluation schemes of the paper's figures, as distribution
//! pipelines: pick a partitioner, permute the dataset so parts are
//! contiguous, and expose the block bounds the distributed algorithms
//! consume.

use partition::{partition_graph, Method, PartitionConfig};
use spmat::dataset::Dataset;
use spmat::Csr;

/// A figure-legend scheme (1D unless noted; 1.5D reuses the same
/// distributions with `p/c` parts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Sparsity-oblivious broadcasts on a random equal-row distribution
    /// (the CAGNET baseline).
    Cagnet,
    /// Sparsity-aware exchange on the same random distribution ("SA").
    Sa,
    /// Sparsity-aware + METIS-like edgecut partitioning ("SA+METIS").
    SaMetis,
    /// Sparsity-aware + volume-balancing partitioning ("SA+GVB").
    SaGvb,
}

impl Scheme {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Cagnet => "CAGNET",
            Scheme::Sa => "SA",
            Scheme::SaMetis => "SA+METIS",
            Scheme::SaGvb => "SA+GVB",
        }
    }

    /// Whether the distributed SpMM is sparsity-aware.
    pub fn aware(&self) -> bool {
        !matches!(self, Scheme::Cagnet)
    }

    /// The partitioner behind the scheme.
    pub fn method(&self) -> Method {
        match self {
            // The paper's baselines randomly permute for load balance
            // (§5); our synthetic graphs carry constructional vertex
            // order, so a random permutation is also the honest baseline.
            Scheme::Cagnet | Scheme::Sa => Method::Random,
            Scheme::SaMetis => Method::EdgeCut,
            Scheme::SaGvb => Method::VolumeBalanced,
        }
    }
}

/// A dataset distributed for `k` block rows under a scheme.
pub struct Prepared {
    /// The permuted normalized adjacency (parts contiguous).
    pub norm_adj: Csr,
    /// Block-row boundaries (`k + 1`).
    pub bounds: Vec<usize>,
    /// The permuted raw adjacency (for volume metrics).
    pub adj: Csr,
}

/// Partitions `ds` into `k` parts under `scheme` and permutes the
/// adjacency accordingly. Deterministic given `seed`.
pub fn prepare(ds: &Dataset, k: usize, scheme: Scheme, seed: u64) -> Prepared {
    let cfg = PartitionConfig::new(scheme.method()).with_seed(seed);
    let part = partition_graph(&ds.adj, k, &cfg);
    let perm = part.to_permutation();
    Prepared {
        norm_adj: ds.norm_adj.permute_symmetric(&perm),
        bounds: part.block_bounds(),
        adj: ds.adj.permute_symmetric(&perm),
    }
}

/// Like [`prepare`] but also permutes the dense components — needed when
/// actually training rather than estimating.
pub fn prepare_full(ds: &Dataset, k: usize, scheme: Scheme, seed: u64) -> (Dataset, Vec<usize>) {
    let cfg = PartitionConfig::new(scheme.method()).with_seed(seed);
    let part = partition_graph(&ds.adj, k, &cfg);
    let perm = part.to_permutation();
    (ds.permute(&perm), part.block_bounds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmat::dataset::amazon_scaled;

    #[test]
    fn prepare_keeps_structure() {
        let ds = amazon_scaled(8, 1);
        for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaMetis, Scheme::SaGvb] {
            let prep = prepare(&ds, 4, scheme, 7);
            assert_eq!(prep.norm_adj.nnz(), ds.norm_adj.nnz(), "{scheme:?}");
            assert_eq!(prep.bounds.len(), 5);
            assert_eq!(*prep.bounds.last().unwrap(), ds.n());
        }
    }

    #[test]
    fn baselines_have_equal_blocks() {
        let ds = amazon_scaled(8, 2);
        let prep = prepare(&ds, 4, Scheme::Sa, 7);
        let sizes: Vec<usize> = prep.bounds.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(sizes.iter().all(|&s| s == sizes[0]));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = [Scheme::Cagnet, Scheme::Sa, Scheme::SaMetis, Scheme::SaGvb]
            .iter()
            .map(|s| s.label())
            .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
