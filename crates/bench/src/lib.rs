//! Reproduction harness for every table and figure in the paper's
//! evaluation (§7), plus shared infrastructure for the criterion benches.
//!
//! Entry points mirror the paper's artifacts one-to-one:
//!
//! | Paper artifact | Function | `repro` subcommand |
//! |---|---|---|
//! | Table 2 (METIS comm imbalance) | [`experiments::table2`] | `table2` |
//! | Table 3 (dataset properties) | [`experiments::table3`] | `table3` |
//! | Fig. 3 (1D epoch times) | [`experiments::fig3`] | `fig3` |
//! | Fig. 4 (1D breakdown) | [`experiments::fig4`] | `fig4` |
//! | Fig. 5 (Papers @ 16) | [`experiments::fig5`] | `fig5` |
//! | Fig. 6 (GVB vs METIS) | [`experiments::fig6`] | `fig6` |
//! | Fig. 7 (1.5D epoch times) | [`experiments::fig7`] | `fig7` |

pub mod experiments;
pub mod schemes;
pub mod table;
pub mod traceio;

pub use schemes::{prepare, prepare_full, Prepared, Scheme};
