//! One function per paper artifact. Every function returns both a
//! rendered [`Table`] and the structured points behind it, so the
//! harness binary prints/saves and the integration tests assert shapes.
//!
//! Times come from [`gnn_core::analytic`] (proven equal to the threaded
//! executor's accounting by `tests/analytic_matches_executor.rs`),
//! priced by the Perlmutter-like [`CostModel`]. Epoch times are for one
//! epoch of the paper's 3-layer / 16-hidden GCN.

use gnn_comm::stats::PHASES;
use gnn_comm::{CostModel, OverlapConfig, Phase, WorldStats};
use gnn_core::analytic::{estimate, AnalyticInput};
use gnn_core::{try_train_distributed, Algo, DistConfig, GcnConfig, ReferenceTrainer};
use partition::metrics::volume_metrics;
use partition::wgraph::WGraph;
use partition::{partition_graph, Method, PartitionConfig};
use spmat::dataset::{amazon_scaled, papers_scaled, protein_scaled, reddit_scaled, Dataset};
use spmat::graph::{degree_cv, degree_stats};

use crate::schemes::{prepare, prepare_full, Scheme};
use crate::table::{fmt_mb, fmt_secs, Table};

/// The four datasets plus the sweep shapes of the paper's figures.
pub struct Suite {
    /// Reddit analogue (small, dense).
    pub reddit: Dataset,
    /// Amazon analogue (sparse, irregular).
    pub amazon: Dataset,
    /// Protein analogue (dense, regular).
    pub protein: Dataset,
    /// Papers analogue (largest).
    pub papers: Dataset,
    /// GPU counts for the Reddit sweep.
    pub ps_reddit: Vec<usize>,
    /// GPU counts for the Amazon/Protein sweeps.
    pub ps_large: Vec<usize>,
    /// GPU counts for Fig. 6.
    pub ps_fig6: Vec<usize>,
    /// Replication factors for Fig. 7.
    pub cs: Vec<usize>,
}

impl Suite {
    /// The full-scale suite (laptop-sized but sweep shapes match the
    /// paper: p up to 256).
    pub fn full(seed: u64) -> Self {
        Self {
            reddit: reddit_scaled(12, seed),
            amazon: amazon_scaled(15, seed),
            protein: protein_scaled(16_384, 256, seed),
            papers: papers_scaled(16, seed),
            ps_reddit: vec![4, 16, 32, 64],
            ps_large: vec![4, 16, 32, 64, 128, 256],
            ps_fig6: vec![4, 16, 32, 64],
            cs: vec![2, 4],
        }
    }

    /// A miniature suite for CI/tests: same shapes, tiny graphs.
    pub fn small(seed: u64) -> Self {
        Self {
            reddit: reddit_scaled(9, seed),
            amazon: amazon_scaled(11, seed),
            protein: protein_scaled(2048, 32, seed),
            papers: papers_scaled(12, seed),
            ps_reddit: vec![4, 8],
            ps_large: vec![4, 8, 16, 32],
            ps_fig6: vec![4, 8, 16],
            cs: vec![2],
        }
    }
}

fn gcn_dims(ds: &Dataset) -> Vec<usize> {
    GcnConfig::paper_default(ds.f(), ds.num_classes).dims
}

/// Analytic stats for one epoch of a 1D scheme on `p` ranks.
pub fn stats_1d(ds: &Dataset, scheme: Scheme, p: usize, seed: u64) -> WorldStats {
    stats_1d_overlap(ds, scheme, p, seed, OverlapConfig::off())
}

/// Like [`stats_1d`] but with an explicit overlap configuration: when
/// enabled, the estimate replays the executor's chunked pipeline and the
/// exposed-comm window lands in [`Phase::Overlap`].
pub fn stats_1d_overlap(
    ds: &Dataset,
    scheme: Scheme,
    p: usize,
    seed: u64,
    overlap: OverlapConfig,
) -> WorldStats {
    let prep = prepare(ds, p, scheme, seed);
    estimate(&AnalyticInput {
        adj: &prep.norm_adj,
        bounds: &prep.bounds,
        algo: Algo::OneD {
            aware: scheme.aware(),
        },
        dims: &gcn_dims(ds),
        model: CostModel::perlmutter_like(),
        epochs: 1,
        arch: gnn_core::model::ArchKind::Gcn,
        overlap,
    })
}

/// Analytic stats for one epoch of a 1.5D scheme on `p` ranks with
/// replication `c` (partitioned into `p/c` block rows).
pub fn stats_15d(ds: &Dataset, scheme: Scheme, p: usize, c: usize, seed: u64) -> WorldStats {
    stats_15d_overlap(ds, scheme, p, c, seed, OverlapConfig::off())
}

/// Like [`stats_15d`] but with an explicit overlap configuration.
pub fn stats_15d_overlap(
    ds: &Dataset,
    scheme: Scheme,
    p: usize,
    c: usize,
    seed: u64,
    overlap: OverlapConfig,
) -> WorldStats {
    let prep = prepare(ds, p / c, scheme, seed);
    estimate(&AnalyticInput {
        adj: &prep.norm_adj,
        bounds: &prep.bounds,
        algo: Algo::OneFiveD {
            aware: scheme.aware(),
            c,
        },
        dims: &gcn_dims(ds),
        model: CostModel::perlmutter_like(),
        epochs: 1,
        arch: gnn_core::model::ArchKind::Gcn,
        overlap,
    })
}

/// One measured point of a sweep.
#[derive(Clone, Debug)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Scheme label.
    pub scheme: &'static str,
    /// Total ranks.
    pub p: usize,
    /// Replication factor (1 for 1D).
    pub c: usize,
    /// Modeled epoch time (max over ranks), seconds.
    pub epoch_time: f64,
    /// Phase breakdown (max over ranks), seconds.
    pub local_compute: f64,
    /// All-to-allv time.
    pub alltoall: f64,
    /// Broadcast time.
    pub bcast: f64,
    /// All-reduce time.
    pub allreduce: f64,
    /// Point-to-point time (1.5D stage traffic).
    pub p2p: f64,
}

impl Point {
    fn from_stats(ds: &Dataset, scheme: Scheme, p: usize, c: usize, st: &WorldStats) -> Self {
        Point {
            dataset: ds.name.clone(),
            scheme: scheme.label(),
            p,
            c,
            epoch_time: st.modeled_epoch_time(),
            local_compute: st.phase_time(Phase::LocalCompute),
            alltoall: st.phase_time(Phase::AllToAll),
            bcast: st.phase_time(Phase::Bcast),
            allreduce: st.phase_time(Phase::AllReduce),
            p2p: st.phase_time(Phase::P2p),
        }
    }
}

/// Table 2: average/max data communicated per SpMM and the communication
/// load imbalance under the **edgecut-only** (METIS-like) partitioner,
/// with the volume-balanced partitioner's max/imbalance alongside (the
/// fix §5 proposes).
pub fn table2(ds: &Dataset, ps: &[usize], seed: u64) -> (Table, Vec<(usize, f64, f64, f64)>) {
    let g = WGraph::from_csr(&ds.adj);
    let f = ds.f();
    let mut table = Table::new(&[
        "p",
        "average (MB)",
        "max (MB)",
        "load imbalance %",
        "GVB max (MB)",
        "GVB imbalance %",
    ]);
    let mut rows = Vec::new();
    for &p in ps {
        let part = partition_graph(
            &ds.adj,
            p,
            &PartitionConfig::new(Method::EdgeCut).with_seed(seed),
        );
        let m = volume_metrics(&g, &part);
        let gvb = partition_graph(
            &ds.adj,
            p,
            &PartitionConfig::new(Method::VolumeBalanced).with_seed(seed),
        );
        let mg = volume_metrics(&g, &gvb);
        let avg_bytes = m.avg_send * f as f64 * 8.0;
        let max_bytes = (m.max_send * f as u64 * 8) as f64;
        table.row(vec![
            p.to_string(),
            fmt_mb(avg_bytes as u64),
            fmt_mb(max_bytes as u64),
            format!("{:.1}%", m.imbalance_pct),
            fmt_mb(mg.max_send * f as u64 * 8),
            format!("{:.1}%", mg.imbalance_pct),
        ]);
        rows.push((p, avg_bytes, max_bytes, m.imbalance_pct));
    }
    (table, rows)
}

/// Table 3: dataset properties (our scaled analogues).
pub fn table3(suite: &Suite) -> Table {
    let mut t = Table::new(&[
        "Graph",
        "Vertices",
        "Edges",
        "Features",
        "Labels",
        "avg deg",
        "degree CV",
    ]);
    for ds in [&suite.reddit, &suite.amazon, &suite.protein, &suite.papers] {
        let st = degree_stats(&ds.adj);
        t.row(vec![
            ds.name.clone(),
            ds.n().to_string(),
            ds.edges().to_string(),
            ds.f().to_string(),
            ds.num_classes.to_string(),
            format!("{:.1}", st.avg),
            format!("{:.2}", degree_cv(&ds.adj)),
        ]);
    }
    t
}

/// Fig. 3: 1D epoch time vs GPU count for CAGNET / SA / SA+GVB.
pub fn fig3(suite: &Suite, seed: u64) -> (Table, Vec<Point>) {
    let mut table = Table::new(&["dataset", "p", "CAGNET", "SA", "SA+GVB"]);
    let mut points = Vec::new();
    let sweeps: [(&Dataset, &[usize]); 3] = [
        (&suite.reddit, &suite.ps_reddit),
        (&suite.amazon, &suite.ps_large),
        (&suite.protein, &suite.ps_large),
    ];
    for (ds, ps) in sweeps {
        for &p in ps {
            let mut times = Vec::new();
            for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaGvb] {
                let st = stats_1d(ds, scheme, p, seed);
                let pt = Point::from_stats(ds, scheme, p, 1, &st);
                times.push(pt.epoch_time);
                points.push(pt);
            }
            table.row(vec![
                ds.name.clone(),
                p.to_string(),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
                fmt_secs(times[2]),
            ]);
        }
    }
    (table, points)
}

/// Fig. 4: 1D timing breakdown (local compute / alltoall / bcast) for the
/// same sweep as Fig. 3.
pub fn fig4(suite: &Suite, seed: u64) -> (Table, Vec<Point>) {
    let mut table = Table::new(&[
        "dataset",
        "p",
        "scheme",
        "local compute",
        "alltoall",
        "bcast",
    ]);
    let mut points = Vec::new();
    let sweeps: [(&Dataset, &[usize]); 3] = [
        (&suite.reddit, &suite.ps_reddit),
        (&suite.amazon, &suite.ps_large),
        (&suite.protein, &suite.ps_large),
    ];
    for (ds, ps) in sweeps {
        for &p in ps {
            for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaGvb] {
                let st = stats_1d(ds, scheme, p, seed);
                let pt = Point::from_stats(ds, scheme, p, 1, &st);
                table.row(vec![
                    ds.name.clone(),
                    p.to_string(),
                    scheme.label().to_string(),
                    fmt_secs(pt.local_compute),
                    fmt_secs(pt.alltoall),
                    fmt_secs(pt.bcast),
                ]);
                points.push(pt);
            }
        }
    }
    (table, points)
}

/// Fig. 5: the Papers dataset at p = 16, breakdown per scheme.
pub fn fig5(suite: &Suite, seed: u64) -> (Table, Vec<Point>) {
    let mut table = Table::new(&["scheme", "local compute", "alltoall", "bcast", "total"]);
    let mut points = Vec::new();
    let p = 16;
    for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaGvb] {
        let st = stats_1d(&suite.papers, scheme, p, seed);
        let pt = Point::from_stats(&suite.papers, scheme, p, 1, &st);
        table.row(vec![
            scheme.label().to_string(),
            fmt_secs(pt.local_compute),
            fmt_secs(pt.alltoall),
            fmt_secs(pt.bcast),
            fmt_secs(pt.epoch_time),
        ]);
        points.push(pt);
    }
    (table, points)
}

/// Fig. 6: SA+GVB vs SA+METIS — does optimizing the maximum send volume
/// (not just the total) pay off?
pub fn fig6(suite: &Suite, seed: u64) -> (Table, Vec<Point>) {
    let mut table = Table::new(&["dataset", "p", "SA+METIS", "SA+GVB"]);
    let mut points = Vec::new();
    for ds in [&suite.amazon, &suite.protein] {
        for &p in &suite.ps_fig6 {
            let mut times = Vec::new();
            for scheme in [Scheme::SaMetis, Scheme::SaGvb] {
                let st = stats_1d(ds, scheme, p, seed);
                let pt = Point::from_stats(ds, scheme, p, 1, &st);
                times.push(pt.epoch_time);
                points.push(pt);
            }
            table.row(vec![
                ds.name.clone(),
                p.to_string(),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
            ]);
        }
    }
    (table, points)
}

/// Communication-volume view: the bottleneck rank's received bytes per
/// epoch under each scheme. Modeled *time* at p = 128–256 on the scaled
/// graphs is dominated by the α·(P−1) latency floor (the paper's graphs
/// are ~1000× larger, keeping them volume-bound at every p); this view
/// strips latency and shows the volume ratios the paper's headline
/// numbers (2×, 14×, "almost zero") are made of.
pub fn volumes(suite: &Suite, seed: u64) -> (Table, Vec<(String, usize, &'static str, u64)>) {
    let mut table = Table::new(&[
        "dataset",
        "p",
        "CAGNET (MB)",
        "SA (MB)",
        "SA+GVB (MB)",
        "SA/SA+GVB",
    ]);
    let mut rows = Vec::new();
    let sweeps: [(&Dataset, &[usize]); 3] = [
        (&suite.reddit, &suite.ps_reddit),
        (&suite.amazon, &suite.ps_large),
        (&suite.protein, &suite.ps_large),
    ];
    for (ds, ps) in sweeps {
        for &p in ps {
            let mut per_scheme = Vec::new();
            for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaGvb] {
                let st = stats_1d(ds, scheme, p, seed);
                let phase = if scheme.aware() {
                    Phase::AllToAll
                } else {
                    Phase::Bcast
                };
                let max_recv = st
                    .per_rank
                    .iter()
                    .map(|r| r.phase(phase).bytes_recv)
                    .max()
                    .unwrap_or(0);
                per_scheme.push(max_recv);
                rows.push((ds.name.clone(), p, scheme.label(), max_recv));
            }
            let ratio = if per_scheme[2] > 0 {
                per_scheme[1] as f64 / per_scheme[2] as f64
            } else {
                f64::INFINITY
            };
            table.row(vec![
                ds.name.clone(),
                p.to_string(),
                fmt_mb(per_scheme[0]),
                fmt_mb(per_scheme[1]),
                fmt_mb(per_scheme[2]),
                format!("{ratio:.1}x"),
            ]);
        }
    }
    (table, rows)
}

/// Default chunk count for the overlap ablation's pipelined runs.
pub const OVERLAP_CHUNKS: usize = 4;

/// Overlap ablation: the paper's §1 credits the sparsity-oblivious
/// approach with the *ability to overlap communication and computation*.
/// Earlier revisions of this table granted CAGNET **perfect** overlap
/// (epoch = max(compute, comm) per rank). It now reports *measured*
/// overlap: the chunked pipeline actually executed by the trainer
/// (chunks = [`OVERLAP_CHUNKS`]), with only comm that fits behind the
/// chunk's compute hidden. `modeled_epoch_time_overlapped()` is kept in
/// the codebase for contrast but no longer feeds this table.
pub fn overlap(suite: &Suite, seed: u64) -> (Table, Vec<Point>) {
    let mut table = Table::new(&[
        "dataset",
        "p",
        "CAGNET",
        "CAGNET+overlap",
        "SA",
        "SA+overlap",
        "SA+GVB",
    ]);
    let mut points = Vec::new();
    let ov = OverlapConfig::on(OVERLAP_CHUNKS);
    let sweeps: [(&Dataset, &[usize]); 2] = [
        (&suite.amazon, &suite.ps_large),
        (&suite.protein, &suite.ps_large),
    ];
    for (ds, ps) in sweeps {
        for &p in ps {
            let cagnet = stats_1d(ds, Scheme::Cagnet, p, seed);
            let cagnet_ov = stats_1d_overlap(ds, Scheme::Cagnet, p, seed, ov);
            let sa = stats_1d(ds, Scheme::Sa, p, seed);
            let sa_ov = stats_1d_overlap(ds, Scheme::Sa, p, seed, ov);
            let gvb = stats_1d(ds, Scheme::SaGvb, p, seed);
            table.row(vec![
                ds.name.clone(),
                p.to_string(),
                fmt_secs(cagnet.modeled_epoch_time()),
                fmt_secs(cagnet_ov.modeled_epoch_time()),
                fmt_secs(sa.modeled_epoch_time()),
                fmt_secs(sa_ov.modeled_epoch_time()),
                fmt_secs(gvb.modeled_epoch_time()),
            ]);
            for (scheme, st) in [
                (Scheme::Cagnet, &cagnet),
                (Scheme::Cagnet, &cagnet_ov),
                (Scheme::Sa, &sa),
                (Scheme::Sa, &sa_ov),
                (Scheme::SaGvb, &gvb),
            ] {
                points.push(Point::from_stats(ds, scheme, p, 1, st));
            }
        }
    }
    (table, points)
}

/// Cross-algorithm comparison (extension): per-SpMM bottleneck-rank
/// exchange volume for 1D, 1.5D (c = 2) and 2D (pc = 2) sparsity-aware
/// layouts on the same GVB-partitioned graph — the generalization the
/// paper's conclusion sketches.
pub fn algos(suite: &Suite, p: usize, seed: u64) -> (Table, Vec<(String, &'static str, u64)>) {
    use gnn_core::dist::twod::Plan2d;
    use gnn_core::dist::{Plan15d, Plan1d};
    let mut table = Table::new(&["dataset", "algorithm", "max-rank exchange (MB)"]);
    let mut rows = Vec::new();
    for ds in [&suite.amazon, &suite.protein] {
        let f = ds.f() as u64;
        // 1D: p parts.
        let prep1 = prepare(ds, p, Scheme::SaGvb, seed);
        let plan1 = Plan1d::build(&prep1.norm_adj, &prep1.bounds);
        let v1 = (0..p)
            .map(|i| plan1.ranks[i].recv_row_count(i) * f * 8)
            .max()
            .unwrap_or(0);
        // 1.5D with c = 2: p/2 block rows.
        let c = 2usize;
        let prep15 = prepare(ds, p / c, Scheme::SaGvb, seed);
        let plan15 = Plan15d::build(&prep15.norm_adj, p, c, &prep15.bounds, true);
        let v15 = plan15
            .ranks
            .iter()
            .map(|rp| {
                rp.stages
                    .iter()
                    .filter(|st| st.q != rp.i)
                    .map(|st| st.needed.len() as u64 * f * 8)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        // 2D with pc = 2: p/2 grid rows, panels of f/2.
        let pc = 2usize;
        let prep2 = prepare(ds, p / pc, Scheme::SaGvb, seed);
        let plan2 = Plan2d::build(&prep2.norm_adj, p / pc, pc, &prep2.bounds, true);
        let panel = f.div_ceil(pc as u64);
        let v2 = plan2
            .ranks
            .iter()
            .map(|rp| {
                rp.stages
                    .iter()
                    .filter(|st| st.k != rp.i)
                    .map(|st| st.needed.len() as u64 * panel * 8)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        for (algo, v) in [("1D", v1), ("1.5D c=2", v15), ("2D pc=2", v2)] {
            table.row(vec![ds.name.clone(), algo.to_string(), fmt_mb(v)]);
            rows.push((ds.name.clone(), algo, v));
        }
    }
    (table, rows)
}

/// Fig. 7: 1.5D epoch times for oblivious / SA / SA+GVB at c ∈ {2, 4}.
pub fn fig7(suite: &Suite, seed: u64) -> (Table, Vec<Point>) {
    let mut table = Table::new(&["dataset", "c", "p", "oblivious", "SA", "SA+GVB"]);
    let mut points = Vec::new();
    for ds in [&suite.amazon, &suite.protein] {
        for &c in &suite.cs {
            for &p in &suite.ps_large {
                if p % (c * c) != 0 || p / c < 2 {
                    continue;
                }
                let mut times = Vec::new();
                for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaGvb] {
                    let st = stats_15d(ds, scheme, p, c, seed);
                    let pt = Point::from_stats(ds, scheme, p, c, &st);
                    times.push(pt.epoch_time);
                    points.push(pt);
                }
                table.row(vec![
                    ds.name.clone(),
                    c.to_string(),
                    p.to_string(),
                    fmt_secs(times[0]),
                    fmt_secs(times[1]),
                    fmt_secs(times[2]),
                ]);
            }
        }
    }
    (table, points)
}

/// One cell of the conformance sweep: a full *executed* training run on
/// the thread backend, compared against the serial reference (weights)
/// and the analytic α–β model (per-rank per-phase communication volume).
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Algorithm label including its grid shape, e.g. `3D pc=2 c=2`.
    pub algo: String,
    /// Scheme label.
    pub scheme: &'static str,
    /// Total ranks.
    pub p: usize,
    /// `max|w_dist − w_ref|` after training.
    pub weight_drift: f64,
    /// Executed bytes/flops equal the analytic prediction exactly, for
    /// every rank and every phase.
    pub volume_match: bool,
    /// Bottleneck rank's received bytes per epoch (executed).
    pub bottleneck_recv: u64,
    /// Modeled epoch time from the analytic estimate, seconds.
    pub epoch_time: f64,
}

impl SweepCell {
    /// The acceptance bar: reference-level accuracy and an exact volume
    /// model.
    pub fn conforms(&self) -> bool {
        self.weight_drift < 1e-8 && self.volume_match
    }
}

/// Grid shape of one swept algorithm configuration.
#[derive(Clone, Copy, Debug)]
enum GridKind {
    OneD,
    OneFiveD { c: usize },
    TwoD { pc: usize },
    ThreeD { pc: usize, c: usize },
}

impl GridKind {
    fn algo(self, aware: bool) -> Algo {
        match self {
            GridKind::OneD => Algo::OneD { aware },
            GridKind::OneFiveD { c } => Algo::OneFiveD { aware, c },
            GridKind::TwoD { pc } => Algo::TwoD { aware, pc },
            GridKind::ThreeD { pc, c } => Algo::ThreeD { aware, pc, c },
        }
    }

    /// Number of row blocks the dataset is partitioned into.
    fn parts(self, p: usize) -> usize {
        match self {
            GridKind::OneD => p,
            GridKind::OneFiveD { c } => p / c,
            GridKind::TwoD { pc } => p / pc,
            GridKind::ThreeD { pc, c } => p / (pc * c),
        }
    }

    fn label(self) -> String {
        match self {
            GridKind::OneD => "1D".to_string(),
            GridKind::OneFiveD { c } => format!("1.5D c={c}"),
            GridKind::TwoD { pc } => format!("2D pc={pc}"),
            GridKind::ThreeD { pc, c } => format!("3D pc={pc} c={c}"),
        }
    }
}

/// The swept (algorithm, p) grid. `small` keeps p ≤ 4 (the CI budget);
/// the full sweep goes to p = 8. Shapes keep pc ≤ 2 so feature panels
/// stay non-degenerate on the small datasets.
fn sweep_grid(small: bool) -> Vec<(GridKind, usize)> {
    let mut grid = vec![
        (GridKind::OneD, 1),
        (GridKind::OneD, 2),
        (GridKind::OneD, 4),
        (GridKind::OneFiveD { c: 1 }, 1),
        (GridKind::OneFiveD { c: 1 }, 2),
        (GridKind::OneFiveD { c: 2 }, 4),
        (GridKind::TwoD { pc: 1 }, 1),
        (GridKind::TwoD { pc: 1 }, 2),
        (GridKind::TwoD { pc: 2 }, 4),
        (GridKind::ThreeD { pc: 1, c: 1 }, 1),
        (GridKind::ThreeD { pc: 1, c: 1 }, 2),
        (GridKind::ThreeD { pc: 1, c: 2 }, 4),
    ];
    if !small {
        grid.extend([
            (GridKind::OneD, 8),
            (GridKind::OneFiveD { c: 2 }, 8),
            (GridKind::TwoD { pc: 2 }, 8),
            (GridKind::ThreeD { pc: 2, c: 2 }, 8),
        ]);
    }
    grid
}

/// Executed bytes/flops must equal the analytic prediction exactly —
/// same integer, every rank, every phase.
fn volumes_match(executed: &WorldStats, analytic: &WorldStats) -> bool {
    executed.p() == analytic.p()
        && executed
            .per_rank
            .iter()
            .zip(&analytic.per_rank)
            .all(|(e, a)| {
                PHASES.iter().all(|&ph| {
                    let pe = e.phase(ph);
                    let pa = a.phase(ph);
                    pe.bytes_sent == pa.bytes_sent
                        && pe.bytes_recv == pa.bytes_recv
                        && pe.flops == pa.flops
                })
            })
}

/// Epochs each sweep cell trains for (executed + reference).
pub const SWEEP_EPOCHS: usize = 2;

/// Conformance sweep: every algorithm family × scheme × p actually
/// *trains* on the thread backend (reddit analogue), then each cell is
/// checked two ways — final weights against the serial reference
/// (≤ 1e-8) and executed communication volume against the analytic
/// model (exact). The table charts modeled epoch time so the winning
/// layout per p is visible at a glance.
pub fn sweep(suite: &Suite, small: bool, seed: u64) -> (Table, Vec<SweepCell>) {
    let ds = &suite.reddit;
    let mut table = Table::new(&[
        "algorithm",
        "scheme",
        "p",
        "weight drift",
        "volume==model",
        "bottleneck recv (MB)",
        "epoch (modeled)",
    ]);
    let mut cells = Vec::new();
    for (kind, p) in sweep_grid(small) {
        for scheme in [Scheme::Cagnet, Scheme::Sa, Scheme::SaGvb] {
            let algo = kind.algo(scheme.aware());
            let (pds, bounds) = prepare_full(ds, kind.parts(p), scheme, seed);
            let gcn = GcnConfig::paper_default(pds.f(), pds.num_classes);
            let model = CostModel::perlmutter_like();

            let mut reference = ReferenceTrainer::new(&pds, gcn.clone());
            reference.train(SWEEP_EPOCHS);
            let out = try_train_distributed(
                &pds,
                &bounds,
                &DistConfig::new(algo, gcn.clone(), SWEEP_EPOCHS, model),
            )
            .unwrap_or_else(|e| panic!("{} {} p={p}: {e}", kind.label(), scheme.label()));
            let est = estimate(&AnalyticInput {
                adj: &pds.norm_adj,
                bounds: &bounds,
                algo,
                dims: &gcn.dims,
                model,
                epochs: SWEEP_EPOCHS,
                arch: gnn_core::model::ArchKind::Gcn,
                overlap: OverlapConfig::off(),
            });

            let cell = SweepCell {
                algo: kind.label(),
                scheme: scheme.label(),
                p,
                weight_drift: out.weights.max_abs_diff(&reference.weights),
                volume_match: volumes_match(&out.stats, &est),
                bottleneck_recv: out
                    .stats
                    .per_rank
                    .iter()
                    .map(|r| r.bytes_recv_total())
                    .max()
                    .unwrap_or(0)
                    / SWEEP_EPOCHS as u64,
                epoch_time: est.modeled_epoch_time() / SWEEP_EPOCHS as f64,
            };
            table.row(vec![
                cell.algo.clone(),
                cell.scheme.to_string(),
                p.to_string(),
                format!("{:.1e}", cell.weight_drift),
                if cell.volume_match {
                    "exact"
                } else {
                    "MISMATCH"
                }
                .to_string(),
                fmt_mb(cell.bottleneck_recv),
                fmt_secs(cell.epoch_time),
            ]);
            cells.push(cell);
        }
    }
    (table, cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_suite() -> Suite {
        Suite::small(5)
    }

    #[test]
    fn table3_lists_all_datasets() {
        let suite = small_suite();
        let t = table3(&suite);
        let s = t.render();
        for name in [
            "reddit-scaled",
            "amazon-scaled",
            "protein-scaled",
            "papers-scaled",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table2_imbalance_grows_with_p() {
        let suite = small_suite();
        let (_, rows) = table2(&suite.amazon, &[4, 16], 5);
        assert_eq!(rows.len(), 2);
        // More parts → thinner blocks → worse balance (Table 2's trend).
        assert!(
            rows[1].3 > rows[0].3,
            "imbalance {} !> {}",
            rows[1].3,
            rows[0].3
        );
        // Average volume per process decreases with p.
        assert!(rows[1].1 < rows[0].1);
    }

    #[test]
    fn fig5_gvb_beats_cagnet_on_papers() {
        let suite = small_suite();
        let (_, pts) = fig5(&suite, 5);
        let t = |label: &str| pts.iter().find(|p| p.scheme == label).unwrap().epoch_time;
        assert!(
            t("SA+GVB") < t("CAGNET"),
            "SA+GVB {} !< CAGNET {}",
            t("SA+GVB"),
            t("CAGNET")
        );
    }

    #[test]
    fn fig7_skips_invalid_grids() {
        let suite = small_suite();
        let (_, pts) = fig7(&suite, 5);
        for pt in &pts {
            assert_eq!(pt.p % (pt.c * pt.c), 0);
        }
    }
}
