//! Minimal aligned-text and CSV table rendering for the harness output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with a CSV twin.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned-text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV twin to `dir/name.csv` (creating `dir`).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a byte count as MB with two decimals (Table 2's unit).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["p", "time"]);
        t.row(vec!["4".into(), "1.0".into()]);
        t.row(vec!["256".into(), "12.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('p') && lines[0].contains("time"));
        assert!(lines[3].starts_with("256"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["name", "v"]);
        t.row(vec!["a,b".into(), "1".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 µs");
        assert_eq!(fmt_mb(1_500_000), "1.50");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
