//! `trace-report` — inspect a JSONL trace written by `train --trace` or
//! `repro --trace`, or stitch a process-backend run's per-rank traces
//! back into one aligned timeline.
//!
//! ```text
//! trace-report [--validate] [--timeline] FILE.jsonl
//! trace-report --merge [--validate] [--timeline] [--out PREFIX]
//!              [--offsets FILE] DIR | FILE...
//! ```
//!
//! Single-file mode reloads the event log and prints the
//! bottleneck-rank attribution report. `--validate` first runs the
//! strict schema validator (field whitelist, vocabularies, per-rank
//! sequence monotonicity, header event count) and prints the summary; a
//! malformed trace exits nonzero with the offending line number.
//! `--timeline` adds the per-epoch per-rank timeline table.
//!
//! `--merge` unions several per-rank traces (a directory positional
//! expands to its `trace-rank<N>.jsonl` files) onto one wall axis:
//! each rank's wall timestamps are corrected by the rendezvous-
//! estimated clock offsets (`--offsets FILE`, defaulting to the
//! directory's `clock-offsets.json` sidecar when present), the origin
//! is normalized to 0, and the merged artifacts are written as
//! `<PREFIX>.jsonl` + `<PREFIX>.chrome.json` (default `<DIR>/merged`).
//! With `--validate` every input *and* the merged output must pass the
//! schema validator.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gnn_trace::{
    chrome_trace_string, chrome_trace_string_wall, jsonl_string, merge_aligned, parse_jsonl,
    parse_offsets_json, text_timeline, validate_jsonl, write_to_file, BottleneckReport, WorldTrace,
};

struct Args {
    validate: bool,
    timeline: bool,
    merge: bool,
    out: Option<PathBuf>,
    offsets: Option<PathBuf>,
    inputs: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        validate: false,
        timeline: false,
        merge: false,
        out: None,
        offsets: None,
        inputs: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--validate" => a.validate = true,
            "--timeline" => a.timeline = true,
            "--merge" => a.merge = true,
            "--out" => a.out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--offsets" => {
                a.offsets = Some(PathBuf::from(it.next().ok_or("--offsets needs a value")?))
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => a.inputs.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if a.inputs.is_empty() {
        return Err(usage());
    }
    if !a.merge {
        if a.inputs.len() > 1 {
            return Err("exactly one trace file expected (use --merge for several)".into());
        }
        if a.out.is_some() || a.offsets.is_some() {
            return Err("--out/--offsets only apply to --merge".into());
        }
    }
    Ok(a)
}

fn usage() -> String {
    "usage: trace-report [--validate] [--timeline] FILE.jsonl\n\
     \u{20}      trace-report --merge [--validate] [--timeline] [--out PREFIX] \
     [--offsets FILE] DIR | FILE..."
        .to_string()
}

/// Expands a directory positional to its sorted `trace-rank<N>.jsonl`
/// files; plain files pass through.
fn expand_inputs(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        if !input.is_dir() {
            files.push(input.clone());
            continue;
        }
        let mut ranks: Vec<(usize, PathBuf)> = Vec::new();
        let entries = std::fs::read_dir(input)
            .map_err(|e| format!("cannot list {}: {e}", input.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", input.display()))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("trace-rank")
                .and_then(|rest| rest.strip_suffix(".jsonl"))
            {
                if let Ok(rank) = num.parse::<usize>() {
                    ranks.push((rank, entry.path()));
                }
            }
        }
        if ranks.is_empty() {
            return Err(format!(
                "no trace-rank<N>.jsonl files in {}",
                input.display()
            ));
        }
        ranks.sort();
        files.extend(ranks.into_iter().map(|(_, p)| p));
    }
    Ok(files)
}

/// The per-rank clock offsets to apply: an explicit `--offsets` file,
/// else the first input directory's `clock-offsets.json` sidecar, else
/// none (merge uncorrected).
fn load_offsets(args: &Args) -> Result<Option<Vec<f64>>, String> {
    let path = match &args.offsets {
        Some(p) => p.clone(),
        None => match args.inputs.iter().find(|i| i.is_dir()) {
            Some(dir) => {
                let sidecar = dir.join("clock-offsets.json");
                if !sidecar.is_file() {
                    return Ok(None);
                }
                sidecar
            }
            None => return Ok(None),
        },
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let offsets = parse_offsets_json(&text)?;
    println!(
        "clock offsets: {} rank(s) from {}",
        offsets.len(),
        path.display()
    );
    Ok(Some(offsets))
}

fn load_trace(path: &Path, validate: bool) -> Result<WorldTrace, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if validate {
        let s =
            validate_jsonl(&text).map_err(|e| format!("invalid trace {}: {e}", path.display()))?;
        println!(
            "valid: {} — {} rank(s), {} event(s) ({} spans, {} ops), \
             max epoch {}, {} logical bytes sent, {} wall-stamped",
            path.display(),
            s.p,
            s.events,
            s.spans,
            s.ops,
            s.max_epoch,
            s.logical_bytes_sent,
            s.wall_events
        );
    }
    parse_jsonl(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Renders the human-facing digest, guarding the degenerate case: a
/// header-only trace used to print a confusing `epochs 0..=-1` table.
fn report(trace: &WorldTrace, timeline: bool) {
    if trace.is_empty() {
        println!(
            "empty trace: {} rank(s), 0 events — nothing to report",
            trace.p()
        );
        return;
    }
    if timeline {
        print!("{}", text_timeline(trace));
    }
    print!("{}", BottleneckReport::from_trace(trace).render());
}

fn run(args: &Args) -> Result<(), String> {
    if !args.merge {
        let trace = load_trace(&args.inputs[0], args.validate)?;
        report(&trace, args.timeline);
        return Ok(());
    }

    let files = expand_inputs(&args.inputs)?;
    let offsets = load_offsets(args)?;
    let mut traces = Vec::with_capacity(files.len());
    for f in &files {
        traces.push(load_trace(f, args.validate)?);
    }
    let merged = merge_aligned(traces, offsets.as_deref())?;

    let prefix =
        args.out
            .clone()
            .unwrap_or_else(|| match args.inputs.iter().find(|i| i.is_dir()) {
                Some(dir) => dir.join("merged"),
                None => PathBuf::from("merged"),
            });
    let merged_jsonl = jsonl_string(&merged);
    if args.validate {
        validate_jsonl(&merged_jsonl).map_err(|e| format!("merged trace is invalid: {e}"))?;
    }
    let jsonl_path = prefix.with_extension("jsonl");
    write_to_file(&jsonl_path, &merged_jsonl)
        .map_err(|e| format!("write {}: {e}", jsonl_path.display()))?;
    let chrome_path = prefix.with_extension("chrome.json");
    let chrome = if merged.has_wall() {
        chrome_trace_string_wall(&merged)
    } else {
        chrome_trace_string(&merged)
    };
    write_to_file(&chrome_path, &chrome)
        .map_err(|e| format!("write {}: {e}", chrome_path.display()))?;
    println!(
        "merged {} file(s) → {} + {}{}",
        files.len(),
        jsonl_path.display(),
        chrome_path.display(),
        if offsets.is_some() {
            " (clock-offset corrected)"
        } else {
            " (no offset correction)"
        }
    );
    report(&merged, args.timeline);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(m) => {
            eprintln!("{m}");
            ExitCode::FAILURE
        }
    }
}
