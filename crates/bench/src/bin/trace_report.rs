//! `trace-report` — inspect a JSONL trace written by `train --trace` or
//! `repro --trace`.
//!
//! ```text
//! trace-report [--validate] [--timeline] FILE.jsonl
//! ```
//!
//! Reloads the event log and prints the bottleneck-rank attribution
//! report. `--validate` first runs the strict schema validator (field
//! whitelist, vocabularies, per-rank sequence monotonicity, header
//! event count) and prints the summary; a malformed trace exits
//! nonzero with the offending line number. `--timeline` adds the
//! per-epoch per-rank timeline table.

use std::path::PathBuf;
use std::process::ExitCode;

use gnn_trace::{parse_jsonl, text_timeline, validate_jsonl, BottleneckReport};

struct Args {
    validate: bool,
    timeline: bool,
    file: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut validate = false;
    let mut timeline = false;
    let mut file = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--validate" => validate = true,
            "--timeline" => timeline = true,
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => {
                if file.replace(PathBuf::from(other)).is_some() {
                    return Err("exactly one trace file expected".into());
                }
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        validate,
        timeline,
        file: file.ok_or_else(usage)?,
    })
}

fn usage() -> String {
    "usage: trace-report [--validate] [--timeline] FILE.jsonl".to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file.display());
            return ExitCode::FAILURE;
        }
    };
    if args.validate {
        match validate_jsonl(&text) {
            Ok(s) => println!(
                "valid: {} rank(s), {} event(s) ({} spans, {} ops), \
                 max epoch {}, {} logical bytes sent",
                s.p, s.events, s.spans, s.ops, s.max_epoch, s.logical_bytes_sent
            ),
            Err(e) => {
                eprintln!("invalid trace {}: {e}", args.file.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let trace = match parse_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", args.file.display());
            return ExitCode::FAILURE;
        }
    };
    if args.timeline {
        print!("{}", text_timeline(&trace));
    }
    print!("{}", BottleneckReport::from_trace(&trace).render());
    ExitCode::SUCCESS
}
