//! `train` — run full-graph distributed GNN training end to end.
//!
//! ```text
//! train [--dataset reddit|amazon|protein|papers] [--mtx FILE]
//!       [--algo 1d|1.5d|2d|3d] [--oblivious] [--c N] [--pc N]
//!       [--partitioner block|random|metis|gvb] [--p N]
//!       [--backend thread|proc] [--ranks N] [--proc-dir DIR]
//!       [--hostfile FILE] [--net-chaos SPEC]
//!       [--arch gcn|sage] [--opt sgd|adam] [--lr X]
//!       [--overlap on|off|chunks=N]
//!       [--kernel strict|fast] [--flop-rate auto|FLOPS]
//!       [--epochs N] [--scale N] [--seed N]
//!       [--inject-crash RANK@EPOCH] [--slow-rank RANK:FACTOR]
//!       [--drop-prob X] [--corrupt-prob X] [--fault-seed N]
//!       [--failover] [--checkpoint-every N] [--max-restarts N]
//!       [--watchdog-ms N]
//!       [--trace [PREFIX]] [--trace-format jsonl|chrome|both]
//!       [--metrics-out FILE] [--metrics-interval SECS]
//! ```
//!
//! `--backend proc` (Unix only) runs every rank as a **real OS
//! process** over Unix-domain sockets instead of threads: the launcher
//! re-executes itself once per rank (`--ranks N` sets the world size,
//! an alias for `--p`), supervises the children, and restarts the whole
//! generation from the newest disk checkpoint when a rank process dies
//! — including genuinely SIGKILL'd ranks. Results are bit-identical to
//! the thread backend. Thread-only features are rejected up front:
//! `--failover` and `--inject-crash` (kill the rank process instead;
//! that is the point of the backend).
//!
//! `--hostfile FILE` (proc only) switches the rank mesh from
//! Unix-domain sockets to **TCP listeners**: one `host[:port]` line per
//! rank, rank 0's port doubling as the rendezvous endpoint. An
//! all-loopback hostfile simulates the multi-node wire-up on one
//! machine (what CI runs); non-loopback hostfiles are rejected by this
//! launcher with per-host instructions, since it only spawns local
//! processes. `--net-chaos SPEC` arms the deterministic network-chaos
//! interposer inside every rank: seeded per-link delay/jitter,
//! bandwidth caps, byte-counted connection cuts, timed (possibly
//! one-way) partitions, and rendezvous connection-refusal windows —
//! all replayed bit-identically from the seed. Partitions that heal
//! within the heartbeat deadline are absorbed by reconnect + replay;
//! ones that outlive it take the checkpoint-restart ladder. Either
//! way final weights match the thread backend bit for bit.
//!
//! `--trace` on the process backend records a **dual-clock** trace:
//! each rank process writes `<proc-dir>/trace-rank<N>.jsonl` with both
//! modeled and monotonic wall timestamps, rank 0 publishes the
//! rendezvous-estimated `clock-offsets.json`, and the launcher merges
//! everything onto one offset-aligned wall axis under the `--trace`
//! prefix (same artifacts as the thread backend, plus wall columns).
//! `--metrics-interval SECS` (proc only) makes every rank append a
//! live transport-metrics snapshot to `<proc-dir>/metrics-rank<N>.jsonl`
//! at that period while the supervisor aggregates the latest snapshots
//! into `<proc-dir>/metrics.jsonl`.
//!
//! Trains on the simulated distributed runtime, prints the loss/accuracy
//! trajectory and the modeled communication/compute cost summary. The
//! fault flags rehearse degraded conditions: injected crashes trigger
//! checkpoint/restart, link faults exercise the retry path, and the
//! watchdog bounds every hang. With `--failover` (1.5D only) a crashed
//! rank's same-row replica takes over in place and the epoch finishes
//! on the shrunken grid — no world restart, bit-identical weights.
//!
//! `--overlap` pipelines each SpMM: remote blocks are fetched in chunks
//! with nonblocking sends/receives and folded into the accumulator while
//! the next chunk is in flight. Outputs are bit-identical to the
//! blocking schedule; only comm that fits behind a chunk's compute is
//! hidden, and the exposed remainder is reported as the `overlap` phase.
//!
//! `--kernel strict|fast` selects the numerics of the SIMD kernel layer
//! (default `strict` — bit-identical to the portable scalar loops on
//! every backend; `fast` enables FMA with a documented rounding
//! tolerance). `--flop-rate auto` replaces the cost model's A100-class
//! compute constant with the *measured* single-core throughput of the
//! active kernel backend on this host; a number sets it explicitly.
//!
//! `--trace` arms the structured tracer: every comm op and trainer
//! phase is recorded on each rank's modeled-time axis, artifacts land
//! at `<PREFIX>.jsonl` / `<PREFIX>.chrome.json` (default prefix under
//! `results/traces/`; the Chrome file opens in `chrome://tracing` or
//! Perfetto), and a per-epoch timeline plus bottleneck-rank
//! attribution report is printed. `--metrics-out` writes the unified
//! metrics registry as JSON (works with or without `--trace`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use std::time::Duration;

use gnn_bench::traceio::{self, TraceFormat};
use gnn_comm::{CostModel, FaultPlan, OverlapConfig, Phase};
use gnn_core::{try_train_distributed, Algo, DistConfig, GcnConfig, RobustnessConfig};
use partition::{partition_graph, Method, PartitionConfig};
use spmat::dataset::{amazon_scaled, papers_scaled, protein_scaled, reddit_scaled, Dataset};

/// Which SpMM algorithm family `--algo` selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AlgoTag {
    OneD,
    OneFiveD,
    TwoD,
    ThreeD,
}

impl AlgoTag {
    /// Short name used in trace-artifact prefixes.
    fn label(self) -> &'static str {
        match self {
            AlgoTag::OneD => "1d",
            AlgoTag::OneFiveD => "15d",
            AlgoTag::TwoD => "2d",
            AlgoTag::ThreeD => "3d",
        }
    }
}

struct Args {
    dataset: String,
    mtx: Option<PathBuf>,
    algo_tag: AlgoTag,
    aware: bool,
    c: usize,
    /// Grid columns (feature-panel count) for the 2D/3D algorithms.
    pc: usize,
    partitioner: Method,
    p: usize,
    sage: bool,
    adam: bool,
    lr: Option<f64>,
    overlap: OverlapConfig,
    epochs: usize,
    scale: u32,
    seed: u64,
    inject_crash: Option<(usize, usize)>,
    slow_rank: Option<(usize, f64)>,
    drop_prob: f64,
    corrupt_prob: f64,
    fault_seed: u64,
    failover: bool,
    checkpoint_every: usize,
    max_restarts: usize,
    watchdog_ms: u64,
    threads: usize,
    kernel_mode: spmat::kernel::KernelMode,
    /// `--kernel` was given explicitly (else the `GNN_KERNEL` env rules).
    kernel_flag: bool,
    /// `None` = paper constant, `Some(None)` = measured ("auto"),
    /// `Some(Some(x))` = explicit flop/s.
    flop_rate: Option<Option<f64>>,
    trace: bool,
    trace_prefix: Option<PathBuf>,
    trace_format: TraceFormat,
    metrics_out: Option<PathBuf>,
    /// `--metrics-interval` in seconds (proc backend live snapshots).
    metrics_interval: Option<f64>,
    backend_proc: bool,
    /// `--ranks` was given (proc-backend spelling of the world size).
    ranks_flag: bool,
    /// `--p` was given explicitly.
    p_flag: bool,
    proc_dir: Option<PathBuf>,
    /// `--hostfile`: switch the proc-backend mesh to TCP listeners at
    /// the listed `host[:port]` addresses (one line per rank).
    hostfile: Option<PathBuf>,
    /// `--net-chaos`: deterministic network-fault spec for the proc
    /// backend (validated up front, applied inside every rank).
    net_chaos: Option<String>,
    /// Internal: this invocation is rank N of a proc-backend launch.
    proc_child: Option<usize>,
}

fn parse() -> Result<Args, String> {
    parse_from(std::env::args().skip(1))
}

fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut a = Args {
        dataset: "protein".into(),
        mtx: None,
        algo_tag: AlgoTag::OneD,
        aware: true,
        c: 2,
        pc: 2,
        partitioner: Method::VolumeBalanced,
        p: 8,
        sage: false,
        adam: false,
        lr: None,
        overlap: OverlapConfig::off(),
        epochs: 30,
        scale: 11,
        seed: 1,
        inject_crash: None,
        slow_rank: None,
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        fault_seed: 0,
        failover: false,
        checkpoint_every: 5,
        max_restarts: 2,
        watchdog_ms: 30_000,
        threads: 0, // auto: GNN_THREADS env or available parallelism
        kernel_mode: spmat::kernel::KernelMode::Strict,
        kernel_flag: false,
        flop_rate: None,
        trace: false,
        trace_prefix: None,
        trace_format: TraceFormat::Both,
        metrics_out: None,
        metrics_interval: None,
        backend_proc: false,
        ranks_flag: false,
        p_flag: false,
        proc_dir: None,
        hostfile: None,
        net_chaos: None,
        proc_child: None,
    };
    let mut it = args.into_iter().peekable();
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dataset" => a.dataset = next(&mut it, "--dataset")?,
            "--mtx" => a.mtx = Some(PathBuf::from(next(&mut it, "--mtx")?)),
            "--algo" => {
                a.algo_tag = match next(&mut it, "--algo")?.as_str() {
                    "1d" => AlgoTag::OneD,
                    "1.5d" | "15d" => AlgoTag::OneFiveD,
                    "2d" => AlgoTag::TwoD,
                    "3d" => AlgoTag::ThreeD,
                    other => return Err(format!("unknown algo {other} (1d|1.5d|2d|3d)")),
                }
            }
            "--oblivious" => a.aware = false,
            "--c" => {
                a.c = next(&mut it, "--c")?
                    .parse()
                    .map_err(|e| format!("bad --c: {e}"))?
            }
            "--pc" => {
                a.pc = next(&mut it, "--pc")?
                    .parse()
                    .map_err(|e| format!("bad --pc: {e}"))?
            }
            "--partitioner" => {
                a.partitioner = match next(&mut it, "--partitioner")?.as_str() {
                    "block" => Method::Block,
                    "random" => Method::Random,
                    "metis" => Method::EdgeCut,
                    "gvb" => Method::VolumeBalanced,
                    other => return Err(format!("unknown partitioner {other}")),
                }
            }
            "--p" => {
                a.p_flag = true;
                a.p = next(&mut it, "--p")?
                    .parse()
                    .map_err(|e| format!("bad --p: {e}"))?
            }
            "--backend" => {
                a.backend_proc = match next(&mut it, "--backend")?.as_str() {
                    "thread" => false,
                    "proc" | "process" => true,
                    other => return Err(format!("unknown backend {other} (thread|proc)")),
                }
            }
            "--ranks" => {
                a.ranks_flag = true;
                a.p = next(&mut it, "--ranks")?
                    .parse()
                    .map_err(|e| format!("bad --ranks: {e}"))?
            }
            "--proc-dir" => a.proc_dir = Some(PathBuf::from(next(&mut it, "--proc-dir")?)),
            "--hostfile" => a.hostfile = Some(PathBuf::from(next(&mut it, "--hostfile")?)),
            "--net-chaos" => a.net_chaos = Some(next(&mut it, "--net-chaos")?),
            "--proc-child" => {
                a.proc_child = Some(
                    next(&mut it, "--proc-child")?
                        .parse()
                        .map_err(|e| format!("bad --proc-child: {e}"))?,
                )
            }
            "--arch" => {
                a.sage = match next(&mut it, "--arch")?.as_str() {
                    "gcn" => false,
                    "sage" => true,
                    other => return Err(format!("unknown arch {other}")),
                }
            }
            "--opt" => {
                a.adam = match next(&mut it, "--opt")?.as_str() {
                    "sgd" => false,
                    "adam" => true,
                    other => return Err(format!("unknown optimizer {other}")),
                }
            }
            "--lr" => {
                a.lr = Some(
                    next(&mut it, "--lr")?
                        .parse()
                        .map_err(|e| format!("bad --lr: {e}"))?,
                )
            }
            "--overlap" => {
                a.overlap = match next(&mut it, "--overlap")?.as_str() {
                    "off" => OverlapConfig::off(),
                    "on" => OverlapConfig::on(4),
                    v => match v.strip_prefix("chunks=") {
                        Some(n) => OverlapConfig::on(
                            n.parse()
                                .map_err(|e| format!("bad --overlap chunks: {e}"))?,
                        ),
                        None => return Err(format!("--overlap wants on|off|chunks=N, got {v}")),
                    },
                }
            }
            "--epochs" => {
                a.epochs = next(&mut it, "--epochs")?
                    .parse()
                    .map_err(|e| format!("bad --epochs: {e}"))?
            }
            "--scale" => {
                a.scale = next(&mut it, "--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--seed" => {
                a.seed = next(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--inject-crash" => {
                let v = next(&mut it, "--inject-crash")?;
                let (r, e) = v
                    .split_once('@')
                    .ok_or(format!("--inject-crash wants RANK@EPOCH, got {v}"))?;
                a.inject_crash = Some((
                    r.parse().map_err(|e| format!("bad crash rank: {e}"))?,
                    e.parse().map_err(|e| format!("bad crash epoch: {e}"))?,
                ));
            }
            "--slow-rank" => {
                let v = next(&mut it, "--slow-rank")?;
                let (r, f) = v
                    .split_once(':')
                    .ok_or(format!("--slow-rank wants RANK:FACTOR, got {v}"))?;
                a.slow_rank = Some((
                    r.parse().map_err(|e| format!("bad slow rank: {e}"))?,
                    f.parse().map_err(|e| format!("bad slow factor: {e}"))?,
                ));
            }
            "--drop-prob" => {
                a.drop_prob = next(&mut it, "--drop-prob")?
                    .parse()
                    .map_err(|e| format!("bad --drop-prob: {e}"))?
            }
            "--corrupt-prob" => {
                a.corrupt_prob = next(&mut it, "--corrupt-prob")?
                    .parse()
                    .map_err(|e| format!("bad --corrupt-prob: {e}"))?
            }
            "--fault-seed" => {
                a.fault_seed = next(&mut it, "--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?
            }
            "--failover" => a.failover = true,
            "--checkpoint-every" => {
                a.checkpoint_every = next(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?
            }
            "--max-restarts" => {
                a.max_restarts = next(&mut it, "--max-restarts")?
                    .parse()
                    .map_err(|e| format!("bad --max-restarts: {e}"))?
            }
            "--watchdog-ms" => {
                a.watchdog_ms = next(&mut it, "--watchdog-ms")?
                    .parse()
                    .map_err(|e| format!("bad --watchdog-ms: {e}"))?
            }
            "--threads" => {
                a.threads = next(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--kernel" => {
                a.kernel_mode = spmat::kernel::KernelMode::parse(&next(&mut it, "--kernel")?)?;
                a.kernel_flag = true;
            }
            "--flop-rate" => {
                let v = next(&mut it, "--flop-rate")?;
                a.flop_rate = Some(if v == "auto" {
                    None
                } else {
                    Some(
                        v.parse::<f64>()
                            .ok()
                            .filter(|r| r.is_finite() && *r > 0.0)
                            .ok_or(format!(
                                "--flop-rate wants auto or a positive flop/s, got {v}"
                            ))?,
                    )
                });
            }
            "--trace" => {
                a.trace = true;
                // Optional value: a path prefix for the artifacts.
                if let Some(v) = it.peek() {
                    if !v.starts_with('-') {
                        a.trace_prefix = Some(PathBuf::from(it.next().unwrap()));
                    }
                }
            }
            "--trace-format" => {
                a.trace_format = TraceFormat::parse(&next(&mut it, "--trace-format")?)?
            }
            "--metrics-out" => a.metrics_out = Some(PathBuf::from(next(&mut it, "--metrics-out")?)),
            "--metrics-interval" => {
                let v = next(&mut it, "--metrics-interval")?;
                a.metrics_interval = Some(
                    v.parse::<f64>()
                        .ok()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or(format!(
                            "--metrics-interval wants a positive number of seconds, got {v}"
                        ))?,
                );
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(a)
}

fn usage() -> String {
    "usage: train [--dataset reddit|amazon|protein|papers] [--mtx FILE] \
     [--algo 1d|1.5d|2d|3d] [--oblivious] [--c N] [--pc N] \
     [--partitioner block|random|metis|gvb] [--p N] \
     [--backend thread|proc] [--ranks N] [--proc-dir DIR] \
     [--hostfile FILE] [--net-chaos SPEC] [--arch gcn|sage] \
     [--opt sgd|adam] [--lr X] [--overlap on|off|chunks=N] \
     [--kernel strict|fast] [--flop-rate auto|FLOPS] \
     [--epochs N] [--scale N] [--seed N] \
     [--inject-crash RANK@EPOCH] [--slow-rank RANK:FACTOR] [--drop-prob X] \
     [--corrupt-prob X] [--fault-seed N] [--failover] [--checkpoint-every N] \
     [--max-restarts N] [--watchdog-ms N] [--threads N] \
     [--trace [PREFIX]] [--trace-format jsonl|chrome|both] [--metrics-out FILE] \
     [--metrics-interval SECS]"
        .to_string()
}

/// Number of graph partitions (block rows) for the requested algorithm
/// and world size, with the grid-shape divisibility rules enforced
/// before any partitioning work happens.
fn grid_parts(tag: AlgoTag, p: usize, pc: usize, c: usize) -> Result<usize, String> {
    if p == 0 {
        return Err("need --p >= 1".into());
    }
    match tag {
        AlgoTag::OneD => Ok(p),
        AlgoTag::OneFiveD => {
            if c == 0 || !p.is_multiple_of(c * c) {
                return Err(format!("1.5D wants p divisible by c\u{b2} (p={p}, c={c})"));
            }
            Ok(p / c)
        }
        AlgoTag::TwoD => {
            if pc == 0 || !p.is_multiple_of(pc) {
                return Err(format!("2D wants p divisible by --pc (p={p}, pc={pc})"));
            }
            Ok(p / pc)
        }
        AlgoTag::ThreeD => {
            if pc == 0 || c == 0 || !p.is_multiple_of(pc * c) {
                return Err(format!(
                    "3D wants p divisible by pc\u{b7}c (p={p}, pc={pc}, c={c})"
                ));
            }
            let pr = p / (pc * c);
            if c > pr {
                return Err(format!(
                    "3D replication cannot exceed the row-block count (c={c} > pr={pr}); \
                     lower --c or raise --p"
                ));
            }
            Ok(pr)
        }
    }
}

/// Rejects flag combinations that mix thread-only features with the
/// process backend (and vice versa) before any work happens, with a
/// pointer to what to use instead.
fn validate_backend_flags(a: &Args) -> Result<(), String> {
    if !a.backend_proc {
        if a.ranks_flag {
            return Err(
                "--ranks sets the process-backend world size; add --backend proc, \
                 or use --p for the thread backend"
                    .into(),
            );
        }
        if a.proc_dir.is_some() {
            return Err("--proc-dir only applies to --backend proc".into());
        }
        if a.proc_child.is_some() {
            return Err(
                "--proc-child is internal to --backend proc launches and needs --backend proc"
                    .into(),
            );
        }
        if a.metrics_interval.is_some() {
            return Err(
                "--metrics-interval streams live transport metrics from rank processes and \
                 only applies to --backend proc; the thread backend writes one summary via \
                 --metrics-out instead"
                    .into(),
            );
        }
        if a.hostfile.is_some() {
            return Err(
                "--hostfile switches the process-backend rank mesh to TCP and needs \
                 --backend proc"
                    .into(),
            );
        }
        if a.net_chaos.is_some() {
            return Err(
                "--net-chaos injects deterministic network faults into the process-backend \
                 transport and needs --backend proc; for the thread backend use the fault \
                 flags (--drop-prob, --slow-rank, ...) instead"
                    .into(),
            );
        }
        return Ok(());
    }
    if cfg!(not(unix)) {
        return Err(
            "--backend proc needs a Unix platform (ranks talk over Unix-domain sockets); \
                    use --backend thread"
                .into(),
        );
    }
    if a.failover {
        return Err(
            "--failover (in-place replica failover) only works on the thread backend; \
             the process backend recovers dead ranks via checkpoint restart instead — \
             drop --failover, or use --backend thread"
                .into(),
        );
    }
    if a.inject_crash.is_some() {
        return Err(
            "--inject-crash simulates a rank crash inside a thread world; on the process \
             backend kill the real rank process instead (PIDs are published at \
             <proc-dir>/rank<N>.pid), or use --backend thread"
                .into(),
        );
    }
    if a.proc_child.is_some() && a.proc_dir.is_none() {
        return Err("--proc-child needs --proc-dir (both are set by the launcher)".into());
    }
    // Reject a malformed chaos spec before any process is spawned; the
    // same string reaches every rank, so one parse here covers them all.
    #[cfg(unix)]
    if let Some(spec) = a.net_chaos.as_deref() {
        gnn_comm::NetChaosPlan::parse(spec).map_err(|e| format!("--net-chaos: {e}"))?;
    }
    Ok(())
}

/// Applies `--hostfile`: loads it, reconciles the world size (the
/// hostfile is authoritative when `--ranks`/`--p` were not given), and
/// rejects non-loopback hostfiles in the parent — this launcher only
/// spawns rank processes locally.
fn apply_hostfile(a: &mut Args) -> Result<(), String> {
    let Some(path) = a.hostfile.clone() else {
        return Ok(());
    };
    #[cfg(unix)]
    {
        let hf = gnn_comm::HostFile::load(&path).map_err(|e| format!("--hostfile: {e}"))?;
        if (a.p_flag || a.ranks_flag) && a.p != hf.p() {
            return Err(format!(
                "--hostfile {} lists {} rank(s) but --ranks/--p asked for {}; the hostfile \
                 is one line per rank — drop the explicit world size or fix the hostfile",
                path.display(),
                hf.p(),
                a.p
            ));
        }
        a.p = hf.p();
        if a.proc_child.is_none() && !hf.all_loopback() {
            return Err(format!(
                "hostfile {} names non-loopback hosts; this launcher only spawns rank \
                 processes on this machine. Point --proc-dir at a directory shared by every \
                 host (the checkpoint/outcome exchange), then start each rank on its listed \
                 host with the same command plus `--proc-child R` (rendezvous at {}); or use \
                 an all-loopback hostfile to simulate the TCP mesh on one machine",
                path.display(),
                hf.rendezvous_addr()
            ));
        }
        Ok(())
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Err("--hostfile needs --backend proc, which is Unix-only".into())
    }
}

fn load_dataset(a: &Args) -> Result<Dataset, String> {
    if let Some(path) = &a.mtx {
        // External graph; synthesize features/labels like the paper did
        // for Amazon/Protein ("we chose an arbitrary number of features
        // and labels").
        let adj = spmat::io::read_mtx(path).map_err(|e| e.to_string())?;
        if !adj.is_symmetric() {
            return Err("mtx graph must be symmetric (undirected)".into());
        }
        let norm_adj = spmat::graph::gcn_normalize(&adj);
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(a.seed);
        let n = adj.rows();
        let classes = 16;
        let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..classes as u32)).collect();
        let features = spmat::Dense::from_fn(n, 64, |r, _| {
            labels[r] as f64 / classes as f64 + rng.gen::<f64>()
        });
        let train_mask = (0..n).map(|_| rng.gen_bool(0.6)).collect();
        return Ok(Dataset {
            name: format!("mtx:{}", path.display()),
            adj,
            norm_adj,
            features,
            labels,
            num_classes: classes,
            train_mask,
        });
    }
    Ok(match a.dataset.as_str() {
        "reddit" => reddit_scaled(a.scale.min(13), a.seed),
        "amazon" => amazon_scaled(a.scale, a.seed),
        "protein" => protein_scaled(1usize << a.scale, 32, a.seed),
        "papers" => papers_scaled(a.scale, a.seed),
        other => return Err(format!("unknown dataset {other}")),
    })
}

/// Parent side of `--backend proc`: supervise one re-exec'd child per
/// rank; each child re-parses the same CLI and rebuilds the identical
/// deterministic scenario, so nothing needs to be serialized to them.
/// Returns the outcome plus the rendezvous directory (where traced
/// runs leave their per-rank artifacts for [`merge_proc_traces`]).
#[cfg(unix)]
fn run_proc_parent(args: &Args) -> Result<(gnn_core::DistOutcome, PathBuf), String> {
    let dir = args
        .proc_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("gnn-train-{}", std::process::id())));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    // A fresh launch must train from epoch 0, not resume a previous
    // run that happened to use the same rendezvous directory.
    gnn_core::dist::clear_disk_checkpoints(&dir.join("ckpt"));
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "proc backend: launching {} rank process(es) under {}",
        args.p,
        dir.display()
    );
    if let Some(hosts) = &args.hostfile {
        println!("proc backend: TCP mesh from hostfile {}", hosts.display());
    }
    if let Some(spec) = &args.net_chaos {
        println!("proc backend: deterministic net chaos armed: {spec}");
    }
    let interval = args.metrics_interval.map(Duration::from_secs_f64);
    let metrics_ms = interval.map(|iv| (iv.as_millis().max(1)).to_string());
    let out =
        gnn_core::supervise_proc_training_with(args.p, &dir, args.max_restarts, interval, |rank| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(&forwarded)
                .arg("--proc-dir")
                .arg(&dir)
                .arg("--proc-child")
                .arg(rank.to_string());
            if let Some(ms) = &metrics_ms {
                cmd.env("GNN_PROC_METRICS_MS", ms);
            }
            cmd.spawn()
        })
        .map_err(|e| e.to_string())?;
    Ok((out, dir))
}

/// Stitches a traced proc run back together: loads every rank's
/// `trace-rank<N>.jsonl` plus the rendezvous `clock-offsets.json`
/// sidecar from `dir` and merges them onto one offset-aligned wall
/// axis (the same pipeline as `trace-report --merge`).
#[cfg(unix)]
fn merge_proc_traces(dir: &std::path::Path, p: usize) -> Result<gnn_trace::WorldTrace, String> {
    let mut traces = Vec::with_capacity(p);
    for rank in 0..p {
        let path = gnn_core::trace_rank_path(dir, rank);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        traces.push(
            gnn_trace::parse_jsonl(&text).map_err(|e| format!("parse {}: {e}", path.display()))?,
        );
    }
    let sidecar = dir.join("clock-offsets.json");
    let offsets = match std::fs::read_to_string(&sidecar) {
        Ok(text) => Some(gnn_trace::parse_offsets_json(&text)?),
        Err(e) => {
            eprintln!(
                "warning: no clock-offset sidecar ({}: {e}); merging uncorrected",
                sidecar.display()
            );
            None
        }
    };
    gnn_trace::merge_aligned(traces, offsets.as_deref())
}

fn main() -> ExitCode {
    let mut args = match parse() {
        Ok(a) => a,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(m) = validate_backend_flags(&args) {
        eprintln!("{m}");
        return ExitCode::FAILURE;
    }
    if let Err(m) = apply_hostfile(&mut args) {
        eprintln!("{m}");
        return ExitCode::FAILURE;
    }
    let args = args;
    // Proc-backend children rebuild the scenario silently; only the
    // parent (or a thread-backend run) narrates progress.
    let quiet = args.proc_child.is_some();
    spmat::pool::set_threads(args.threads); // 0 keeps the auto default
    let threads = spmat::pool::current_threads();
    if args.kernel_flag {
        spmat::kernel::set_mode(args.kernel_mode); // else GNN_KERNEL env rules
    }
    let kernels = spmat::kernel::active();
    let t0 = Instant::now();
    let ds = match load_dataset(&args) {
        Ok(d) => d,
        Err(m) => {
            eprintln!("dataset error: {m}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        println!(
            "dataset {}: {} vertices, {} edges, f={}, {} classes  [{:.1}s]",
            ds.name,
            ds.n(),
            ds.edges(),
            ds.f(),
            ds.num_classes,
            t0.elapsed().as_secs_f64()
        );
    }

    // Partition & permute.
    let parts = match grid_parts(args.algo_tag, args.p, args.pc, args.c) {
        Ok(parts) => parts,
        Err(m) => {
            eprintln!("invalid grid: {m}");
            return ExitCode::FAILURE;
        }
    };
    let t1 = Instant::now();
    let part = partition_graph(
        &ds.adj,
        parts,
        &PartitionConfig::new(args.partitioner).with_seed(args.seed),
    );
    let ds = ds.permute(&part.to_permutation());
    let bounds = part.block_bounds();
    if !quiet {
        println!(
            "partitioned into {parts} parts with {} in {:.1}s",
            args.partitioner.label(),
            t1.elapsed().as_secs_f64()
        );
    }

    // Configure and train.
    let mut gcn = GcnConfig::paper_default(ds.f(), ds.num_classes);
    if args.sage {
        gcn = gcn.with_sage();
    }
    if args.adam {
        gcn = gcn.with_adam(args.lr.unwrap_or(0.01));
    } else if let Some(lr) = args.lr {
        gcn.lr = lr;
    }
    let algo = match args.algo_tag {
        AlgoTag::OneD => Algo::OneD { aware: args.aware },
        AlgoTag::OneFiveD => Algo::OneFiveD {
            aware: args.aware,
            c: args.c,
        },
        AlgoTag::TwoD => Algo::TwoD {
            aware: args.aware,
            pc: args.pc,
        },
        AlgoTag::ThreeD => Algo::ThreeD {
            aware: args.aware,
            pc: args.pc,
            c: args.c,
        },
    };
    if !quiet {
        println!(
            "training: {} | {:?} arch | {} epochs | {threads} kernel thread(s) | \
             {} kernels ({}){}",
            algo.label(),
            gcn.arch,
            args.epochs,
            kernels.backend.label(),
            kernels.mode.label(),
            if args.overlap.enabled {
                format!(" | overlap chunks={}", args.overlap.chunks)
            } else {
                String::new()
            }
        );
    }

    let mut plan = FaultPlan::new(args.fault_seed);
    if let Some((rank, epoch)) = args.inject_crash {
        plan = plan.crash_at(rank, epoch, 0);
    }
    if let Some((rank, factor)) = args.slow_rank {
        plan = plan.slow_compute(rank, factor);
    }
    if args.drop_prob > 0.0 {
        for rank in 0..args.p {
            plan = plan.drop_messages(rank, None, args.drop_prob);
        }
    }
    if args.corrupt_prob > 0.0 {
        for rank in 0..args.p {
            plan = plan.corrupt_messages(rank, None, args.corrupt_prob);
        }
    }
    let faulty = !plan.is_empty();
    if faulty && !quiet {
        println!(
            "fault plan: {} fault(s), seed {}",
            plan.faults.len(),
            args.fault_seed
        );
    }

    let mut cost = CostModel::perlmutter_like().with_threads(threads);
    if let Some(rate) = args.flop_rate {
        let gamma = match rate {
            Some(explicit) => explicit,
            None => spmat::kernel::measured_gflops() * 1e9,
        };
        cost = cost.with_flop_rate(gamma);
        if !quiet {
            println!(
                "cost model: measured compute rate {:.3} GFLOP/s ({} backend){}",
                gamma / 1e9,
                kernels.backend.label(),
                if rate.is_some() { " [explicit]" } else { "" }
            );
        }
    }
    let mut cfg = DistConfig::new(algo, gcn, args.epochs, cost);
    cfg.trace = args.trace;
    cfg.overlap = args.overlap;
    if args.failover && args.algo_tag != AlgoTag::OneFiveD && !quiet {
        println!(
            "note: --failover needs 1.5D row replication; other algorithms fall back to \
             checkpoint restart"
        );
    }
    cfg.robust = RobustnessConfig {
        faults: faulty.then_some(plan),
        checkpoint_every: args.checkpoint_every,
        max_restarts: args.max_restarts,
        timeout: Duration::from_millis(args.watchdog_ms.max(1)),
        failover: args.failover,
    };
    cfg.hostfile = args.hostfile.clone();
    cfg.net_chaos = args.net_chaos.clone();

    // Proc-backend child: this invocation *is* rank N — run it over the
    // real sockets and exit without printing anything.
    #[cfg(unix)]
    if let Some(rank) = args.proc_child {
        let dir = args
            .proc_dir
            .clone()
            .expect("validated: --proc-child implies --proc-dir via the launcher");
        return match gnn_core::run_rank_proc(&ds, &bounds, &cfg, &dir, rank) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("rank {rank}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let t2 = Instant::now();
    let out = if args.backend_proc {
        #[cfg(unix)]
        {
            match run_proc_parent(&args) {
                Ok((mut out, dir)) => {
                    if args.trace {
                        // Per-rank dual-clock files → one aligned trace,
                        // reported exactly like a thread-backend run.
                        match merge_proc_traces(&dir, args.p) {
                            Ok(merged) => out.trace = Some(merged),
                            Err(m) => eprintln!("warning: could not merge rank traces: {m}"),
                        }
                    }
                    out
                }
                Err(m) => {
                    eprintln!("training failed: {m}");
                    return ExitCode::FAILURE;
                }
            }
        }
        #[cfg(not(unix))]
        unreachable!("validate_backend_flags rejects --backend proc off Unix")
    } else {
        match try_train_distributed(&ds, &bounds, &cfg) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("training failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let wall = t2.elapsed().as_secs_f64();

    println!("\nepoch       loss   accuracy");
    let step = (args.epochs / 10).max(1);
    for (e, r) in out.records.iter().enumerate() {
        if e % step == 0 || e + 1 == args.epochs {
            println!("{e:>5}  {:>9.4}  {:>9.3}", r.loss, r.train_accuracy);
        }
    }

    let st = &out.stats;
    let per_epoch = st.modeled_epoch_time() / args.epochs as f64;
    println!("\n-- modeled cost (Perlmutter-like machine) --");
    println!("epoch time:      {:>10.3} ms", per_epoch * 1e3);
    for (label, phase) in [
        ("local compute", Phase::LocalCompute),
        ("alltoall", Phase::AllToAll),
        ("bcast", Phase::Bcast),
        ("allreduce", Phase::AllReduce),
        ("p2p", Phase::P2p),
        ("overlap (exposed)", Phase::Overlap),
    ] {
        let t = st.phase_time(phase) / args.epochs as f64;
        if t > 0.0 {
            println!("  {label:<17} {:>10.3} ms", t * 1e3);
        }
    }
    if st.total_overlap_stages() > 0 {
        let hidden = st.total_overlap_hidden_seconds() / args.epochs as f64;
        let exposed = st.total_overlap_exposed_seconds() / args.epochs as f64;
        println!(
            "  overlap window: {:.3} ms comm hidden, {:.3} ms exposed \
             ({} stages, all ranks)",
            hidden * 1e3,
            exposed * 1e3,
            st.total_overlap_stages()
        );
    }
    let (kernel_flops, kernel_wall) = st
        .per_rank
        .iter()
        .map(|r| {
            let c = r.phase(Phase::LocalCompute);
            (c.flops, c.wall_seconds)
        })
        .fold((0u64, 0.0f64), |(f, w), (cf, cw)| (f + cf, w + cw));
    if kernel_wall > 0.0 {
        println!(
            "kernel throughput: {:>7.3} GFLOP/s measured ({threads} thread(s), all ranks)",
            kernel_flops as f64 / kernel_wall / 1e9
        );
    }
    let transport_faults = st.total_reconnects()
        + st.total_partitions_suspected()
        + st.total_chaos_injected()
        + st.total_dial_backoffs();
    if faulty || out.restarts > 0 || out.failovers > 0 || transport_faults > 0 {
        println!("\n-- fault summary --");
        println!("restarts:          {}", out.restarts);
        if !out.resume_points.is_empty() {
            println!("resumed at epochs: {:?}", out.resume_points);
        }
        println!("failovers:         {}", out.failovers);
        println!("injected faults:   {}", st.total_injected_faults());
        println!("retries:           {}", st.total_retries());
        if transport_faults > 0 {
            println!(
                "transport:         {} reconnects, {} replayed frames, \
                 {} partitions suspected, {} healed, {} dial backoffs, \
                 {} chaos injections",
                st.total_reconnects(),
                st.total_replayed_frames(),
                st.total_partitions_suspected(),
                st.total_partitions_healed(),
                st.total_dial_backoffs(),
                st.total_chaos_injected()
            );
        }
        for (rank, r) in st.per_rank.iter().enumerate() {
            let f = &r.faults;
            if f.injected_total() > 0 || f.retries > 0 {
                println!(
                    "  rank {rank}: {} delays, {} drops, {} corruptions, \
                     {} retries, {} slowed ops",
                    f.delays, f.drops, f.corruptions, f.retries, f.slowed_ops
                );
            }
        }
    }
    let prefix = args.trace_prefix.clone().unwrap_or_else(|| {
        traceio::default_prefix(&format!(
            "train_{}_{}_p{}",
            args.dataset,
            args.algo_tag.label(),
            args.p
        ))
    });
    if let Some(trace) = &out.trace {
        println!("\n-- trace --");
        print!("{}", traceio::render_report(trace));
        match traceio::write_trace(&prefix, args.trace_format, trace) {
            Ok(paths) => {
                for p in paths {
                    println!("[trace written to {}]", p.display());
                }
            }
            Err(e) => eprintln!("warning: could not write trace: {e}"),
        }
    }
    if args.trace || args.metrics_out.is_some() {
        let path = args
            .metrics_out
            .clone()
            .unwrap_or_else(|| prefix.with_extension("metrics.json"));
        match traceio::write_metrics(&path, st, out.trace.as_ref()) {
            Ok(()) => println!("[metrics written to {}]", path.display()),
            Err(e) => eprintln!("warning: could not write metrics: {e}"),
        }
    }
    println!("simulation wall time: {wall:.1}s");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        parse_from(list.iter().map(|s| s.to_string()))
    }

    fn validated(list: &[&str]) -> Result<(), String> {
        validate_backend_flags(&args(list).expect("flags should parse"))
    }

    /// The proc backend records dual-clock traces now; the old
    /// mutual-exclusion is gone.
    #[test]
    fn proc_backend_accepts_trace() {
        assert_eq!(
            validated(&["--backend", "proc", "--ranks", "4", "--trace"]),
            Ok(())
        );
        assert_eq!(
            validated(&[
                "--backend",
                "proc",
                "--ranks",
                "2",
                "--trace",
                "--metrics-interval",
                "0.5",
            ]),
            Ok(())
        );
    }

    #[test]
    fn algo_flag_covers_all_four_families() {
        assert_eq!(args(&["--algo", "1d"]).unwrap().algo_tag, AlgoTag::OneD);
        assert_eq!(
            args(&["--algo", "1.5d"]).unwrap().algo_tag,
            AlgoTag::OneFiveD
        );
        assert_eq!(args(&["--algo", "2d"]).unwrap().algo_tag, AlgoTag::TwoD);
        assert_eq!(args(&["--algo", "3d"]).unwrap().algo_tag, AlgoTag::ThreeD);
        assert!(args(&["--algo", "4d"]).is_err());
        assert_eq!(args(&["--pc", "4"]).unwrap().pc, 4);
    }

    #[test]
    fn grid_parts_enforces_divisibility() {
        assert_eq!(grid_parts(AlgoTag::OneD, 8, 1, 2), Ok(8));
        assert_eq!(grid_parts(AlgoTag::OneFiveD, 8, 1, 2), Ok(4));
        assert!(grid_parts(AlgoTag::OneFiveD, 6, 1, 2).is_err());
        assert_eq!(grid_parts(AlgoTag::TwoD, 8, 2, 2), Ok(4));
        assert!(grid_parts(AlgoTag::TwoD, 8, 3, 2).is_err());
        assert_eq!(grid_parts(AlgoTag::ThreeD, 8, 2, 2), Ok(2));
        assert!(grid_parts(AlgoTag::ThreeD, 8, 3, 2).is_err());
        // Replication deeper than the row-block count cannot split the
        // SUMMA stages across layers.
        let err = grid_parts(AlgoTag::ThreeD, 8, 1, 4).unwrap_err();
        assert!(err.contains("c=4 > pr=2"), "{err}");
        assert!(grid_parts(AlgoTag::TwoD, 0, 1, 1).is_err());
    }

    #[test]
    fn proc_backend_still_rejects_thread_only_fault_flags() {
        let err = validated(&["--backend", "proc", "--failover"]).unwrap_err();
        assert!(err.contains("--failover"), "{err}");
        let err = validated(&["--backend", "proc", "--inject-crash", "1@3"]).unwrap_err();
        assert!(err.contains("--inject-crash"), "{err}");
    }

    #[test]
    fn metrics_interval_needs_proc_backend() {
        let err = validated(&["--metrics-interval", "1"]).unwrap_err();
        assert!(err.contains("--backend proc"), "{err}");
    }

    #[test]
    fn metrics_interval_parses_positive_seconds_only() {
        assert_eq!(
            args(&["--metrics-interval", "0.25"])
                .unwrap()
                .metrics_interval,
            Some(0.25)
        );
        assert!(args(&["--metrics-interval", "0"]).is_err());
        assert!(args(&["--metrics-interval", "-1"]).is_err());
        assert!(args(&["--metrics-interval", "nan"]).is_err());
    }

    #[test]
    fn ranks_without_proc_backend_still_rejected() {
        let err = validated(&["--ranks", "4"]).unwrap_err();
        assert!(err.contains("--backend proc"), "{err}");
    }

    #[test]
    fn hostfile_and_net_chaos_need_proc_backend() {
        let err = validated(&["--hostfile", "hosts.txt"]).unwrap_err();
        assert!(err.contains("--backend proc"), "{err}");
        let err = validated(&["--net-chaos", "seed=1"]).unwrap_err();
        assert!(err.contains("--backend proc"), "{err}");
    }

    #[cfg(unix)]
    #[test]
    fn malformed_net_chaos_is_rejected_before_spawning() {
        let err =
            validated(&["--backend", "proc", "--net-chaos", "seed=1;partition=bogus"]).unwrap_err();
        assert!(err.contains("--net-chaos"), "{err}");
        assert_eq!(
            validated(&[
                "--backend",
                "proc",
                "--net-chaos",
                "seed=7;partition=0-1@200..700;delay=0>1:3+-2",
            ]),
            Ok(())
        );
    }

    #[cfg(unix)]
    #[test]
    fn hostfile_is_authoritative_for_the_world_size() {
        let dir = std::env::temp_dir().join(format!("gnn-train-hf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hosts.txt");
        std::fs::write(&path, "127.0.0.1:7700\n127.0.0.1\n127.0.0.1\n").unwrap();
        let hf = path.to_str().unwrap();

        // No explicit world size: the hostfile decides.
        let mut a = args(&["--backend", "proc", "--hostfile", hf]).unwrap();
        apply_hostfile(&mut a).unwrap();
        assert_eq!(a.p, 3);

        // Explicit but contradictory world size: rejected.
        let mut a = args(&["--backend", "proc", "--hostfile", hf, "--ranks", "4"]).unwrap();
        let err = apply_hostfile(&mut a).unwrap_err();
        assert!(err.contains("3 rank(s)"), "{err}");

        // Non-loopback hostfiles cannot be launched from one machine.
        std::fs::write(&path, "10.0.0.1:7700\n10.0.0.2\n").unwrap();
        let mut a = args(&["--backend", "proc", "--hostfile", hf]).unwrap();
        let err = apply_hostfile(&mut a).unwrap_err();
        assert!(err.contains("non-loopback"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
