//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--small] [--seed N] [--out DIR] [--threads N] [--kernel strict|fast]
//!       [--trace [PREFIX]] [--trace-format jsonl|chrome|both] [--metrics-out FILE]
//!       <table2|table3|fig3|fig4|fig5|fig6|fig7|volumes|overlap|algos|sweep|all>
//! ```
//!
//! Prints each artifact as an aligned table and writes a CSV twin to
//! `--out` (default `results/`). `--small` runs miniature datasets with
//! the same sweep shapes (seconds instead of minutes; used by CI).
//! `--threads N` sets the kernel thread count for every local SpMM/GEMM
//! (default: `GNN_THREADS` env, then available parallelism); results are
//! bit-identical at any thread count. `--kernel strict|fast` sets the
//! SIMD kernel numerics (strict — the default — is also bit-identical
//! across scalar/AVX2/NEON backends; fast trades that for FMA).
//!
//! The tables and figures are computed analytically from recorded
//! volumes, so `--trace` instead runs a short *executor-backed*
//! training pass (1D sparsity-aware on the Reddit analogue) with the
//! structured tracer armed, writes `<PREFIX>.jsonl` /
//! `<PREFIX>.chrome.json` (default prefix under `results/traces/`),
//! and prints the bottleneck-rank attribution report. `--trace` may be
//! given with no table/figure commands at all.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use gnn_bench::experiments::{self, Suite};
use gnn_bench::table::Table;
use gnn_bench::traceio::{self, TraceFormat};
use gnn_comm::CostModel;
use gnn_core::{try_train_distributed, Algo, DistConfig, GcnConfig};
use partition::{partition_graph, Method, PartitionConfig};

#[derive(Debug)]
struct Args {
    small: bool,
    seed: u64,
    out: PathBuf,
    threads: usize,
    kernel_mode: Option<spmat::kernel::KernelMode>,
    trace: bool,
    trace_prefix: Option<PathBuf>,
    trace_format: TraceFormat,
    metrics_out: Option<PathBuf>,
    commands: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        small: false,
        seed: 1,
        out: PathBuf::from("results"),
        threads: 0,        // auto
        kernel_mode: None, // GNN_KERNEL env rules unless --kernel is given
        trace: false,
        trace_prefix: None,
        trace_format: TraceFormat::Both,
        metrics_out: None,
        commands: Vec::new(),
    };
    let mut it = raw.peekable();
    // Process-backend launcher flags are rejected, but only after the
    // whole command line is scanned so the error can name every
    // offending flag at once instead of stopping at the first.
    let mut proc_flags: Vec<String> = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => args.small = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--kernel" => {
                args.kernel_mode = Some(spmat::kernel::KernelMode::parse(
                    &it.next().ok_or("--kernel needs a value")?,
                )?);
            }
            "--trace" => {
                args.trace = true;
                // Optional value: a path prefix for the artifacts.
                if let Some(v) = it.peek() {
                    if v.starts_with('-') || !v.contains(['/', '.']) {
                        // Bare words are table/figure commands, not paths.
                    } else {
                        args.trace_prefix = Some(PathBuf::from(it.next().unwrap()));
                    }
                }
            }
            "--trace-format" => {
                args.trace_format =
                    TraceFormat::parse(&it.next().ok_or("--trace-format needs a value")?)?
            }
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a value")?,
                ))
            }
            "--help" | "-h" => return Err(usage()),
            // The repro harness replays recorded volumes analytically (or
            // runs a short traced thread-world pass); it never launches
            // rank processes. Collect every such flag — each takes a
            // value, which is swallowed too — and report them together.
            "--backend" | "--ranks" | "--proc-dir" | "--proc-child" | "--hostfile"
            | "--net-chaos" => {
                proc_flags.push(a.clone());
                if it.peek().is_some_and(|v| !v.starts_with('-')) {
                    it.next();
                }
            }
            cmd if !cmd.starts_with('-') => args.commands.push(cmd.to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if !proc_flags.is_empty() {
        return Err(format!(
            "{} belong{} to the process-backend launcher; repro computes its \
             artifacts analytically on the thread backend only — use \
             `train --backend proc` for a process-backed run",
            proc_flags.join(", "),
            if proc_flags.len() == 1 { "s" } else { "" }
        ));
    }
    if args.commands.is_empty() && !args.trace {
        return Err(usage());
    }
    Ok(args)
}

fn usage() -> String {
    "usage: repro [--small] [--seed N] [--out DIR] [--threads N] \
     [--kernel strict|fast] \
     [--trace [PREFIX]] [--trace-format jsonl|chrome|both] [--metrics-out FILE] \
     <table2|table3|fig3|fig4|fig5|fig6|fig7|volumes|overlap|algos|sweep|all> ..."
        .to_string()
}

fn emit(name: &str, title: &str, table: &Table, out: &std::path::Path) {
    println!("\n=== {title} ===");
    print!("{}", table.render());
    match table.write_csv(out, name) {
        Ok(()) => println!("[csv written to {}/{name}.csv]", out.display()),
        Err(e) => eprintln!("warning: could not write csv: {e}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    spmat::pool::set_threads(args.threads); // 0 keeps the auto default
    if let Some(mode) = args.kernel_mode {
        spmat::kernel::set_mode(mode);
    }
    let kernels = spmat::kernel::active();
    eprintln!(
        "kernel threads: {} | {} backend ({} mode) — results are \
         thread-count independent{}",
        spmat::pool::current_threads(),
        kernels.backend.label(),
        kernels.mode.label(),
        if kernels.mode == spmat::kernel::KernelMode::Strict {
            " and backend-independent"
        } else {
            ""
        }
    );
    let t0 = Instant::now();
    eprintln!(
        "building {} dataset suite (seed {})...",
        if args.small { "small" } else { "full" },
        args.seed
    );
    let suite = if args.small {
        Suite::small(args.seed)
    } else {
        Suite::full(args.seed)
    };
    eprintln!("suite ready in {:.1}s", t0.elapsed().as_secs_f64());

    let mut commands = args.commands.clone();
    if commands.iter().any(|c| c == "all") {
        commands = [
            "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "volumes", "overlap",
            "algos",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for cmd in &commands {
        let t = Instant::now();
        match cmd.as_str() {
            "table2" => {
                let ps: Vec<usize> = if args.small {
                    vec![4, 8, 16, 32]
                } else {
                    vec![16, 32, 64, 128, 256]
                };
                let (table, _) = experiments::table2(&suite.amazon, &ps, args.seed);
                emit(
                    "table2",
                    "Table 2: per-SpMM communication under the edgecut-only partitioner (amazon-scaled)",
                    &table,
                    &args.out,
                );
            }
            "table3" => {
                let table = experiments::table3(&suite);
                emit(
                    "table3",
                    "Table 3: dataset properties (scaled analogues)",
                    &table,
                    &args.out,
                );
            }
            "fig3" => {
                let (table, _) = experiments::fig3(&suite, args.seed);
                emit("fig3", "Figure 3: 1D epoch time vs GPUs", &table, &args.out);
            }
            "fig4" => {
                let (table, _) = experiments::fig4(&suite, args.seed);
                emit("fig4", "Figure 4: 1D timing breakdown", &table, &args.out);
            }
            "fig5" => {
                let (table, _) = experiments::fig5(&suite, args.seed);
                emit("fig5", "Figure 5: papers-scaled at p=16", &table, &args.out);
            }
            "fig6" => {
                let (table, _) = experiments::fig6(&suite, args.seed);
                emit("fig6", "Figure 6: SA+METIS vs SA+GVB", &table, &args.out);
            }
            "fig7" => {
                let (table, _) = experiments::fig7(&suite, args.seed);
                emit(
                    "fig7",
                    "Figure 7: 1.5D epoch time vs GPUs",
                    &table,
                    &args.out,
                );
            }
            "volumes" => {
                let (table, _) = experiments::volumes(&suite, args.seed);
                emit(
                    "volumes",
                    "Communication volume view: bottleneck-rank received MB per epoch",
                    &table,
                    &args.out,
                );
            }
            "overlap" => {
                let (table, _) = experiments::overlap(&suite, args.seed);
                emit(
                    "overlap",
                    "Overlap ablation: measured chunked-pipeline overlap vs blocking schedules",
                    &table,
                    &args.out,
                );
            }
            "algos" => {
                let p = if args.small { 8 } else { 16 };
                let (table, _) = experiments::algos(&suite, p, args.seed);
                emit(
                    "algos",
                    "Extension: per-SpMM bottleneck exchange volume across 1D / 1.5D / 2D layouts",
                    &table,
                    &args.out,
                );
            }
            "sweep" => {
                let (table, cells) = experiments::sweep(&suite, args.small, args.seed);
                emit(
                    "sweep",
                    "Conformance sweep: executed training vs serial reference and analytic model \
                     across 1D / 1.5D / 2D / 3D × oblivious / SA / SA+GVB",
                    &table,
                    &args.out,
                );
                let bad: Vec<_> = cells.iter().filter(|c| !c.conforms()).collect();
                if !bad.is_empty() {
                    for c in &bad {
                        eprintln!(
                            "NONCONFORMANT: {} {} p={} (weight drift {:.3e}, volume match {})",
                            c.algo, c.scheme, c.p, c.weight_drift, c.volume_match
                        );
                    }
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown command {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[{cmd} done in {:.1}s]", t.elapsed().as_secs_f64());
    }

    if args.trace {
        let t = Instant::now();
        let p = if args.small { 4 } else { 8 };
        let epochs = 3;
        eprintln!("running traced 1D sparsity-aware training (reddit analogue, p={p}, {epochs} epochs)...");
        let ds = &suite.reddit;
        let part = partition_graph(
            &ds.adj,
            p,
            &PartitionConfig::new(Method::VolumeBalanced).with_seed(args.seed),
        );
        let ds = ds.permute(&part.to_permutation());
        let bounds = part.block_bounds();
        let mut cfg = DistConfig::new(
            Algo::OneD { aware: true },
            GcnConfig::paper_default(ds.f(), ds.num_classes),
            epochs,
            CostModel::perlmutter_like().with_threads(spmat::pool::current_threads()),
        );
        cfg.trace = true;
        let out = match try_train_distributed(&ds, &bounds, &cfg) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("traced run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = out.trace.as_ref().expect("tracing was enabled");
        print!("\n{}", traceio::render_report(trace));
        let prefix = args
            .trace_prefix
            .clone()
            .unwrap_or_else(|| traceio::default_prefix(&format!("repro_reddit_1d_p{p}")));
        match traceio::write_trace(&prefix, args.trace_format, trace) {
            Ok(paths) => {
                for p in paths {
                    println!("[trace written to {}]", p.display());
                }
            }
            Err(e) => eprintln!("warning: could not write trace: {e}"),
        }
        let metrics_path = args
            .metrics_out
            .clone()
            .unwrap_or_else(|| prefix.with_extension("metrics.json"));
        match traceio::write_metrics(&metrics_path, &out.stats, Some(trace)) {
            Ok(()) => println!("[metrics written to {}]", metrics_path.display()),
            Err(e) => eprintln!("warning: could not write metrics: {e}"),
        }
        eprintln!("[trace done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(argv: &[&str]) -> Result<super::Args, String> {
        parse_args_from(argv.iter().map(|s| s.to_string()))
    }

    /// The launcher-flag rejection must name *every* offending flag, not
    /// just the first one encountered (regression: the old match arm
    /// returned on first sight, so `--hostfile h --net-chaos c` only
    /// reported `--hostfile`).
    #[test]
    fn launcher_flag_error_names_all_offenders() {
        let err = parse(&[
            "--hostfile",
            "hosts.txt",
            "--net-chaos",
            "drop=0.1",
            "volumes",
        ])
        .unwrap_err();
        assert!(err.contains("--hostfile"), "missing --hostfile: {err}");
        assert!(err.contains("--net-chaos"), "missing --net-chaos: {err}");
        assert!(err.contains("train --backend proc"), "no remedy: {err}");

        // A single offender still reads grammatically.
        let err = parse(&["--backend", "proc", "table2"]).unwrap_err();
        assert!(err.contains("--backend belongs"), "singular form: {err}");
        assert!(!err.contains("--ranks"));
    }

    #[test]
    fn sweep_command_is_accepted() {
        let args = parse(&["--small", "sweep"]).unwrap();
        assert_eq!(args.commands, ["sweep"]);
        assert!(args.small);
    }
}
