//! Shared `--trace` plumbing for the CLI binaries: format selection and
//! the writer that turns a collected [`WorldTrace`] into artifacts under
//! `results/traces/`.

use std::path::{Path, PathBuf};

use gnn_comm::WorldStats;
use gnn_trace::{
    chrome_trace_string, chrome_trace_string_wall, jsonl_string, text_timeline, write_to_file,
    BottleneckReport, WorldTrace,
};

/// Which exporter(s) `--trace` writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// JSONL event log only (`<prefix>.jsonl`).
    Jsonl,
    /// Chrome `trace_event` JSON only (`<prefix>.chrome.json`).
    Chrome,
    /// Both artifacts.
    #[default]
    Both,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" => Ok(Self::Jsonl),
            "chrome" => Ok(Self::Chrome),
            "both" => Ok(Self::Both),
            other => Err(format!(
                "unknown trace format {other} (want jsonl|chrome|both)"
            )),
        }
    }

    fn jsonl(self) -> bool {
        matches!(self, Self::Jsonl | Self::Both)
    }

    fn chrome(self) -> bool {
        matches!(self, Self::Chrome | Self::Both)
    }
}

/// Default artifact prefix for a run label: `results/traces/<label>`.
pub fn default_prefix(label: &str) -> PathBuf {
    PathBuf::from("results/traces").join(label)
}

/// Writes the selected trace artifacts for `prefix`
/// (`<prefix>.jsonl` and/or `<prefix>.chrome.json`) and returns the
/// paths written. Dual-clock traces (process backend) get the
/// wall-axis Chrome exporter so Perfetto shows measured time; the
/// modeled axis rides along in each slice's args.
pub fn write_trace(
    prefix: &Path,
    format: TraceFormat,
    trace: &WorldTrace,
) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    if format.jsonl() {
        let path = prefix.with_extension("jsonl");
        write_to_file(&path, &jsonl_string(trace))?;
        written.push(path);
    }
    if format.chrome() {
        let path = prefix.with_extension("chrome.json");
        let chrome = if trace.has_wall() {
            chrome_trace_string_wall(trace)
        } else {
            chrome_trace_string(trace)
        };
        write_to_file(&path, &chrome)?;
        written.push(path);
    }
    Ok(written)
}

/// Renders the human-facing trace digest: the per-epoch timeline
/// followed by the bottleneck-attribution report.
pub fn render_report(trace: &WorldTrace) -> String {
    let mut out = text_timeline(trace);
    out.push_str(&BottleneckReport::from_trace(trace).render());
    out
}

/// Writes the unified metrics registry (stats counters plus, when a
/// trace was collected, its message-size distribution) as JSON.
pub fn write_metrics(
    path: &Path,
    stats: &WorldStats,
    trace: Option<&WorldTrace>,
) -> std::io::Result<()> {
    let mut reg = stats.to_metrics();
    if let Some(tr) = trace {
        reg.hist("trace.message_bytes", tr.msg_sizes.clone());
        reg.counter("trace.events", tr.len() as u64);
    }
    write_to_file(path, &reg.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_round_trips() {
        assert_eq!(TraceFormat::parse("jsonl").unwrap(), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::parse("chrome").unwrap(), TraceFormat::Chrome);
        assert_eq!(TraceFormat::parse("both").unwrap(), TraceFormat::Both);
        assert!(TraceFormat::parse("xml").is_err());
    }

    #[test]
    fn default_prefix_lands_under_results_traces() {
        let p = default_prefix("train_protein_p4");
        assert!(p.starts_with("results/traces"));
    }
}
