//! The per-rank recorder and the collected world trace.
//!
//! Each SPMD rank owns exactly one [`RankTracer`] — recording is a
//! plain `Vec` push of a `Copy` [`Event`] behind a single branch, with
//! no locks and no cross-thread traffic (the "global sink" is the
//! post-run collection into [`WorldTrace`], where per-rank buffers are
//! merged deterministically). The event buffer and the message-size
//! histogram are preallocated; steady-state recording performs no heap
//! allocation beyond the buffer's amortized doubling.
//!
//! Time is the rank's **modeled clock**: every recorded op advances a
//! per-rank cursor by its modeled duration, so events form a timeline
//! in the same currency the paper's epoch times are quoted in
//! (deterministic, unlike wall time).
//!
//! A tracer built with [`RankTracer::with_wall_anchor`] is *dual-clock*:
//! alongside the modeled cursor it keeps a wall-clock cursor measured
//! against a monotonic [`Instant`] anchor, stamping every event with
//! `t_wall`/`wall_dur` (seconds since the anchor). The modeled axis is
//! untouched — golden modeled-time traces from [`RankTracer::new`]
//! recorders stay byte-identical because absent wall fields (the NaN
//! sentinel) are never exported. Wall durations attribute *elapsed*
//! time: an op's `wall_dur` spans from the previous event's wall end to
//! now, so gaps (blocking waits, scheduling) are charged to the op that
//! ends them and per-rank wall timelines are gap-free and monotonic.

use std::time::Instant;

use crate::event::{Event, EventKind, SpanKind, NO_PARENT, NO_PEER};
use crate::metrics::Histogram;
use crate::phase::{Phase, PHASES};

/// Initial event-buffer capacity: enough for several epochs of a small
/// run without growth; large runs double amortized like any `Vec`.
const INITIAL_EVENTS: usize = 1024;

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    seq: u32,
    kind: SpanKind,
    phase: Phase,
    start: f64,
    epoch: i64,
    /// Wall-clock cursor at span open (NaN when modeled-only).
    wall_start: f64,
    // Direct-child accumulators (rolled up transitively at tree build).
    bytes_sent: u64,
    bytes_recv: u64,
    flops: u64,
}

/// Per-rank span/event recorder.
#[derive(Clone, Debug)]
pub struct RankTracer {
    rank: u32,
    epoch: i64,
    seq: u32,
    clock: f64,
    /// Monotonic reference for the wall-clock axis; `None` keeps the
    /// tracer modeled-only (the legacy golden-trace schema).
    wall_anchor: Option<Instant>,
    /// Wall end of the last recorded event, seconds since the anchor.
    wall_cursor: f64,
    stack: Vec<OpenSpan>,
    events: Vec<Event>,
    msg_sizes: Histogram,
}

impl RankTracer {
    /// A fresh modeled-only recorder for `rank`.
    pub fn new(rank: usize) -> Self {
        Self {
            rank: rank as u32,
            epoch: -1,
            seq: 0,
            clock: 0.0,
            wall_anchor: None,
            wall_cursor: 0.0,
            stack: Vec::with_capacity(8),
            events: Vec::with_capacity(INITIAL_EVENTS),
            msg_sizes: Histogram::pow2_bytes(),
        }
    }

    /// A dual-clock recorder: every event additionally carries
    /// `t_wall`/`wall_dur` measured against `anchor`. Pass the same
    /// anchor the transport layer timestamps against (e.g. the process
    /// epoch captured at connect time) so trace wall times and
    /// transport clock-offset estimates share one axis.
    pub fn with_wall_anchor(rank: usize, anchor: Instant) -> Self {
        let mut t = Self::new(rank);
        t.wall_cursor = anchor.elapsed().as_secs_f64();
        t.wall_anchor = Some(anchor);
        t
    }

    /// True when this recorder stamps the wall-clock axis.
    pub fn dual_clock(&self) -> bool {
        self.wall_anchor.is_some()
    }

    /// The rank's modeled-time cursor (seconds since rank start).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Current wall reading (seconds since the anchor), or NaN when
    /// modeled-only. Monotone non-decreasing across calls.
    fn wall_now(&self) -> f64 {
        match self.wall_anchor {
            Some(anchor) => anchor.elapsed().as_secs_f64().max(self.wall_cursor),
            None => f64::NAN,
        }
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Declares the current epoch (stamped on subsequent events).
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch as i64;
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn parent(&self) -> u32 {
        self.stack.last().map_or(NO_PARENT, |s| s.seq)
    }

    /// Records one completed operation and advances the modeled clock
    /// by `dur`.
    #[allow(clippy::too_many_arguments)]
    pub fn op(
        &mut self,
        kind: EventKind,
        phase: Phase,
        peer: Option<usize>,
        bytes_sent: u64,
        bytes_recv: u64,
        flops: u64,
        dur: f64,
    ) {
        debug_assert!(!kind.is_span(), "use begin_span/end_span for spans");
        let seq = self.next_seq();
        // The op ends now; it started when the previous event ended, so
        // blocking gaps are charged to the op that waited through them.
        let (t_wall, wall_dur) = if self.wall_anchor.is_some() {
            let now = self.wall_now();
            let pair = (self.wall_cursor, now - self.wall_cursor);
            self.wall_cursor = now;
            pair
        } else {
            (f64::NAN, f64::NAN)
        };
        let ev = Event {
            seq,
            parent: self.parent(),
            rank: self.rank,
            epoch: self.epoch,
            kind,
            phase,
            peer: peer.map_or(NO_PEER, |p| p as i32),
            bytes_sent,
            bytes_recv,
            flops,
            t_start: self.clock,
            dur,
            t_wall,
            wall_dur,
        };
        self.clock += dur;
        if let Some(top) = self.stack.last_mut() {
            top.bytes_sent += bytes_sent;
            top.bytes_recv += bytes_recv;
            top.flops += flops;
        }
        self.events.push(ev);
    }

    /// Records an operation that ran *concurrently* with the timeline:
    /// the event carries its duration but the modeled clock does not
    /// advance (the time was hidden behind compute). Used for
    /// [`EventKind::OverlapHidden`] and the dur-0 natural-phase records
    /// of asynchronously-posted ops.
    #[allow(clippy::too_many_arguments)]
    pub fn op_async(
        &mut self,
        kind: EventKind,
        phase: Phase,
        peer: Option<usize>,
        bytes_sent: u64,
        bytes_recv: u64,
        flops: u64,
        dur: f64,
    ) {
        debug_assert!(!kind.is_span(), "use begin_span/end_span for spans");
        let seq = self.next_seq();
        // Concurrent with the timeline: stamped at the cursor with a
        // zero wall duration (the hidden time is bookkeeping, not a
        // slice of this rank's wall timeline).
        let (t_wall, wall_dur) = if self.wall_anchor.is_some() {
            (self.wall_cursor, 0.0)
        } else {
            (f64::NAN, f64::NAN)
        };
        let ev = Event {
            seq,
            parent: self.parent(),
            rank: self.rank,
            epoch: self.epoch,
            kind,
            phase,
            peer: peer.map_or(NO_PEER, |p| p as i32),
            bytes_sent,
            bytes_recv,
            flops,
            t_start: self.clock,
            dur,
            t_wall,
            wall_dur,
        };
        if let Some(top) = self.stack.last_mut() {
            top.bytes_sent += bytes_sent;
            top.bytes_recv += bytes_recv;
            top.flops += flops;
        }
        self.events.push(ev);
    }

    /// Records a network-chaos fault activation (sever / cut / refused
    /// dial) on the wall-clock axis. Chaos faults fire on the
    /// transport's background threads and are exported when the rank
    /// body finishes, so the event is stamped at the fault's **own**
    /// recorded wall offset — which may precede the stamps of events
    /// recorded earlier in `seq` order. Zero-duration on both axes: a
    /// fault activation is a point marker, and the time it cost the run
    /// shows up in the ops that waited through it. No-op on a
    /// modeled-only recorder (chaos has no modeled-axis meaning).
    pub fn chaos_event(&mut self, kind: EventKind, peer: usize, wall_s: f64) {
        debug_assert!(
            matches!(
                kind,
                EventKind::ChaosSever | EventKind::ChaosCut | EventKind::ChaosRefused
            ),
            "chaos_event records chaos kinds only"
        );
        if self.wall_anchor.is_none() {
            return;
        }
        let seq = self.next_seq();
        self.events.push(Event {
            seq,
            parent: NO_PARENT,
            rank: self.rank,
            epoch: self.epoch,
            kind,
            phase: Phase::Retransmit,
            peer: peer as i32,
            bytes_sent: 0,
            bytes_recv: 0,
            flops: 0,
            t_start: self.clock,
            dur: 0.0,
            t_wall: wall_s,
            wall_dur: 0.0,
        });
    }

    /// Records one wire message's size into the message-size histogram
    /// (per transmission, including retransmits — finer grained than op
    /// events, which aggregate e.g. a whole all-to-allv).
    pub fn message(&mut self, bytes: u64) {
        self.msg_sizes.record(bytes);
    }

    /// Opens a structural span. Its `seq` is reserved now, so children
    /// sort after it; the event is emitted by [`RankTracer::end_span`].
    pub fn begin_span(&mut self, kind: SpanKind, phase: Phase) {
        let seq = self.next_seq();
        // A span's wall interval covers its children: it opens where the
        // previous event ended, not at an arbitrary "now".
        let wall_start = if self.wall_anchor.is_some() {
            self.wall_cursor
        } else {
            f64::NAN
        };
        self.stack.push(OpenSpan {
            seq,
            kind,
            phase,
            start: self.clock,
            epoch: self.epoch,
            wall_start,
            bytes_sent: 0,
            bytes_recv: 0,
            flops: 0,
        });
    }

    /// Closes the innermost open span, emitting its event. The span's
    /// byte/flop fields are its *direct children's* sums; use
    /// [`WorldTrace::span_tree`] for transitive rollups.
    ///
    /// # Panics
    /// Panics if no span is open.
    pub fn end_span(&mut self) {
        let span = self.stack.pop().expect("end_span without begin_span");
        let (t_wall, wall_dur) = if self.wall_anchor.is_some() {
            let now = self.wall_now();
            self.wall_cursor = now;
            (span.wall_start, now - span.wall_start)
        } else {
            (f64::NAN, f64::NAN)
        };
        let ev = Event {
            seq: span.seq,
            parent: self.parent(),
            rank: self.rank,
            // A span belongs to the epoch it started in (set_epoch may
            // have advanced inside an outer span).
            epoch: span.epoch,
            kind: EventKind::Span(span.kind),
            phase: span.phase,
            peer: NO_PEER,
            bytes_sent: span.bytes_sent,
            bytes_recv: span.bytes_recv,
            flops: span.flops,
            t_start: span.start,
            dur: self.clock - span.start,
            t_wall,
            wall_dur,
        };
        // Propagate direct sums one level up so every ancestor's direct
        // total eventually includes nested op traffic exactly once.
        if let Some(top) = self.stack.last_mut() {
            top.bytes_sent += span.bytes_sent;
            top.bytes_recv += span.bytes_recv;
            top.flops += span.flops;
        }
        self.events.push(ev);
    }

    /// Open-span depth (0 at top level).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Closes every open span (innermost first). Used when an epoch is
    /// abandoned mid-flight — a failover abort unwinds through spans that
    /// will never reach their `end_span`, and the truncated spans are
    /// still worth keeping in the trace.
    pub fn close_open_spans(&mut self) {
        while !self.stack.is_empty() {
            self.end_span();
        }
    }

    /// Consumes the tracer, returning its events (unsorted emission
    /// order; sort by `seq` for pre-order) and message-size histogram.
    ///
    /// # Panics
    /// Panics if spans are still open (unbalanced instrumentation).
    pub fn finish(self) -> (Vec<Event>, Histogram) {
        assert!(
            self.stack.is_empty(),
            "rank {} finished with {} unclosed span(s)",
            self.rank,
            self.stack.len()
        );
        (self.events, self.msg_sizes)
    }
}

/// Per-(rank, epoch, phase) aggregate computed from op events.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseAgg {
    /// Op events aggregated.
    pub ops: u64,
    /// Logical bytes sent (retransmit wire overhead excluded — it goes
    /// to [`PhaseAgg::retransmit_bytes`] so logical volumes stay
    /// comparable with `RankStats`).
    pub bytes_sent: u64,
    /// Logical bytes received.
    pub bytes_recv: u64,
    /// Extra wire bytes from fault-injected retransmissions.
    pub retransmit_bytes: u64,
    /// Flops executed.
    pub flops: u64,
    /// Modeled seconds (retransmission overhead included).
    pub seconds: f64,
    /// Communication seconds hidden behind compute by pipelined
    /// overlap ([`EventKind::OverlapHidden`] events). Never part of
    /// the timeline ([`PhaseAgg::seconds`]) — the timeline only carries
    /// the *exposed* remainder.
    pub hidden_seconds: f64,
    /// Measured wall-clock seconds (dual-clock traces only; stays 0.0
    /// for modeled-only traces).
    pub wall_seconds: f64,
}

impl PhaseAgg {
    fn absorb(&mut self, e: &Event) {
        if e.wall_dur.is_finite() {
            self.wall_seconds += e.wall_dur;
        }
        // Hidden overlap ran concurrently with the timeline: its
        // duration is bookkeeping (how much comm was hidden), not
        // clock time, so it gets its own accumulator — the same
        // separation retransmit wire bytes get from logical volume.
        if e.kind == EventKind::OverlapHidden {
            self.hidden_seconds += e.dur;
            return;
        }
        self.ops += 1;
        if e.kind == EventKind::Retransmit {
            self.retransmit_bytes += e.bytes_sent;
        } else {
            self.bytes_sent += e.bytes_sent;
            self.bytes_recv += e.bytes_recv;
        }
        self.flops += e.flops;
        self.seconds += e.dur;
    }
}

/// One node of a reconstructed span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span's own event.
    pub event: Event,
    /// The span's label.
    pub kind: SpanKind,
    /// Nested spans, in start order.
    pub children: Vec<SpanNode>,
    /// Transitive byte total (own ops + all descendants) sent.
    pub total_bytes_sent: u64,
    /// Transitive byte total received.
    pub total_bytes_recv: u64,
}

/// A complete collected trace: every rank's events plus the merged
/// message-size histogram. This is the "global sink" — built once,
/// after the world joins, from per-rank buffers (deterministic: events
/// are ordered by `(rank, seq)`).
#[derive(Clone, Debug)]
pub struct WorldTrace {
    /// Per-rank events, sorted by `seq` (pre-order over spans).
    pub per_rank: Vec<Vec<Event>>,
    /// Merged message-size distribution (per wire transmission).
    pub msg_sizes: Histogram,
}

impl WorldTrace {
    /// Assembles a world trace from finished per-rank tracers.
    pub fn collect(tracers: Vec<RankTracer>) -> Self {
        let mut per_rank = Vec::with_capacity(tracers.len());
        let mut msg_sizes = Histogram::pow2_bytes();
        for t in tracers {
            let (mut events, hist) = t.finish();
            events.sort_by_key(|e| e.seq);
            msg_sizes.merge(&hist);
            per_rank.push(events);
        }
        Self {
            per_rank,
            msg_sizes,
        }
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.per_rank.len()
    }

    /// Total events across ranks.
    pub fn len(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.per_rank.iter().all(Vec::is_empty)
    }

    /// True when any event carries the wall-clock axis (dual-clock
    /// schema). Per-recorder stamping is all-or-nothing, so a mixed
    /// trace only arises from merging dual-clock and legacy files.
    pub fn has_wall(&self) -> bool {
        self.per_rank.iter().flatten().any(Event::has_wall)
    }

    /// Highest epoch stamped on any event (−1 when none declared).
    pub fn max_epoch(&self) -> i64 {
        self.per_rank
            .iter()
            .flatten()
            .map(|e| e.epoch)
            .max()
            .unwrap_or(-1)
    }

    /// Per-phase aggregates of one rank's **op** events (spans excluded
    /// so nothing double-counts), optionally filtered to one epoch.
    pub fn phase_aggregates(&self, rank: usize, epoch: Option<i64>) -> [PhaseAgg; PHASES.len()] {
        let mut out = [PhaseAgg::default(); PHASES.len()];
        for e in &self.per_rank[rank] {
            if e.kind.is_span() {
                continue;
            }
            if let Some(wanted) = epoch {
                if e.epoch != wanted {
                    continue;
                }
            }
            out[e.phase.index()].absorb(e);
        }
        out
    }

    /// Sum of logical bytes sent across all ranks in one phase
    /// (comparable with `WorldStats::phase_bytes_total`). Retransmit
    /// events are excluded: their bytes are wire overhead, not logical
    /// volume.
    pub fn phase_bytes_total(&self, phase: Phase) -> u64 {
        (0..self.p())
            .map(|r| {
                self.per_rank[r]
                    .iter()
                    .filter(|e| {
                        !e.kind.is_span() && e.kind != EventKind::Retransmit && e.phase == phase
                    })
                    .map(|e| e.bytes_sent)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Reconstructs one rank's span tree (roots in start order). Span
    /// events already carry transitive byte/flop rollups (the recorder
    /// propagates a closing span's sums to its parent), so node totals
    /// come straight off the event.
    pub fn span_tree(&self, rank: usize) -> Vec<SpanNode> {
        fn attach(roots: &mut Vec<SpanNode>, path: &mut [SpanNode], mut done: SpanNode) {
            done.children.sort_by(|a, b| {
                a.event
                    .t_start
                    .partial_cmp(&b.event.t_start)
                    .unwrap()
                    .then(a.event.seq.cmp(&b.event.seq))
            });
            match path.last_mut() {
                Some(parent) => parent.children.push(done),
                None => roots.push(done),
            }
        }

        let mut roots = Vec::new();
        let mut path: Vec<SpanNode> = Vec::new();
        // Events are in seq order = pre-order; rebuild the open path by
        // parent pointers, closing entries as we move past them.
        for e in &self.per_rank[rank] {
            if let EventKind::Span(kind) = e.kind {
                while let Some(top) = path.last() {
                    if top.event.seq == e.parent {
                        break;
                    }
                    let done = path.pop().unwrap();
                    attach(&mut roots, &mut path, done);
                }
                path.push(SpanNode {
                    event: *e,
                    kind,
                    children: Vec::new(),
                    total_bytes_sent: e.bytes_sent,
                    total_bytes_recv: e.bytes_recv,
                });
            }
        }
        while let Some(done) = path.pop() {
            attach(&mut roots, &mut path, done);
        }
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(t: &mut RankTracer, phase: Phase, sent: u64, dur: f64) {
        t.op(EventKind::Send, phase, Some(1), sent, 0, 0, dur);
    }

    #[test]
    fn clock_advances_by_modeled_duration() {
        let mut t = RankTracer::new(0);
        op(&mut t, Phase::P2p, 8, 1.5);
        op(&mut t, Phase::P2p, 8, 0.5);
        assert_eq!(t.clock(), 2.0);
        let (events, _) = t.finish();
        assert_eq!(events[0].t_start, 0.0);
        assert_eq!(events[1].t_start, 1.5);
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let mut t = RankTracer::new(0);
        t.set_epoch(0);
        t.begin_span(SpanKind::Epoch, Phase::Other);
        t.begin_span(SpanKind::Forward, Phase::Other);
        op(&mut t, Phase::AllToAll, 100, 1.0);
        t.end_span();
        t.begin_span(SpanKind::Backward, Phase::Other);
        op(&mut t, Phase::AllReduce, 40, 2.0);
        t.end_span();
        t.end_span();
        let tr = WorldTrace::collect(vec![t]);
        let roots = tr.span_tree(0);
        assert_eq!(roots.len(), 1);
        let epoch = &roots[0];
        assert_eq!(epoch.kind, SpanKind::Epoch);
        assert_eq!(epoch.children.len(), 2);
        assert_eq!(epoch.children[0].kind, SpanKind::Forward);
        assert_eq!(epoch.children[1].kind, SpanKind::Backward);
        // Transitive rollup: epoch carries both children's bytes.
        assert_eq!(epoch.total_bytes_sent, 140);
        assert_eq!(epoch.event.dur, 3.0);
        assert_eq!(epoch.children[1].event.t_start, 1.0);
    }

    #[test]
    fn seq_is_preorder() {
        let mut t = RankTracer::new(0);
        t.begin_span(SpanKind::Epoch, Phase::Other);
        op(&mut t, Phase::P2p, 1, 0.0);
        t.end_span();
        let tr = WorldTrace::collect(vec![t]);
        let evs = &tr.per_rank[0];
        // Span (seq 0) sorts before its child op (seq 1).
        assert!(matches!(evs[0].kind, EventKind::Span(SpanKind::Epoch)));
        assert_eq!(evs[1].kind, EventKind::Send);
        assert_eq!(evs[1].parent, evs[0].seq);
    }

    #[test]
    fn phase_aggregates_exclude_spans_and_filter_epochs() {
        let mut t = RankTracer::new(0);
        t.set_epoch(0);
        t.begin_span(SpanKind::Epoch, Phase::Other);
        op(&mut t, Phase::P2p, 10, 1.0);
        t.end_span();
        t.set_epoch(1);
        t.begin_span(SpanKind::Epoch, Phase::Other);
        op(&mut t, Phase::P2p, 30, 1.0);
        t.end_span();
        let tr = WorldTrace::collect(vec![t]);
        let all = tr.phase_aggregates(0, None);
        assert_eq!(all[Phase::P2p.index()].bytes_sent, 40);
        let e1 = tr.phase_aggregates(0, Some(1));
        assert_eq!(e1[Phase::P2p.index()].bytes_sent, 30);
        assert_eq!(e1[Phase::P2p.index()].ops, 1);
        assert_eq!(tr.phase_bytes_total(Phase::P2p), 40);
        assert_eq!(tr.max_epoch(), 1);
    }

    #[test]
    fn retransmits_not_counted_as_logical_volume() {
        let mut t = RankTracer::new(0);
        t.op(EventKind::Send, Phase::P2p, Some(1), 8, 0, 0, 1.0);
        t.op(EventKind::Retransmit, Phase::P2p, Some(1), 8, 0, 0, 1.0);
        let tr = WorldTrace::collect(vec![t]);
        assert_eq!(tr.phase_bytes_total(Phase::P2p), 8);
        // But the aggregate clock includes the retransmission's time,
        // and the wire overhead is visible in its own field.
        let agg = tr.phase_aggregates(0, None);
        assert_eq!(agg[Phase::P2p.index()].seconds, 2.0);
        assert_eq!(agg[Phase::P2p.index()].bytes_sent, 8);
        assert_eq!(agg[Phase::P2p.index()].retransmit_bytes, 8);
    }

    #[test]
    fn hidden_overlap_is_bookkeeping_not_timeline() {
        let mut t = RankTracer::new(0);
        // Async-posted op: bytes recorded in the natural phase, dur 0.
        t.op_async(EventKind::Send, Phase::P2p, Some(1), 64, 0, 0, 0.0);
        // Stage boundary: 1.5s of comm, 1.0s hidden behind compute.
        t.op(EventKind::OverlapWait, Phase::Overlap, None, 0, 0, 0, 0.5);
        t.op_async(EventKind::OverlapHidden, Phase::Overlap, None, 0, 0, 0, 1.0);
        assert_eq!(t.clock(), 0.5, "only exposed time advances the clock");
        let tr = WorldTrace::collect(vec![t]);
        let agg = tr.phase_aggregates(0, None);
        let ov = agg[Phase::Overlap.index()];
        assert_eq!(ov.ops, 1, "hidden events are not ops");
        assert_eq!(ov.seconds, 0.5);
        assert_eq!(ov.hidden_seconds, 1.0);
        assert_eq!(agg[Phase::P2p.index()].bytes_sent, 64);
        assert_eq!(agg[Phase::P2p.index()].seconds, 0.0);
    }

    #[test]
    #[should_panic(expected = "unclosed span")]
    fn unbalanced_spans_are_rejected() {
        let mut t = RankTracer::new(3);
        t.begin_span(SpanKind::Epoch, Phase::Other);
        t.finish();
    }

    #[test]
    fn modeled_only_recorder_carries_no_wall_axis() {
        let mut t = RankTracer::new(0);
        assert!(!t.dual_clock());
        t.begin_span(SpanKind::Epoch, Phase::Other);
        op(&mut t, Phase::P2p, 8, 1.0);
        t.end_span();
        let tr = WorldTrace::collect(vec![t]);
        assert!(!tr.has_wall());
        for e in tr.per_rank[0].iter() {
            assert!(e.t_wall.is_nan() && e.wall_dur.is_nan());
        }
        let agg = tr.phase_aggregates(0, None);
        assert_eq!(agg[Phase::P2p.index()].wall_seconds, 0.0);
    }

    #[test]
    fn dual_clock_walls_are_monotonic_and_span_covers_children() {
        let mut t = RankTracer::with_wall_anchor(0, Instant::now());
        assert!(t.dual_clock());
        t.begin_span(SpanKind::Epoch, Phase::Other);
        op(&mut t, Phase::P2p, 8, 1.0);
        op(&mut t, Phase::P2p, 8, 1.0);
        t.end_span();
        let tr = WorldTrace::collect(vec![t]);
        assert!(tr.has_wall());
        let evs = &tr.per_rank[0];
        let (span, a, b) = (&evs[0], &evs[1], &evs[2]);
        for e in [span, a, b] {
            assert!(e.has_wall());
            assert!(e.wall_dur >= 0.0);
        }
        // Per-rank wall timelines are gap-free: each op starts where
        // the previous ended (up to fp rounding).
        assert!((b.t_wall - a.wall_end()).abs() < 1e-12);
        // The span's interval covers its children.
        assert!(span.t_wall <= a.t_wall);
        assert!(span.wall_end() >= b.wall_end() - 1e-12);
        // And the modeled axis is what it always was.
        assert_eq!(a.t_start, 0.0);
        assert_eq!(b.t_start, 1.0);
        let agg = tr.phase_aggregates(0, None);
        assert!(agg[Phase::P2p.index()].wall_seconds >= 0.0);
    }

    #[test]
    fn message_histogram_merges_across_ranks() {
        let mut a = RankTracer::new(0);
        let mut b = RankTracer::new(1);
        a.message(100);
        b.message(1 << 20);
        let tr = WorldTrace::collect(vec![a, b]);
        assert_eq!(tr.msg_sizes.count(), 2);
        assert_eq!(tr.msg_sizes.max(), 1 << 20);
    }
}
