//! Bottleneck-rank attribution.
//!
//! The paper's epoch-time model is `T_epoch = max_rank(T_rank)`: the
//! slowest process sets the pace, and sparsity-aware communication or
//! GVB partitioning win by shrinking the *maximum* per-rank send
//! volume, not the average. [`BottleneckReport`] makes that argument
//! inspectable for a concrete run: for every epoch it ranks processes
//! by modeled time and send volume, names the critical-path rank, and
//! breaks its time down by phase.

use std::fmt::Write as _;

use crate::phase::{Phase, PHASES};
use crate::recorder::{PhaseAgg, WorldTrace};

/// One rank's aggregate over one epoch.
#[derive(Clone, Debug)]
pub struct RankEpoch {
    /// The rank.
    pub rank: usize,
    /// Per-phase aggregates (indexed by [`Phase::index`]).
    pub phases: [PhaseAgg; PHASES.len()],
    /// Total modeled seconds across phases.
    pub modeled_seconds: f64,
    /// Total measured wall-clock seconds across phases (0.0 for
    /// modeled-only traces).
    pub wall_seconds: f64,
    /// Total logical bytes sent across phases.
    pub bytes_sent: u64,
    /// Total logical bytes received across phases.
    pub bytes_recv: u64,
    /// Extra wire bytes from injected retransmissions.
    pub retransmit_bytes: u64,
}

impl RankEpoch {
    fn from_aggregates(rank: usize, phases: [PhaseAgg; PHASES.len()]) -> Self {
        let modeled_seconds = phases.iter().map(|a| a.seconds).sum();
        let wall_seconds = phases.iter().map(|a| a.wall_seconds).sum();
        let bytes_sent = phases.iter().map(|a| a.bytes_sent).sum();
        let bytes_recv = phases.iter().map(|a| a.bytes_recv).sum();
        let retransmit_bytes = phases.iter().map(|a| a.retransmit_bytes).sum();
        Self {
            rank,
            phases,
            modeled_seconds,
            wall_seconds,
            bytes_sent,
            bytes_recv,
            retransmit_bytes,
        }
    }

    /// Seconds spent outside `LocalCompute` (the communication share).
    pub fn comm_seconds(&self) -> f64 {
        self.modeled_seconds - self.phases[Phase::LocalCompute.index()].seconds
    }

    /// Measured wall seconds spent outside `LocalCompute` — the
    /// comm-exposed share of this rank's wall clock (dual-clock traces
    /// only).
    pub fn wall_comm_seconds(&self) -> f64 {
        self.wall_seconds - self.phases[Phase::LocalCompute.index()].wall_seconds
    }

    /// Communication seconds hidden behind compute by the overlap
    /// pipeline (off the modeled clock; recorded by `overlap_hidden`
    /// events).
    pub fn hidden_comm_seconds(&self) -> f64 {
        self.phases.iter().map(|a| a.hidden_seconds).sum()
    }

    /// Communication seconds the overlap pipeline could *not* hide —
    /// the `Phase::Overlap` wait time that stays on the clock.
    pub fn exposed_comm_seconds(&self) -> f64 {
        self.phases[Phase::Overlap.index()].seconds
    }
}

/// Attribution for one epoch: every rank's totals plus the critical
/// ranks.
#[derive(Clone, Debug)]
pub struct EpochAttribution {
    /// The epoch.
    pub epoch: i64,
    /// One entry per rank.
    pub ranks: Vec<RankEpoch>,
    /// Rank with the largest modeled time — the critical-path process
    /// whose clock *is* the epoch time.
    pub bottleneck_rank: usize,
    /// Rank with the largest logical send volume (the quantity GVB
    /// minimizes; usually, but not necessarily, the bottleneck).
    pub max_send_rank: usize,
    /// Per-phase critical rank: for each phase, the rank that spent the
    /// most modeled time in it.
    pub phase_critical_rank: [usize; PHASES.len()],
    /// Modeled epoch time (= the bottleneck rank's modeled seconds).
    pub epoch_seconds: f64,
    /// Rank with the largest measured wall time (dual-clock traces;
    /// equals `bottleneck_rank` when the α–β model predicts well).
    pub wall_bottleneck_rank: usize,
    /// Measured wall epoch time (= the wall-bottleneck rank's wall
    /// seconds; 0.0 for modeled-only traces).
    pub wall_epoch_seconds: f64,
}

impl EpochAttribution {
    fn build(trace: &WorldTrace, epoch: i64) -> Self {
        let ranks: Vec<RankEpoch> = (0..trace.p())
            .map(|r| RankEpoch::from_aggregates(r, trace.phase_aggregates(r, Some(epoch))))
            .collect();
        let bottleneck_rank = argmax_f64(ranks.iter().map(|r| r.modeled_seconds));
        let max_send_rank = argmax_u64(ranks.iter().map(|r| r.bytes_sent));
        let mut phase_critical_rank = [0usize; PHASES.len()];
        for (i, slot) in phase_critical_rank.iter_mut().enumerate() {
            *slot = argmax_f64(ranks.iter().map(|r| r.phases[i].seconds));
        }
        let epoch_seconds = ranks[bottleneck_rank].modeled_seconds;
        let wall_bottleneck_rank = argmax_f64(ranks.iter().map(|r| r.wall_seconds));
        let wall_epoch_seconds = ranks[wall_bottleneck_rank].wall_seconds;
        Self {
            epoch,
            ranks,
            bottleneck_rank,
            max_send_rank,
            phase_critical_rank,
            epoch_seconds,
            wall_bottleneck_rank,
            wall_epoch_seconds,
        }
    }

    /// Send imbalance: max send volume over mean send volume (1.0 is
    /// perfectly balanced; the paper's skew metric).
    pub fn send_imbalance(&self) -> f64 {
        let total: u64 = self.ranks.iter().map(|r| r.bytes_sent).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.ranks.len() as f64;
        self.ranks[self.max_send_rank].bytes_sent as f64 / mean
    }
}

/// The full run attribution: one [`EpochAttribution`] per epoch.
#[derive(Clone, Debug)]
pub struct BottleneckReport {
    /// Per-epoch attributions, in epoch order.
    pub epochs: Vec<EpochAttribution>,
    /// World size.
    pub p: usize,
}

impl BottleneckReport {
    /// Builds the report from a collected trace. Events recorded
    /// before the first `set_epoch` (epoch −1) are ignored.
    pub fn from_trace(trace: &WorldTrace) -> Self {
        let max_epoch = trace.max_epoch();
        let epochs = (0..=max_epoch.max(-1))
            .filter(|_| max_epoch >= 0)
            .map(|e| EpochAttribution::build(trace, e))
            .collect();
        Self {
            epochs,
            p: trace.p(),
        }
    }

    /// Modeled end-to-end time: sum over epochs of the bottleneck
    /// rank's time.
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.epoch_seconds).sum()
    }

    /// The rank that is the bottleneck most often (ties → lowest rank).
    pub fn dominant_bottleneck(&self) -> Option<usize> {
        if self.epochs.is_empty() {
            return None;
        }
        let mut counts = vec![0usize; self.p];
        for e in &self.epochs {
            counts[e.bottleneck_rank] += 1;
        }
        Some(argmax_u64(counts.iter().map(|&c| c as u64)))
    }

    /// Renders the human-readable attribution report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bottleneck attribution: {} rank(s), {} epoch(s), modeled total {:.3} ms",
            self.p,
            self.epochs.len(),
            self.total_seconds() * 1e3
        );
        if let Some(dom) = self.dominant_bottleneck() {
            let n = self
                .epochs
                .iter()
                .filter(|e| e.bottleneck_rank == dom)
                .count();
            let _ = writeln!(
                out,
                "dominant bottleneck: rank {dom} (critical path in {n}/{} epochs)",
                self.epochs.len()
            );
        }
        for e in &self.epochs {
            let b = &e.ranks[e.bottleneck_rank];
            let _ = writeln!(
                out,
                "epoch {}: {:.3} ms, bottleneck rank {} ({:.3} ms compute / {:.3} ms comm), \
                 max send rank {} ({} B, imbalance {:.2}x)",
                e.epoch,
                e.epoch_seconds * 1e3,
                e.bottleneck_rank,
                b.phases[Phase::LocalCompute.index()].seconds * 1e3,
                b.comm_seconds() * 1e3,
                e.max_send_rank,
                e.ranks[e.max_send_rank].bytes_sent,
                e.send_imbalance()
            );
            // Dual-clock traces: the measured critical path, printed
            // right under the α–β prediction it should track.
            if e.wall_epoch_seconds > 0.0 {
                let wb = &e.ranks[e.wall_bottleneck_rank];
                let _ = writeln!(
                    out,
                    "    wall clock: {:.3} ms (rank {} critical: {:.3} ms compute / {:.3} ms \
                     comm-exposed) vs α–β model {:.3} ms",
                    e.wall_epoch_seconds * 1e3,
                    e.wall_bottleneck_rank,
                    wb.phases[Phase::LocalCompute.index()].wall_seconds * 1e3,
                    wb.wall_comm_seconds() * 1e3,
                    e.epoch_seconds * 1e3
                );
            }
            for p in PHASES {
                let r = e.phase_critical_rank[p.index()];
                let agg = &e.ranks[r].phases[p.index()];
                if agg.ops == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "    {:<14} critical rank {:>3}: {:>10.3} ms  {:>12} B sent  {:>6} ops",
                    p.name(),
                    r,
                    agg.seconds * 1e3,
                    agg.bytes_sent,
                    agg.ops
                );
            }
            let hidden: f64 = e.ranks.iter().map(|r| r.hidden_comm_seconds()).sum();
            if hidden > 0.0 {
                let exposed: f64 = e.ranks.iter().map(|r| r.exposed_comm_seconds()).sum();
                let _ = writeln!(
                    out,
                    "    overlap: {:.3} ms comm hidden behind compute, {:.3} ms exposed \
                     (all ranks; bottleneck hides {:.3} ms)",
                    hidden * 1e3,
                    exposed * 1e3,
                    b.hidden_comm_seconds() * 1e3
                );
            }
            let retrans: u64 = e.ranks.iter().map(|r| r.retransmit_bytes).sum();
            if retrans > 0 {
                let _ = writeln!(
                    out,
                    "    retransmit overhead: {retrans} B (wire, not logical)"
                );
            }
        }
        out
    }
}

fn argmax_f64(it: impl Iterator<Item = f64>) -> usize {
    let mut best = (0usize, f64::MIN);
    for (i, v) in it.enumerate() {
        if v > best.1 {
            best = (i, v);
        }
    }
    best.0
}

fn argmax_u64(it: impl Iterator<Item = u64>) -> usize {
    let mut best = (0usize, 0u64);
    let mut first = true;
    for (i, v) in it.enumerate() {
        if first || v > best.1 {
            best = (i, v);
            first = false;
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanKind};
    use crate::recorder::RankTracer;

    /// Three ranks, two epochs; rank 2 is the skewed sender in both.
    fn skewed_trace() -> WorldTrace {
        let mut tracers: Vec<RankTracer> = (0..3).map(RankTracer::new).collect();
        for epoch in 0..2 {
            for (r, t) in tracers.iter_mut().enumerate() {
                t.set_epoch(epoch);
                t.begin_span(SpanKind::Epoch, Phase::Other);
                let bytes = 100 * (r as u64 + 1); // rank 2 sends 3x rank 0
                t.op(
                    EventKind::AllToAllV,
                    Phase::AllToAll,
                    None,
                    bytes,
                    100,
                    0,
                    bytes as f64 * 1e-6,
                );
                t.op(
                    EventKind::Compute,
                    Phase::LocalCompute,
                    None,
                    0,
                    0,
                    50,
                    1e-4,
                );
                t.end_span();
            }
        }
        WorldTrace::collect(tracers)
    }

    #[test]
    fn bottleneck_is_the_skewed_rank() {
        let report = BottleneckReport::from_trace(&skewed_trace());
        assert_eq!(report.epochs.len(), 2);
        for e in &report.epochs {
            assert_eq!(e.bottleneck_rank, 2);
            assert_eq!(e.max_send_rank, 2);
            assert_eq!(e.ranks[2].bytes_sent, 300);
            assert_eq!(e.phase_critical_rank[Phase::AllToAll.index()], 2);
            assert!((e.send_imbalance() - 1.5).abs() < 1e-12);
        }
        assert_eq!(report.dominant_bottleneck(), Some(2));
        // Epoch time equals the bottleneck rank's modeled total.
        let e0 = &report.epochs[0];
        assert!((e0.epoch_seconds - (300e-6 + 1e-4)).abs() < 1e-12);
    }

    #[test]
    fn render_names_the_bottleneck() {
        let s = BottleneckReport::from_trace(&skewed_trace()).render();
        assert!(s.contains("bottleneck rank 2"), "{s}");
        assert!(s.contains("dominant bottleneck: rank 2"), "{s}");
        assert!(s.contains("alltoall"), "{s}");
    }

    #[test]
    fn wall_attribution_rides_next_to_the_model() {
        let mut tracers: Vec<RankTracer> = (0..2)
            .map(|r| RankTracer::with_wall_anchor(r, std::time::Instant::now()))
            .collect();
        for (r, t) in tracers.iter_mut().enumerate() {
            t.set_epoch(0);
            t.begin_span(SpanKind::Epoch, Phase::Other);
            t.op(
                EventKind::AllToAllV,
                Phase::AllToAll,
                None,
                100 * (r as u64 + 1),
                100,
                0,
                1e-4,
            );
            t.op(
                EventKind::Compute,
                Phase::LocalCompute,
                None,
                0,
                0,
                50,
                1e-4,
            );
            t.end_span();
        }
        let report = BottleneckReport::from_trace(&WorldTrace::collect(tracers));
        let e = &report.epochs[0];
        assert!(e.wall_epoch_seconds > 0.0);
        assert!(e.ranks[e.wall_bottleneck_rank].wall_seconds >= e.ranks[0].wall_seconds);
        let s = report.render();
        assert!(s.contains("wall clock:"), "{s}");
        assert!(s.contains("vs α–β model"), "{s}");
        // Modeled-only traces keep the legacy report byte-shape.
        let legacy = BottleneckReport::from_trace(&skewed_trace()).render();
        assert!(!legacy.contains("wall clock:"), "{legacy}");
    }

    #[test]
    fn empty_trace_is_harmless() {
        let report = BottleneckReport::from_trace(&WorldTrace::collect(vec![]));
        assert!(report.epochs.is_empty());
        assert_eq!(report.dominant_bottleneck(), None);
        assert_eq!(report.total_seconds(), 0.0);
        assert!(report.render().contains("0 epoch(s)"));
    }
}
