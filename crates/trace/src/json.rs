//! A minimal, dependency-free JSON reader/writer helper.
//!
//! The build environment is fully offline (no serde); traces are
//! written by hand-rolled formatters and read back by this parser. It
//! supports the full JSON grammar the exporters emit — objects, arrays,
//! strings with escapes, numbers, booleans, null — which is enough to
//! validate any line of a trace and to reload events in `trace-report`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (f64 is exact for every count a trace can hold).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted map: key order does not affect equality).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer value, if this is a number with no fractional part.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error with a byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing content after document"));
    }
    Ok(v)
}

fn err(at: usize, msg: &str) -> JsonError {
    JsonError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        m.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not emitted by our writers; map
                        // them to the replacement char on read.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                s.push_str(
                    std::str::from_utf8(&b[start..end]).map_err(|_| err(start, "bad UTF-8"))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "bad number"))
}

/// Quotes and escapes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. Rust's shortest-roundtrip `{}`
/// formatting is deterministic; non-finite values (which no exporter
/// should produce) become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\"y"],"c":{"d":-2.5e-3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = match v.get("b").unwrap() {
            Json::Arr(a) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\"y"));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-0.0025)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\n"), r#""a\"b\\c\n""#);
        let q = quote("\u{1}");
        assert_eq!(q, "\"\\u0001\"");
        assert_eq!(parse(&q).unwrap().as_str(), Some("\u{1}"));
    }

    #[test]
    fn fmt_f64_roundtrips() {
        for v in [0.0, 1.5, -2.25e-9, 123456.789] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("{\"k\":\"héllo→\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo→"));
    }
}
