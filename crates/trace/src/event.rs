//! The span/event model.
//!
//! An [`Event`] is fixed-size and `Copy`: recording one never touches
//! the heap, which keeps the tracer off the allocator on the steady-
//! state path (the same discipline as `EpochBuffers`). Strings never
//! appear in events — kinds and phases are enums with stable
//! [`EventKind::name`]s that only materialize at export time.
//!
//! Two families share the struct:
//!
//! * **Op events** — one per communication/compute operation, emitted
//!   when the op completes, carrying its phase, peer, byte counts,
//!   flops, and modeled duration.
//! * **Span events** — structural brackets ([`SpanKind`]: epoch →
//!   forward/backward → SpMM) emitted at span *end* with the span's
//!   start time and duration. A span's `seq` is reserved at open time,
//!   so `seq` order is pre-order over the span tree and every event's
//!   `parent` names its innermost enclosing span.

use crate::phase::Phase;

/// `parent` value for top-level events (no enclosing span).
pub const NO_PARENT: u32 = u32::MAX;

/// `peer` value for ops without a single peer (collectives, compute).
pub const NO_PEER: i32 = -1;

/// Structural span labels (trainer and SpMM internals).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One training epoch.
    Epoch,
    /// Forward pass of one epoch.
    Forward,
    /// Loss + metrics reduction.
    Loss,
    /// Backward pass + optimizer step.
    Backward,
    /// One 1D distributed SpMM call.
    Spmm1d,
    /// One 1.5D distributed SpMM call.
    Spmm15d,
    /// One 2D (SUMMA-style) distributed SpMM call.
    Spmm2d,
    /// One 3D (2.5D-style replicated-grid) distributed SpMM call.
    Spmm3d,
    /// One pipelined (nonblocking) exchange window inside a distributed
    /// SpMM: remote fetches split into chunks and folded into the local
    /// accumulation while the next chunk is in flight.
    Overlap,
}

impl SpanKind {
    /// Stable machine-readable name (trace schema vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Epoch => "epoch",
            SpanKind::Forward => "forward",
            SpanKind::Loss => "loss",
            SpanKind::Backward => "backward",
            SpanKind::Spmm1d => "spmm_1d",
            SpanKind::Spmm15d => "spmm_15d",
            SpanKind::Spmm2d => "spmm_2d",
            SpanKind::Spmm3d => "spmm_3d",
            SpanKind::Overlap => "overlap",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(s: &str) -> Option<SpanKind> {
        const ALL: [SpanKind; 9] = [
            SpanKind::Epoch,
            SpanKind::Forward,
            SpanKind::Loss,
            SpanKind::Backward,
            SpanKind::Spmm1d,
            SpanKind::Spmm15d,
            SpanKind::Spmm2d,
            SpanKind::Spmm3d,
            SpanKind::Overlap,
        ];
        ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// What an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Recv,
    /// Broadcast participation.
    Bcast,
    /// All-to-allv participation.
    AllToAllV,
    /// All-reduce participation.
    AllReduce,
    /// Gather participation.
    Gather,
    /// Barrier.
    Barrier,
    /// Local compute (SpMM/GEMM/pack) op.
    Compute,
    /// Injected-fault overhead on a send: delay and/or retransmission.
    /// `bytes_sent` is the extra *wire* traffic (zero for pure delays);
    /// logical volumes are untouched.
    Retransmit,
    /// Exposed communication at a pipeline-stage boundary: the part of
    /// a chunk's comm time local compute could not hide. Advances the
    /// modeled clock (it is real critical-path time).
    OverlapWait,
    /// Hidden communication at a pipeline-stage boundary: comm time
    /// that ran concurrently with local compute. Recorded with its
    /// duration but does *not* advance the modeled clock.
    OverlapHidden,
    /// Network-chaos interposer severed a live connection (partition
    /// onset). `peer` is the affected link; recorded on the wall axis
    /// at the fault's activation time.
    ChaosSever,
    /// Network-chaos interposer cut a connection at its byte threshold.
    ChaosCut,
    /// Network-chaos interposer refused a dial (connection-refused
    /// window or active partition).
    ChaosRefused,
    /// A completed structural span.
    Span(SpanKind),
}

impl EventKind {
    /// Stable machine-readable name (trace schema vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Bcast => "bcast",
            EventKind::AllToAllV => "alltoallv",
            EventKind::AllReduce => "allreduce",
            EventKind::Gather => "gather",
            EventKind::Barrier => "barrier",
            EventKind::Compute => "compute",
            EventKind::Retransmit => "retransmit",
            EventKind::OverlapWait => "overlap_wait",
            EventKind::OverlapHidden => "overlap_hidden",
            EventKind::ChaosSever => "chaos_sever",
            EventKind::ChaosCut => "chaos_cut",
            EventKind::ChaosRefused => "chaos_refused",
            EventKind::Span(k) => k.name(),
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(s: &str) -> Option<EventKind> {
        const OPS: [EventKind; 14] = [
            EventKind::Send,
            EventKind::Recv,
            EventKind::Bcast,
            EventKind::AllToAllV,
            EventKind::AllReduce,
            EventKind::Gather,
            EventKind::Barrier,
            EventKind::Compute,
            EventKind::Retransmit,
            EventKind::OverlapWait,
            EventKind::OverlapHidden,
            EventKind::ChaosSever,
            EventKind::ChaosCut,
            EventKind::ChaosRefused,
        ];
        OPS.iter()
            .copied()
            .find(|k| k.name() == s)
            .or_else(|| SpanKind::from_name(s).map(EventKind::Span))
    }

    /// True for span (structural) events.
    pub fn is_span(self) -> bool {
        matches!(self, EventKind::Span(_))
    }
}

/// One trace record. Fixed-size, `Copy`, heap-free.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Per-rank emission order. For spans, reserved at open time, so
    /// sorting a rank's events by `seq` yields pre-order span nesting.
    pub seq: u32,
    /// `seq` of the innermost enclosing span, or [`NO_PARENT`].
    pub parent: u32,
    /// Emitting rank.
    pub rank: u32,
    /// Epoch declared via `set_epoch` (−1 before the first epoch).
    pub epoch: i64,
    /// What happened.
    pub kind: EventKind,
    /// Phase charged.
    pub phase: Phase,
    /// Peer rank for point-to-point ops, else [`NO_PEER`].
    pub peer: i32,
    /// Logical bytes sent by this op on this rank (wire bytes for
    /// [`EventKind::Retransmit`]).
    pub bytes_sent: u64,
    /// Logical bytes received by this op on this rank.
    pub bytes_recv: u64,
    /// Floating-point ops executed (compute events).
    pub flops: u64,
    /// Start offset on this rank's modeled-time axis, seconds.
    pub t_start: f64,
    /// Modeled duration, seconds.
    pub dur: f64,
    /// Start offset on this rank's *wall-clock* axis, seconds since the
    /// rank's monotonic anchor. [`f64::NAN`] when the tracer was
    /// modeled-only (the legacy schema): wall fields never reach the
    /// exporters then, so golden modeled traces stay byte-identical.
    pub t_wall: f64,
    /// Measured wall-clock duration, seconds ([`f64::NAN`] when absent).
    pub wall_dur: f64,
}

impl Event {
    /// End offset on the rank's modeled-time axis.
    pub fn t_end(&self) -> f64 {
        self.t_start + self.dur
    }

    /// True when this event carries the wall-clock axis (dual-clock
    /// schema); both wall fields are present or neither is.
    pub fn has_wall(&self) -> bool {
        self.t_wall.is_finite()
    }

    /// End offset on the rank's wall-clock axis (NaN when absent).
    pub fn wall_end(&self) -> f64 {
        self.t_wall + self.wall_dur
    }
}

// Manual impl: the NaN sentinel in the wall fields must compare equal to
// itself (two modeled-only events with identical payloads are the same
// event), so floats are compared by bit pattern.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
            && self.parent == other.parent
            && self.rank == other.rank
            && self.epoch == other.epoch
            && self.kind == other.kind
            && self.phase == other.phase
            && self.peer == other.peer
            && self.bytes_sent == other.bytes_sent
            && self.bytes_recv == other.bytes_recv
            && self.flops == other.flops
            && self.t_start.to_bits() == other.t_start.to_bits()
            && self.dur.to_bits() == other.dur.to_bits()
            && self.t_wall.to_bits() == other.t_wall.to_bits()
            && self.wall_dur.to_bits() == other.wall_dur.to_bits()
    }
}

impl Eq for Event {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        let kinds = [
            EventKind::Send,
            EventKind::Recv,
            EventKind::Bcast,
            EventKind::AllToAllV,
            EventKind::AllReduce,
            EventKind::Gather,
            EventKind::Barrier,
            EventKind::Compute,
            EventKind::Retransmit,
            EventKind::OverlapWait,
            EventKind::OverlapHidden,
            EventKind::ChaosSever,
            EventKind::ChaosCut,
            EventKind::ChaosRefused,
            EventKind::Span(SpanKind::Epoch),
            EventKind::Span(SpanKind::Spmm1d),
            EventKind::Span(SpanKind::Overlap),
        ];
        for k in kinds {
            assert_eq!(EventKind::from_name(k.name()), Some(k), "{k:?}");
        }
        assert_eq!(EventKind::from_name("bogus"), None);
    }

    #[test]
    fn events_are_copy_and_small() {
        // The recorder depends on events being heap-free; a Vec push of
        // a Copy struct is the whole recording cost.
        fn assert_copy<T: Copy>() {}
        assert_copy::<Event>();
        assert!(std::mem::size_of::<Event>() <= 96, "event grew too fat");
    }
}
