//! Trace exporters: JSONL event logs, Chrome `trace_event` JSON
//! (loadable in `chrome://tracing` / Perfetto), and a per-epoch text
//! timeline.
//!
//! All exporters are deterministic functions of the trace: events are
//! emitted in `(rank, seq)` order and numbers use Rust's
//! shortest-roundtrip formatting. For modeled-only traces no wall time
//! ever reaches an exported field, so two runs of the seeded simulator
//! produce byte-identical artifacts; dual-clock traces additionally
//! carry `wall_ts`/`wall_dur` per event (deterministic given the same
//! recorded trace, but not across runs — wall time is measured).

use std::fmt::Write as _;

use crate::event::{Event, NO_PARENT, NO_PEER};
use crate::json::{fmt_f64, quote};
use crate::phase::{Phase, PHASES};
use crate::recorder::WorldTrace;
use crate::SCHEMA_VERSION;

/// Renders a trace as JSONL: a header line
/// `{"type":"header","schema":…,"p":…,"events":…}` followed by one
/// event object per line in `(rank, seq)` order.
pub fn jsonl_string(trace: &WorldTrace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 160);
    let _ = writeln!(
        out,
        "{{\"type\":\"header\",\"schema\":{},\"p\":{},\"events\":{}}}",
        quote(SCHEMA_VERSION),
        trace.p(),
        trace.len()
    );
    for events in &trace.per_rank {
        for e in events {
            write_event_json(&mut out, e);
            out.push('\n');
        }
    }
    out
}

fn write_event_json(out: &mut String, e: &Event) {
    let _ = write!(
        out,
        "{{\"type\":\"event\",\"rank\":{},\"seq\":{},",
        e.rank, e.seq
    );
    if e.parent != NO_PARENT {
        let _ = write!(out, "\"parent\":{},", e.parent);
    }
    let _ = write!(
        out,
        "\"epoch\":{},\"kind\":{},\"phase\":{},",
        e.epoch,
        quote(e.kind.name()),
        quote(e.phase.name())
    );
    if e.peer != NO_PEER {
        let _ = write!(out, "\"peer\":{},", e.peer);
    }
    if e.bytes_sent > 0 {
        let _ = write!(out, "\"bytes_sent\":{},", e.bytes_sent);
    }
    if e.bytes_recv > 0 {
        let _ = write!(out, "\"bytes_recv\":{},", e.bytes_recv);
    }
    if e.flops > 0 {
        let _ = write!(out, "\"flops\":{},", e.flops);
    }
    let _ = write!(
        out,
        "\"ts\":{},\"dur\":{}",
        fmt_f64(e.t_start),
        fmt_f64(e.dur)
    );
    // Wall fields only exist on dual-clock traces; omitting them keeps
    // modeled-only golden artifacts byte-identical to the legacy schema.
    if e.has_wall() {
        let _ = write!(
            out,
            ",\"wall_ts\":{},\"wall_dur\":{}",
            fmt_f64(e.t_wall),
            fmt_f64(e.wall_dur)
        );
    }
    out.push('}');
}

/// Renders a trace as Chrome `trace_event` JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper). Open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>: each rank appears
/// as a thread, spans and ops as nested slices on the modeled-time
/// axis (microseconds).
pub fn chrome_trace_string(trace: &WorldTrace) -> String {
    let mut out = String::with_capacity(256 + trace.len() * 192);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    for rank in 0..trace.p() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
    }
    for events in &trace.per_rank {
        for e in events {
            sep(&mut out);
            write_chrome_event(&mut out, e);
        }
    }
    out.push_str("\n]}\n");
    out
}

fn write_chrome_event(out: &mut String, e: &Event) {
    // Complete ("X") slices for everything with duration; instant
    // ("i") marks for zero-duration ops (barriers, unpriced gathers).
    let ts_us = e.t_start * 1e6;
    let dur_us = e.dur * 1e6;
    let name = e.kind.name();
    if e.dur > 0.0 || e.kind.is_span() {
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}",
            quote(name),
            quote(e.phase.name()),
            e.rank,
            fmt_f64(ts_us),
            fmt_f64(dur_us)
        );
    } else {
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}",
            quote(name),
            quote(e.phase.name()),
            e.rank,
            fmt_f64(ts_us)
        );
    }
    let _ = write!(out, ",\"args\":{{\"epoch\":{}", e.epoch);
    if e.peer != NO_PEER {
        let _ = write!(out, ",\"peer\":{}", e.peer);
    }
    if e.bytes_sent > 0 {
        let _ = write!(out, ",\"bytes_sent\":{}", e.bytes_sent);
    }
    if e.bytes_recv > 0 {
        let _ = write!(out, ",\"bytes_recv\":{}", e.bytes_recv);
    }
    if e.flops > 0 {
        let _ = write!(out, ",\"flops\":{}", e.flops);
    }
    if e.has_wall() {
        let _ = write!(
            out,
            ",\"wall_ts\":{},\"wall_dur\":{}",
            fmt_f64(e.t_wall),
            fmt_f64(e.wall_dur)
        );
    }
    out.push_str("}}");
}

/// Renders a dual-clock trace as Chrome `trace_event` JSON on the
/// **wall-clock** axis: slice positions and durations come from
/// `wall_ts`/`wall_dur` (microseconds), with the modeled numbers kept
/// in each slice's `args`. Events without wall stamps (legacy
/// modeled-only inputs mixed into a merge) are skipped. This is the
/// exporter behind `trace-report --merge`: after per-rank clock offsets
/// are applied, every rank's slices share one aligned time base.
pub fn chrome_trace_string_wall(trace: &WorldTrace) -> String {
    let mut out = String::with_capacity(256 + trace.len() * 192);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    for rank in 0..trace.p() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
    }
    for events in &trace.per_rank {
        for e in events {
            if !e.has_wall() {
                continue;
            }
            sep(&mut out);
            let ts_us = e.t_wall * 1e6;
            let dur_us = e.wall_dur * 1e6;
            let name = e.kind.name();
            if e.wall_dur > 0.0 || e.kind.is_span() {
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}",
                    quote(name),
                    quote(e.phase.name()),
                    e.rank,
                    fmt_f64(ts_us),
                    fmt_f64(dur_us)
                );
            } else {
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}",
                    quote(name),
                    quote(e.phase.name()),
                    e.rank,
                    fmt_f64(ts_us)
                );
            }
            let _ = write!(
                out,
                ",\"args\":{{\"epoch\":{},\"modeled_ts\":{},\"modeled_dur\":{}",
                e.epoch,
                fmt_f64(e.t_start),
                fmt_f64(e.dur)
            );
            if e.peer != NO_PEER {
                let _ = write!(out, ",\"peer\":{}", e.peer);
            }
            if e.bytes_sent > 0 {
                let _ = write!(out, ",\"bytes_sent\":{}", e.bytes_sent);
            }
            if e.bytes_recv > 0 {
                let _ = write!(out, ",\"bytes_recv\":{}", e.bytes_recv);
            }
            if e.flops > 0 {
                let _ = write!(out, ",\"flops\":{}", e.flops);
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a per-epoch text timeline: for every epoch, one line per
/// rank with its per-phase modeled milliseconds and send volume, the
/// bottleneck rank marked `◀ max`.
pub fn text_timeline(trace: &WorldTrace) -> String {
    let mut out = String::new();
    let max_epoch = trace.max_epoch();
    let _ = writeln!(
        out,
        "trace timeline: {} rank(s), {} event(s), epochs 0..={max_epoch}",
        trace.p(),
        trace.len()
    );
    let wall = trace.has_wall();
    for epoch in 0..=max_epoch.max(-1) {
        if max_epoch < 0 {
            break;
        }
        let _ = writeln!(out, "epoch {epoch}");
        let _ = write!(
            out,
            "  {:>4}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "rank", "total ms", "compute ms", "comm ms", "sent KB", "recv KB"
        );
        if wall {
            let _ = write!(out, "  {:>10}", "wall ms");
        }
        out.push('\n');
        let mut worst = (0usize, f64::MIN);
        let rows: Vec<_> = (0..trace.p())
            .map(|r| {
                let agg = trace.phase_aggregates(r, Some(epoch));
                let total: f64 = agg.iter().map(|a| a.seconds).sum();
                let compute = agg[Phase::LocalCompute.index()].seconds;
                let sent: u64 = agg.iter().map(|a| a.bytes_sent).sum();
                let recv: u64 = agg.iter().map(|a| a.bytes_recv).sum();
                let wall_total: f64 = agg.iter().map(|a| a.wall_seconds).sum();
                if total > worst.1 {
                    worst = (r, total);
                }
                (r, total, compute, sent, recv, wall_total)
            })
            .collect();
        for (r, total, compute, sent, recv, wall_total) in rows {
            let _ = write!(
                out,
                "  {:>4}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.1}  {:>10.1}",
                r,
                total * 1e3,
                compute * 1e3,
                (total - compute) * 1e3,
                sent as f64 / 1024.0,
                recv as f64 / 1024.0,
            );
            if wall {
                let _ = write!(out, "  {:>10.3}", wall_total * 1e3);
            }
            let _ = writeln!(out, "{}", if r == worst.0 { "  ◀ max" } else { "" });
        }
    }
    let mut any = false;
    for p in PHASES {
        let b = trace.phase_bytes_total(p);
        if b > 0 {
            if !any {
                let _ = writeln!(out, "phase volumes (all ranks, all epochs):");
                any = true;
            }
            let _ = writeln!(out, "  {:<14} {:>12} bytes", p.name(), b);
        }
    }
    out
}

/// Writes one of the exporter outputs to a file, creating parent
/// directories as needed.
pub fn write_to_file(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SpanKind};
    use crate::recorder::RankTracer;

    fn tiny_trace() -> WorldTrace {
        let mut t0 = RankTracer::new(0);
        t0.set_epoch(0);
        t0.begin_span(SpanKind::Epoch, Phase::Other);
        t0.op(EventKind::Send, Phase::P2p, Some(1), 64, 0, 0, 1e-4);
        t0.op(EventKind::Barrier, Phase::Other, None, 0, 0, 0, 0.0);
        t0.end_span();
        let mut t1 = RankTracer::new(1);
        t1.set_epoch(0);
        t1.op(EventKind::Recv, Phase::P2p, Some(0), 0, 64, 0, 1e-4);
        WorldTrace::collect(vec![t0, t1])
    }

    #[test]
    fn jsonl_every_line_parses() {
        let s = jsonl_string(&tiny_trace());
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 1 + 4); // header + 3 rank-0 events + 1 recv
        let header = crate::json::parse(lines[0]).unwrap();
        assert_eq!(header.get("schema").unwrap().as_str(), Some(SCHEMA_VERSION));
        assert_eq!(header.get("p").unwrap().as_u64(), Some(2));
        for line in &lines[1..] {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("type").unwrap().as_str(), Some("event"));
            assert!(v.get("kind").is_some() && v.get("ts").is_some());
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_thread_names() {
        let s = chrome_trace_string(&tiny_trace());
        let v = crate::json::parse(&s).unwrap();
        let evs = match v.get("traceEvents").unwrap() {
            crate::json::Json::Arr(a) => a,
            other => panic!("{other:?}"),
        };
        // 2 thread_name metadata + 3 rank-0 + 1 rank-1 events.
        assert_eq!(evs.len(), 6);
        assert!(evs
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("M")));
        // Zero-duration barrier becomes an instant event.
        assert!(evs
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("i")));
    }

    #[test]
    fn text_timeline_marks_bottleneck() {
        let s = text_timeline(&tiny_trace());
        assert!(s.contains("epoch 0"), "{s}");
        assert!(s.contains("◀ max"), "{s}");
        assert!(s.contains("p2p"), "{s}");
    }

    fn dual_trace() -> WorldTrace {
        let mut t0 = RankTracer::with_wall_anchor(0, std::time::Instant::now());
        t0.set_epoch(0);
        t0.begin_span(SpanKind::Epoch, Phase::Other);
        t0.op(EventKind::Send, Phase::P2p, Some(1), 64, 0, 0, 1e-4);
        t0.end_span();
        let mut t1 = RankTracer::with_wall_anchor(1, std::time::Instant::now());
        t1.set_epoch(0);
        t1.op(EventKind::Recv, Phase::P2p, Some(0), 0, 64, 0, 1e-4);
        WorldTrace::collect(vec![t0, t1])
    }

    #[test]
    fn modeled_only_jsonl_has_no_wall_fields() {
        let s = jsonl_string(&tiny_trace());
        assert!(!s.contains("wall_ts") && !s.contains("wall_dur"), "{s}");
    }

    #[test]
    fn dual_clock_jsonl_carries_wall_fields_on_every_event() {
        let s = jsonl_string(&dual_trace());
        for line in s.lines().skip(1) {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("wall_ts").is_some(), "{line}");
            assert!(v.get("wall_dur").is_some(), "{line}");
            // The modeled axis still leads the pair.
            assert!(v.get("ts").is_some() && v.get("dur").is_some());
        }
    }

    #[test]
    fn wall_chrome_export_is_valid_json_on_wall_axis() {
        let trace = dual_trace();
        let s = chrome_trace_string_wall(&trace);
        let v = crate::json::parse(&s).unwrap();
        let evs = match v.get("traceEvents").unwrap() {
            crate::json::Json::Arr(a) => a,
            other => panic!("{other:?}"),
        };
        // 2 thread_name metadata + 2 rank-0 + 1 rank-1 events.
        assert_eq!(evs.len(), 5);
        for e in evs.iter().filter(|e| e.get("cat").is_some()) {
            let args = e.get("args").unwrap();
            assert!(args.get("modeled_ts").is_some());
        }
        // Modeled-only events are skipped rather than exported at ts 0.
        let legacy = chrome_trace_string_wall(&tiny_trace());
        let v = crate::json::parse(&legacy).unwrap();
        let evs = match v.get("traceEvents").unwrap() {
            crate::json::Json::Arr(a) => a,
            other => panic!("{other:?}"),
        };
        assert!(evs
            .iter()
            .all(|e| e.get("ph").unwrap().as_str() == Some("M")));
    }

    #[test]
    fn timeline_gains_wall_column_only_for_dual_clock_traces() {
        assert!(!text_timeline(&tiny_trace()).contains("wall ms"));
        assert!(text_timeline(&dual_trace()).contains("wall ms"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = jsonl_string(&tiny_trace());
        let b = jsonl_string(&tiny_trace());
        assert_eq!(a, b);
        assert_eq!(
            chrome_trace_string(&tiny_trace()),
            chrome_trace_string(&tiny_trace())
        );
    }
}
