//! Cross-process trace merging with clock-offset correction.
//!
//! The process backend writes one JSONL trace per rank, each stamped on
//! that process's own monotonic clock (seconds since its transport
//! anchor). Rank 0 estimates every peer's clock offset during the
//! rendezvous handshake (NTP-style request/reply midpoint; see
//! `gnn-comm`'s proc transport) and publishes a `clock-offsets.json`
//! sidecar. This module stitches the per-rank files back into one
//! [`WorldTrace`] on a single aligned wall axis:
//!
//! 1. [`merge_world`] — union per-rank event lists (each input file
//!    contributes the ranks it recorded; no rank may appear twice).
//! 2. [`apply_offsets`] — convert every wall timestamp onto rank 0's
//!    clock: `aligned = wall − offset[rank]`, where
//!    `offset[r] = anchor_0 − anchor_r` in true time (rank 0's own
//!    offset is 0 by construction).
//! 3. [`normalize_wall`] — shift the whole aligned axis so the earliest
//!    event starts at 0, restoring the schema's `wall_ts ≥ 0`
//!    invariant regardless of which rank's anchor came first.
//!
//! Merge invariants: the modeled axis is untouched (offsets apply to
//! wall fields only), per-rank wall timelines stay monotonic (a shared
//! shift per rank preserves order), and the pipeline is a deterministic
//! function of its inputs — same per-rank files + same sidecar ⇒
//! byte-identical merged artifact.

use crate::json::{fmt_f64, parse, Json};
use crate::metrics::Histogram;
use crate::recorder::WorldTrace;
use crate::SCHEMA_VERSION;

/// Unions per-rank event lists from several partial traces (typically
/// one file per rank). Every input must declare the same world size;
/// each rank's events may come from at most one input.
pub fn merge_world(traces: Vec<WorldTrace>) -> Result<WorldTrace, String> {
    let mut it = traces.into_iter();
    let first = it.next().ok_or("nothing to merge (no input traces)")?;
    let p = first.p();
    let mut merged = first;
    for (i, t) in it.enumerate() {
        if t.p() != p {
            return Err(format!(
                "world-size mismatch: input {} declares p={}, expected p={p}",
                i + 2,
                t.p()
            ));
        }
        for (rank, events) in t.per_rank.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            if !merged.per_rank[rank].is_empty() {
                return Err(format!("rank {rank} appears in more than one input trace"));
            }
            merged.per_rank[rank] = events;
        }
        merged.msg_sizes.merge(&t.msg_sizes);
    }
    Ok(merged)
}

/// Rewrites every wall timestamp onto rank 0's clock axis:
/// `t_wall ← t_wall − offsets[rank]`. Modeled times and wall durations
/// are untouched (durations are offset-invariant). Events without wall
/// stamps pass through unchanged.
pub fn apply_offsets(trace: &mut WorldTrace, offsets: &[f64]) -> Result<(), String> {
    if offsets.len() != trace.p() {
        return Err(format!(
            "{} offset(s) for {} rank(s)",
            offsets.len(),
            trace.p()
        ));
    }
    if let Some(bad) = offsets.iter().find(|o| !o.is_finite()) {
        return Err(format!("non-finite clock offset {bad}"));
    }
    for (rank, events) in trace.per_rank.iter_mut().enumerate() {
        let off = offsets[rank];
        for e in events.iter_mut() {
            if e.has_wall() {
                e.t_wall -= off;
            }
        }
    }
    Ok(())
}

/// Shifts all wall timestamps so the earliest one is exactly 0. A
/// no-op on traces without wall stamps. Returns the shift applied
/// (subtracted from every `wall_ts`).
pub fn normalize_wall(trace: &mut WorldTrace) -> f64 {
    let mut min = f64::INFINITY;
    for e in trace.per_rank.iter().flatten() {
        if e.has_wall() && e.t_wall < min {
            min = e.t_wall;
        }
    }
    if !min.is_finite() {
        return 0.0;
    }
    for events in trace.per_rank.iter_mut() {
        for e in events.iter_mut() {
            if e.has_wall() {
                e.t_wall -= min;
            }
        }
    }
    min
}

/// The whole pipeline: union the inputs, align onto rank 0's clock,
/// and normalize the origin. Pass `None` for `offsets` to merge
/// without correction (all anchors assumed equal — fine for a
/// single-file "merge" or thread-backend traces).
pub fn merge_aligned(
    traces: Vec<WorldTrace>,
    offsets: Option<&[f64]>,
) -> Result<WorldTrace, String> {
    let mut merged = merge_world(traces)?;
    if let Some(offsets) = offsets {
        apply_offsets(&mut merged, offsets)?;
    }
    normalize_wall(&mut merged);
    Ok(merged)
}

/// Renders the clock-offset sidecar:
/// `{"schema":…,"type":"clock-offsets","p":N,"offsets":[…]}` (seconds;
/// entry r is rank r's anchor lead over rank 0, so rank 0's is 0).
pub fn offsets_json(offsets: &[f64]) -> String {
    let mut out = String::with_capacity(64 + offsets.len() * 24);
    out.push_str(&format!(
        "{{\"schema\":\"{SCHEMA_VERSION}\",\"type\":\"clock-offsets\",\"p\":{},\"offsets\":[",
        offsets.len()
    ));
    for (i, o) in offsets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64(*o));
    }
    out.push_str("]}\n");
    out
}

/// Parses the [`offsets_json`] sidecar back into per-rank offsets.
pub fn parse_offsets_json(s: &str) -> Result<Vec<f64>, String> {
    let v = parse(s.trim()).map_err(|e| format!("clock-offsets sidecar: {e}"))?;
    match v.get("schema").and_then(Json::as_str) {
        Some(sv) if sv == SCHEMA_VERSION => {}
        other => return Err(format!("clock-offsets sidecar: bad schema {other:?}")),
    }
    if v.get("type").and_then(Json::as_str) != Some("clock-offsets") {
        return Err("clock-offsets sidecar: missing type \"clock-offsets\"".into());
    }
    let p = v
        .get("p")
        .and_then(Json::as_u64)
        .ok_or("clock-offsets sidecar: missing integer field 'p'")? as usize;
    let arr = match v.get("offsets") {
        Some(Json::Arr(a)) => a,
        _ => return Err("clock-offsets sidecar: missing array field 'offsets'".into()),
    };
    if arr.len() != p {
        return Err(format!(
            "clock-offsets sidecar: {} offset(s) for p={p}",
            arr.len()
        ));
    }
    let mut out = Vec::with_capacity(p);
    for (i, j) in arr.iter().enumerate() {
        let o = j
            .as_f64()
            .ok_or_else(|| format!("clock-offsets sidecar: offset {i} is not a number"))?;
        if !o.is_finite() {
            return Err(format!("clock-offsets sidecar: offset {i} is not finite"));
        }
        out.push(o);
    }
    Ok(out)
}

/// A single-rank partial [`WorldTrace`]: rank `rank`'s events in a
/// world of `p` (the shape each per-rank trace file loads into).
pub fn single_rank_trace(p: usize, rank: usize, events: Vec<crate::Event>) -> WorldTrace {
    assert!(rank < p, "rank {rank} out of range (p={p})");
    let mut per_rank: Vec<Vec<crate::Event>> = (0..p).map(|_| Vec::new()).collect();
    per_rank[rank] = events;
    WorldTrace {
        per_rank,
        msg_sizes: Histogram::pow2_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, NO_PARENT, NO_PEER};
    use crate::export::jsonl_string;
    use crate::phase::Phase;

    /// An op event with explicit wall stamps (what a dual-clock rank
    /// with a skewed anchor would have recorded).
    fn ev(rank: u32, seq: u32, t: f64, wall: f64) -> Event {
        Event {
            seq,
            parent: NO_PARENT,
            rank,
            epoch: 0,
            kind: EventKind::Send,
            phase: Phase::P2p,
            peer: NO_PEER,
            bytes_sent: 8,
            bytes_recv: 0,
            flops: 0,
            t_start: t,
            dur: 0.001,
            t_wall: wall,
            wall_dur: 0.002,
        }
    }

    /// Three ranks whose anchors are skewed by known amounts; the true
    /// wall times interleave across ranks.
    fn skewed_inputs() -> (Vec<WorldTrace>, Vec<f64>) {
        // True event times (rank 0's axis): rank r fires at 0.01*r,
        // then 0.1 + 0.01*r. Rank r's anchor leads rank 0's by skew[r],
        // so its local reading is true + skew[r]... with
        // offset[r] = anchor_0 − anchor_r = skew[r] as estimated by the
        // rendezvous exchange.
        let skew = [0.0, 0.25, -0.125];
        let traces = (0..3u32)
            .map(|r| {
                let s = skew[r as usize];
                single_rank_trace(
                    3,
                    r as usize,
                    vec![
                        ev(r, 0, 0.0, 0.01 * f64::from(r) + s),
                        ev(r, 1, 0.001, 0.1 + 0.01 * f64::from(r) + s),
                    ],
                )
            })
            .collect();
        (traces, skew.to_vec())
    }

    #[test]
    fn merge_unions_ranks_and_rejects_duplicates() {
        let (traces, _) = skewed_inputs();
        let merged = merge_world(traces).unwrap();
        assert_eq!(merged.p(), 3);
        assert_eq!(merged.len(), 6);
        // The same rank twice is an error.
        let dup = vec![
            single_rank_trace(2, 0, vec![ev(0, 0, 0.0, 0.0)]),
            single_rank_trace(2, 0, vec![ev(0, 1, 0.0, 0.0)]),
        ];
        assert!(merge_world(dup).unwrap_err().contains("more than one"));
        // Mismatched world sizes are an error.
        let bad = vec![
            single_rank_trace(2, 0, vec![ev(0, 0, 0.0, 0.0)]),
            single_rank_trace(3, 1, vec![ev(1, 0, 0.0, 0.0)]),
        ];
        assert!(merge_world(bad).unwrap_err().contains("mismatch"));
    }

    #[test]
    fn offsets_align_skewed_clocks_onto_one_axis() {
        let (traces, skew) = skewed_inputs();
        let merged = merge_aligned(traces, Some(&skew)).unwrap();
        // After correction + normalization the true interleaving is
        // recovered: rank 0 at 0.00/0.10, rank 1 at 0.01/0.11, rank 2
        // at 0.02/0.12 — with the global min shifted to exactly 0.
        assert_eq!(merged.per_rank[0][0].t_wall, 0.0);
        for r in 0..3 {
            let evs = &merged.per_rank[r];
            assert!((evs[0].t_wall - 0.01 * r as f64).abs() < 1e-12, "rank {r}");
            assert!(
                (evs[1].t_wall - (0.1 + 0.01 * r as f64)).abs() < 1e-12,
                "rank {r}"
            );
            // Monotonic per rank (offset shifts preserve order).
            assert!(evs[0].t_wall < evs[1].t_wall);
            // Non-negative: safe for the schema validator.
            assert!(evs[0].t_wall >= 0.0);
        }
    }

    #[test]
    fn merge_is_deterministic_given_fixed_inputs() {
        let (a, skew) = skewed_inputs();
        let (b, _) = skewed_inputs();
        let m1 = merge_aligned(a, Some(&skew)).unwrap();
        let m2 = merge_aligned(b, Some(&skew)).unwrap();
        assert_eq!(jsonl_string(&m1), jsonl_string(&m2));
    }

    #[test]
    fn offsets_sidecar_roundtrips() {
        let offsets = vec![0.0, 1.5e-3, -2.25e-4, 7.0];
        let s = offsets_json(&offsets);
        let back = parse_offsets_json(&s).unwrap();
        assert_eq!(offsets, back);
        assert!(parse_offsets_json("{}").is_err());
        let short = s.replacen("\"p\":4", "\"p\":5", 1);
        assert!(parse_offsets_json(&short).is_err());
    }

    #[test]
    fn offset_pipeline_ignores_modeled_only_events() {
        let mut legacy = ev(0, 0, 0.5, 0.0);
        legacy.t_wall = f64::NAN;
        legacy.wall_dur = f64::NAN;
        let traces = vec![
            single_rank_trace(2, 0, vec![legacy]),
            single_rank_trace(2, 1, vec![ev(1, 0, 0.25, 3.0)]),
        ];
        let merged = merge_aligned(traces, Some(&[0.0, 1.0])).unwrap();
        // Modeled axis untouched; legacy event still wall-less.
        assert_eq!(merged.per_rank[0][0].t_start, 0.5);
        assert!(!merged.per_rank[0][0].has_wall());
        // The one wall event aligns (3.0 − 1.0) then normalizes to 0.
        assert_eq!(merged.per_rank[1][0].t_wall, 0.0);
    }
}
