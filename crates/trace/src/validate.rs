//! Schema validation and reloading for exported JSONL traces.
//!
//! The validator enforces the `gnn-trace/1` contract line by line —
//! header first, known fields with the right types, kind/phase
//! vocabulary, per-rank strictly increasing `seq`, `parent < seq`,
//! non-negative times — so the CI smoke job and `trace-report
//! --validate` can reject a malformed artifact without any external
//! JSON-schema tooling. [`parse_jsonl`] reloads a validated trace into
//! a [`WorldTrace`] for offline reporting.

use crate::event::{Event, EventKind, NO_PARENT, NO_PEER};
use crate::json::{parse, Json};
use crate::metrics::Histogram;
use crate::phase::Phase;
use crate::recorder::WorldTrace;
use crate::SCHEMA_VERSION;

/// What a validated trace contains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// World size from the header.
    pub p: usize,
    /// Total events (header count, cross-checked against lines).
    pub events: usize,
    /// Span events seen.
    pub spans: usize,
    /// Op events seen.
    pub ops: usize,
    /// Highest epoch stamped on any event (−1 if none).
    pub max_epoch: i64,
    /// Sum of `bytes_sent` over non-retransmit op events.
    pub logical_bytes_sent: u64,
    /// Sum of `bytes_sent` over retransmit op events: wire overhead the
    /// reliable transport paid on top of the logical volume.
    pub retransmit_wire_bytes: u64,
    /// Events carrying the wall-clock axis (`wall_ts`/`wall_dur`): 0
    /// for a legacy modeled-only trace, `events` for a fully dual-clock
    /// one. Both schemas are valid `gnn-trace/1`.
    pub wall_events: usize,
}

/// A validation failure, pointing at the offending line (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ValidateError {}

fn fail(line: usize, msg: impl Into<String>) -> ValidateError {
    ValidateError {
        line,
        msg: msg.into(),
    }
}

const EVENT_FIELDS: &[&str] = &[
    "type",
    "rank",
    "seq",
    "parent",
    "epoch",
    "kind",
    "phase",
    "peer",
    "bytes_sent",
    "bytes_recv",
    "flops",
    "ts",
    "dur",
    "wall_ts",
    "wall_dur",
];

fn parse_header(line: &str) -> Result<(usize, usize), ValidateError> {
    let v = parse(line).map_err(|e| fail(1, e.to_string()))?;
    if v.get("type").and_then(Json::as_str) != Some("header") {
        return Err(fail(1, "first line must be the header object"));
    }
    match v.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA_VERSION => {}
        Some(s) => {
            return Err(fail(
                1,
                format!("unsupported schema {s:?} (expected {SCHEMA_VERSION:?})"),
            ))
        }
        None => return Err(fail(1, "header missing string field 'schema'")),
    }
    let p = v
        .get("p")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail(1, "header missing integer field 'p'"))? as usize;
    let events = v
        .get("events")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail(1, "header missing integer field 'events'"))? as usize;
    if p == 0 {
        return Err(fail(1, "header declares an empty world (p = 0)"));
    }
    Ok((p, events))
}

fn parse_event_line(lineno: usize, line: &str, p: usize) -> Result<Event, ValidateError> {
    let v = parse(line).map_err(|e| fail(lineno, e.to_string()))?;
    let obj = match &v {
        Json::Obj(m) => m,
        _ => return Err(fail(lineno, "event line is not a JSON object")),
    };
    for key in obj.keys() {
        if !EVENT_FIELDS.contains(&key.as_str()) {
            return Err(fail(lineno, format!("unknown field {key:?}")));
        }
    }
    if v.get("type").and_then(Json::as_str) != Some("event") {
        return Err(fail(lineno, "missing or wrong 'type' (expected \"event\")"));
    }
    let int = |key: &str| -> Result<u64, ValidateError> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| fail(lineno, format!("missing or non-integer field {key:?}")))
    };
    let rank = int("rank")?;
    if rank as usize >= p {
        return Err(fail(lineno, format!("rank {rank} out of range (p = {p})")));
    }
    let seq = int("seq")?;
    if seq > u32::MAX as u64 - 1 {
        return Err(fail(lineno, "seq out of range"));
    }
    let parent = match v.get("parent") {
        None => NO_PARENT,
        Some(j) => {
            let pv = j
                .as_u64()
                .ok_or_else(|| fail(lineno, "non-integer field \"parent\""))?;
            if pv >= seq {
                return Err(fail(
                    lineno,
                    format!("parent {pv} must precede seq {seq} (pre-order)"),
                ));
            }
            pv as u32
        }
    };
    let epoch = v
        .get("epoch")
        .and_then(Json::as_i64)
        .ok_or_else(|| fail(lineno, "missing or non-integer field \"epoch\""))?;
    if epoch < -1 {
        return Err(fail(lineno, format!("epoch {epoch} out of range (>= -1)")));
    }
    let kind_name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(lineno, "missing string field \"kind\""))?;
    let kind = EventKind::from_name(kind_name)
        .ok_or_else(|| fail(lineno, format!("unknown kind {kind_name:?}")))?;
    let phase_name = v
        .get("phase")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(lineno, "missing string field \"phase\""))?;
    let phase = Phase::from_name(phase_name)
        .ok_or_else(|| fail(lineno, format!("unknown phase {phase_name:?}")))?;
    let peer = match v.get("peer") {
        None => NO_PEER,
        Some(j) => {
            let pv = j
                .as_i64()
                .ok_or_else(|| fail(lineno, "non-integer field \"peer\""))?;
            if pv < 0 || pv as usize >= p {
                return Err(fail(lineno, format!("peer {pv} out of range (p = {p})")));
            }
            pv as i32
        }
    };
    if kind.is_span() && peer != NO_PEER {
        return Err(fail(lineno, "span events cannot carry a peer"));
    }
    let opt_int = |key: &str| -> Result<u64, ValidateError> {
        match v.get(key) {
            None => Ok(0),
            Some(j) => j
                .as_u64()
                .ok_or_else(|| fail(lineno, format!("non-integer field {key:?}"))),
        }
    };
    let bytes_sent = opt_int("bytes_sent")?;
    let bytes_recv = opt_int("bytes_recv")?;
    let flops = opt_int("flops")?;
    let time = |key: &str| -> Result<f64, ValidateError> {
        let t = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| fail(lineno, format!("missing numeric field {key:?}")))?;
        if !t.is_finite() || t < 0.0 {
            return Err(fail(
                lineno,
                format!("field {key:?} must be finite and >= 0"),
            ));
        }
        Ok(t)
    };
    let t_start = time("ts")?;
    let dur = time("dur")?;
    // Dual-clock events carry both wall fields; legacy modeled-only
    // events carry neither. One without the other is malformed.
    let (t_wall, wall_dur) = match (v.get("wall_ts").is_some(), v.get("wall_dur").is_some()) {
        (true, true) => (time("wall_ts")?, time("wall_dur")?),
        (false, false) => (f64::NAN, f64::NAN),
        _ => {
            return Err(fail(
                lineno,
                "\"wall_ts\" and \"wall_dur\" must appear together",
            ))
        }
    };
    Ok(Event {
        seq: seq as u32,
        parent,
        rank: rank as u32,
        epoch,
        kind,
        phase,
        peer,
        bytes_sent,
        bytes_recv,
        flops,
        t_start,
        dur,
        t_wall,
        wall_dur,
    })
}

fn check_and_collect(input: &str) -> Result<(usize, TraceSummary, Vec<Event>), ValidateError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| fail(1, "empty input (no header line)"))?;
    let (p, declared) = parse_header(header)?;
    let mut events = Vec::with_capacity(declared);
    let mut summary = TraceSummary {
        p,
        max_epoch: -1,
        ..TraceSummary::default()
    };
    let mut last_seq: Vec<Option<u32>> = vec![None; p];
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let e = parse_event_line(lineno, line, p)?;
        let last = &mut last_seq[e.rank as usize];
        if let Some(prev) = *last {
            if e.seq <= prev {
                return Err(fail(
                    lineno,
                    format!(
                        "rank {} seq {} not strictly increasing (previous {})",
                        e.rank, e.seq, prev
                    ),
                ));
            }
        }
        *last = Some(e.seq);
        if e.kind.is_span() {
            summary.spans += 1;
        } else {
            summary.ops += 1;
            if e.kind == EventKind::Retransmit {
                summary.retransmit_wire_bytes += e.bytes_sent;
            } else {
                summary.logical_bytes_sent += e.bytes_sent;
            }
        }
        summary.max_epoch = summary.max_epoch.max(e.epoch);
        if e.has_wall() {
            summary.wall_events += 1;
        }
        events.push(e);
    }
    summary.events = events.len();
    if summary.events != declared {
        return Err(fail(
            1,
            format!(
                "header declares {declared} events but {} lines follow",
                summary.events
            ),
        ));
    }
    Ok((p, summary, events))
}

/// Validates a JSONL trace against the `gnn-trace/1` schema, returning
/// a summary of what it contains.
pub fn validate_jsonl(input: &str) -> Result<TraceSummary, ValidateError> {
    check_and_collect(input).map(|(_, summary, _)| summary)
}

/// Validates and reloads a JSONL trace into a [`WorldTrace`] for
/// offline reporting. The message-size histogram is not part of the
/// JSONL schema, so the reloaded trace carries an empty one.
pub fn parse_jsonl(input: &str) -> Result<WorldTrace, ValidateError> {
    let (p, _, events) = check_and_collect(input)?;
    let mut per_rank: Vec<Vec<Event>> = (0..p).map(|_| Vec::new()).collect();
    for e in events {
        per_rank[e.rank as usize].push(e);
    }
    for events in &mut per_rank {
        events.sort_by_key(|e| e.seq);
    }
    Ok(WorldTrace {
        per_rank,
        msg_sizes: Histogram::pow2_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::export::jsonl_string;
    use crate::recorder::RankTracer;

    fn sample() -> String {
        let mut t0 = RankTracer::new(0);
        t0.set_epoch(0);
        t0.begin_span(SpanKind::Epoch, Phase::Other);
        t0.op(EventKind::Send, Phase::P2p, Some(1), 64, 0, 0, 1e-4);
        t0.op(EventKind::Retransmit, Phase::P2p, Some(1), 64, 0, 0, 1e-4);
        t0.end_span();
        let mut t1 = RankTracer::new(1);
        t1.set_epoch(0);
        t1.op(EventKind::Recv, Phase::P2p, Some(0), 0, 64, 0, 1e-4);
        jsonl_string(&WorldTrace::collect(vec![t0, t1]))
    }

    #[test]
    fn accepts_exporter_output() {
        let s = sample();
        let summary = validate_jsonl(&s).unwrap();
        assert_eq!(summary.p, 2);
        assert_eq!(summary.events, 4);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.ops, 3);
        assert_eq!(summary.max_epoch, 0);
        // Retransmit bytes are wire overhead, not logical volume.
        assert_eq!(summary.logical_bytes_sent, 64);
        assert_eq!(summary.retransmit_wire_bytes, 64);
    }

    #[test]
    fn reload_roundtrips_aggregates() {
        let s = sample();
        let trace = parse_jsonl(&s).unwrap();
        assert_eq!(trace.p(), 2);
        assert_eq!(trace.phase_bytes_total(Phase::P2p), 64);
        let roots = trace.span_tree(0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].kind, SpanKind::Epoch);
        // Reload → re-export is byte identical (determinism survives a
        // round trip).
        assert_eq!(jsonl_string(&trace), s);
    }

    #[test]
    fn rejects_bad_schema_and_missing_header() {
        let bad = sample().replacen("gnn-trace/1", "gnn-trace/99", 1);
        let e = validate_jsonl(&bad).unwrap_err();
        assert!(e.msg.contains("unsupported schema"), "{e}");
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("{\"type\":\"event\"}").is_err());
    }

    #[test]
    fn rejects_vocabulary_and_ordering_violations() {
        let good = sample();
        let bad_kind = good.replacen("\"kind\":\"send\"", "\"kind\":\"teleport\"", 1);
        assert!(validate_jsonl(&bad_kind)
            .unwrap_err()
            .msg
            .contains("unknown kind"));
        let bad_phase = good.replacen("\"phase\":\"p2p\"", "\"phase\":\"warp\"", 1);
        assert!(validate_jsonl(&bad_phase)
            .unwrap_err()
            .msg
            .contains("unknown phase"));
        // Event-count mismatch against the header.
        let truncated: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(validate_jsonl(&truncated)
            .unwrap_err()
            .msg
            .contains("declares"));
        // Duplicate seq on one rank.
        let mut lines: Vec<&str> = good.lines().collect();
        let dup = lines[2];
        lines.push(dup);
        let doubled: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate_jsonl(&doubled).is_err());
    }

    fn dual_sample() -> String {
        let mut t0 = RankTracer::with_wall_anchor(0, std::time::Instant::now());
        t0.set_epoch(0);
        t0.begin_span(SpanKind::Epoch, Phase::Other);
        t0.op(EventKind::Send, Phase::P2p, Some(1), 64, 0, 0, 1e-4);
        t0.end_span();
        let mut t1 = RankTracer::with_wall_anchor(1, std::time::Instant::now());
        t1.set_epoch(0);
        t1.op(EventKind::Recv, Phase::P2p, Some(0), 0, 64, 0, 1e-4);
        jsonl_string(&WorldTrace::collect(vec![t0, t1]))
    }

    #[test]
    fn accepts_both_legacy_and_dual_clock_schemas() {
        // Legacy modeled-only: valid, zero wall events.
        let legacy = sample();
        assert_eq!(validate_jsonl(&legacy).unwrap().wall_events, 0);
        // Dual-clock: valid under the same schema version, every event
        // stamped.
        let dual = dual_sample();
        let summary = validate_jsonl(&dual).unwrap();
        assert_eq!(summary.wall_events, summary.events);
        assert!(summary.events > 0);
    }

    #[test]
    fn dual_clock_reload_roundtrips_byte_identically() {
        let s = dual_sample();
        let trace = parse_jsonl(&s).unwrap();
        assert!(trace.has_wall());
        assert_eq!(jsonl_string(&trace), s);
    }

    #[test]
    fn rejects_half_present_wall_pair() {
        let dual = dual_sample();
        // Strip just one of the pair from the first event line.
        let lone = regex_like_strip(&dual, "\"wall_dur\":");
        let e = validate_jsonl(&lone).unwrap_err();
        assert!(e.msg.contains("must appear together"), "{e}");
    }

    /// Removes `key:value` (and its leading/trailing comma as needed)
    /// from the first event line containing it — a tiny helper so the
    /// test doesn't need a JSON rewriter.
    fn regex_like_strip(input: &str, key: &str) -> String {
        let mut out = Vec::new();
        let mut done = false;
        for line in input.lines() {
            if !done {
                if let Some(start) = line.find(key) {
                    let rest = &line[start..];
                    let end = rest
                        .find(['}', ','])
                        .map(|i| start + i)
                        .unwrap_or(line.len());
                    // Also eat the separator before the pair.
                    let pre = line[..start].trim_end_matches(',').len();
                    out.push(format!("{}{}", &line[..pre], &line[end..]));
                    done = true;
                    continue;
                }
            }
            out.push(line.to_string());
        }
        out.join("\n") + "\n"
    }

    #[test]
    fn rejects_unknown_fields_and_negative_times() {
        let good = sample();
        let extra = good.replacen("\"ts\":", "\"surprise\":1,\"ts\":", 1);
        assert!(validate_jsonl(&extra)
            .unwrap_err()
            .msg
            .contains("unknown field"));
        let negative = good.replacen("\"dur\":0.0001", "\"dur\":-1", 1);
        assert!(validate_jsonl(&negative).is_err());
    }
}
