//! Observability for the SPMD simulator: structured tracing, a metrics
//! registry, and bottleneck-rank attribution.
//!
//! The paper's central claim is that epoch time is set by the
//! *bottleneck* process — GVB partitioning wins precisely because it
//! minimizes the **maximum send volume** of any rank. This crate turns
//! every simulated run into an explainable timeline that makes the
//! bottleneck visible:
//!
//! * [`phase`] — the [`Phase`] taxonomy of the paper's timing breakdown
//!   (shared with `gnn-comm`'s per-phase statistics, which re-exports it).
//! * [`event`] — the span/event model: every communication op, compute
//!   kernel, and injected retransmission becomes a fixed-size, `Copy`
//!   [`Event`] on a per-rank modeled-time axis; structural [`SpanKind`]
//!   spans (epoch → forward/backward → SpMM) nest via parent links.
//! * [`recorder`] — [`RankTracer`], the lock-free per-rank recorder
//!   (each rank owns one; no cross-thread synchronization on the hot
//!   path), and [`WorldTrace`], the collected run.
//! * [`metrics`] — [`MetricsRegistry`]: counters, gauges, and
//!   fixed-bucket [`Histogram`]s (message sizes, per-epoch send
//!   volumes) with deterministic JSON output.
//! * [`export`] — JSONL event logs (versioned schema
//!   [`SCHEMA_VERSION`]), Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` / Perfetto, and a per-epoch text timeline.
//! * [`report`] — [`BottleneckReport`]: per-epoch ranking of processes
//!   by max send volume and modeled time, naming the critical-path rank
//!   (the paper's Figs. 6–7 analysis as a first-class tool).
//! * [`validate`] — a dependency-free schema validator for emitted
//!   JSONL (used by tests and the CI smoke job).
//! * [`merge`] — cross-process trace stitching: unions per-rank JSONL
//!   files from the process backend and aligns their wall clocks with
//!   the rendezvous-estimated per-rank offsets (`trace-report --merge`).
//! * [`json`] — the minimal JSON parser backing `validate` and the
//!   `trace-report` binary.
//!
//! Tracing is zero-overhead when off: the recorder is an `Option` at the
//! call site, events are `Copy` (no per-event heap traffic), and the
//! event buffer grows amortized like `EpochBuffers` — steady-state
//! epochs with tracing disabled perform no tracing work at all.
//!
//! Determinism: events are stamped with per-rank sequence numbers and
//! modeled-time offsets; a modeled-only recorder ([`RankTracer::new`])
//! never exports a wall field, so two runs of the seeded simulator emit
//! byte-identical JSONL. Dual-clock recorders
//! ([`RankTracer::with_wall_anchor`], used by the process backend)
//! additionally stamp every event with monotonic wall offsets — those
//! traces are deterministic functions of the recorded run (re-exporting
//! or merging the same files is byte-stable), but wall values naturally
//! differ between runs.

pub mod event;
pub mod export;
pub mod json;
pub mod merge;
pub mod metrics;
pub mod phase;
pub mod recorder;
pub mod report;
pub mod validate;

pub use event::{Event, EventKind, SpanKind, NO_PARENT, NO_PEER};
pub use export::{
    chrome_trace_string, chrome_trace_string_wall, jsonl_string, text_timeline, write_to_file,
};
pub use merge::{merge_aligned, merge_world, offsets_json, parse_offsets_json};
pub use metrics::{Histogram, MetricValue, MetricsRegistry};
pub use phase::{Phase, PHASES};
pub use recorder::{PhaseAgg, RankTracer, SpanNode, WorldTrace};
pub use report::{BottleneckReport, EpochAttribution, RankEpoch};
pub use validate::{parse_jsonl, validate_jsonl, TraceSummary, ValidateError};

/// Version tag written into every exported trace header. Bump when the
/// event schema changes shape.
pub const SCHEMA_VERSION: &str = "gnn-trace/1";
