//! The phases of the paper's timing breakdown.
//!
//! Lived in `gnn-comm`'s stats module originally; moved here so the
//! tracer, the metrics registry, and the per-phase statistics all speak
//! one taxonomy. `gnn_comm::stats` re-exports these types, so existing
//! `gnn_comm::Phase` paths keep working.

/// The phases of the paper's timing breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Local SpMM/GEMM work, plus gather/pack/allocate time (the paper
    /// folds packing into "local computation").
    LocalCompute,
    /// The sparsity-aware row exchange (1D algorithm).
    AllToAll,
    /// The sparsity-oblivious block-row broadcast.
    Bcast,
    /// Partial-result reduction (1.5D algorithm; weight-gradient reduce).
    AllReduce,
    /// Point-to-point Isend/Recv traffic (1.5D stage loop).
    P2p,
    /// Anything else.
    Other,
    /// Transport-level retry overhead: retransmitted wire bytes, backoff
    /// waits, and discarded corrupt/duplicate frames. Never part of the
    /// logical communication volume.
    Retransmit,
    /// Pipelined comm/compute overlap: the *exposed* remainder of
    /// nonblocking communication that local compute could not hide
    /// (`max(0, comm − compute)` per pipeline stage). The hidden part
    /// is tracked separately and never charged to the modeled clock.
    Overlap,
}

/// All phases, in breakdown display order.
pub const PHASES: [Phase; 8] = [
    Phase::LocalCompute,
    Phase::AllToAll,
    Phase::Bcast,
    Phase::AllReduce,
    Phase::P2p,
    Phase::Other,
    Phase::Retransmit,
    Phase::Overlap,
];

impl Phase {
    /// Dense index into per-phase counter arrays (`0..PHASES.len()`).
    pub fn index(self) -> usize {
        match self {
            Phase::LocalCompute => 0,
            Phase::AllToAll => 1,
            Phase::Bcast => 2,
            Phase::AllReduce => 3,
            Phase::P2p => 4,
            Phase::Other => 5,
            Phase::Retransmit => 6,
            Phase::Overlap => 7,
        }
    }

    /// Stable machine-readable name (trace schema vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Phase::LocalCompute => "local_compute",
            Phase::AllToAll => "alltoall",
            Phase::Bcast => "bcast",
            Phase::AllReduce => "allreduce",
            Phase::P2p => "p2p",
            Phase::Other => "other",
            Phase::Retransmit => "retransmit",
            Phase::Overlap => "overlap",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(s: &str) -> Option<Phase> {
        PHASES.iter().copied().find(|p| p.name() == s)
    }

    /// True for phases whose modeled time is communication (everything
    /// except `LocalCompute`).
    pub fn is_comm(self) -> bool {
        !matches!(self, Phase::LocalCompute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_distinct() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn names_roundtrip() {
        for p in PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn comm_split() {
        assert!(!Phase::LocalCompute.is_comm());
        assert!(Phase::AllToAll.is_comm());
        assert!(Phase::Other.is_comm());
        assert!(Phase::Overlap.is_comm());
    }
}
