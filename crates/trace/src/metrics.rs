//! A small metrics registry: counters, gauges, and fixed-bucket
//! histograms with deterministic JSON output.
//!
//! The registry is *not* a hot-path structure — per-op accounting stays
//! in `RankStats` and the tracer's preallocated histograms; the registry
//! is the end-of-run unification point where stats, trace aggregates,
//! and run metadata become one queryable, exportable model (the
//! `--metrics-out` artifact).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram over `u64` samples (message sizes, volumes).
///
/// Buckets are `(-∞, bounds[0]], (bounds[0], bounds[1]], …, (last, ∞)`;
/// all storage is preallocated at construction, so [`Histogram::record`]
/// never allocates and is safe on the steady-state path.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Power-of-two byte buckets from 64 B to 64 MiB — the message-size
    /// distribution's default shape.
    pub fn pow2_bytes() -> Self {
        Self::new((6..=26).map(|e| 1u64 << e).collect())
    }

    /// Records one sample. Never allocates.
    pub fn record(&mut self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram with identical bounds.
    ///
    /// # Panics
    /// Panics on a bounds mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(
            out,
            "],\"count\":{},\"sum\":{},\"max\":{}}}",
            self.count, self.sum, self.max
        );
    }
}

/// One registered metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Distribution.
    Hist(Histogram),
}

/// A named collection of metrics. Keys are dotted paths with optional
/// `{label=value}` suffixes (e.g. `comm.bytes_sent{rank=3,phase=p2p}`);
/// iteration and JSON output are in sorted key order, so two identical
/// runs serialize identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    map: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or overwrites) a counter.
    pub fn counter(&mut self, key: impl Into<String>, v: u64) {
        self.map.insert(key.into(), MetricValue::Counter(v));
    }

    /// Adds to a counter, creating it at zero first.
    pub fn add(&mut self, key: impl Into<String>, v: u64) {
        match self
            .map
            .entry(key.into())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += v,
            other => panic!("metric is not a counter: {other:?}"),
        }
    }

    /// Sets (or overwrites) a gauge.
    pub fn gauge(&mut self, key: impl Into<String>, v: f64) {
        self.map.insert(key.into(), MetricValue::Gauge(v));
    }

    /// Inserts a histogram.
    pub fn hist(&mut self, key: impl Into<String>, h: Histogram) {
        self.map.insert(key.into(), MetricValue::Hist(h));
    }

    /// Looks up a metric.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.map.get(key)
    }

    /// Convenience: counter value (None if absent or a different type).
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.map.get(key) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Convenience: gauge value (None if absent or a different type).
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        match self.map.get(key) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates metrics in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Deterministic JSON rendering of just the metrics map
    /// (`{key:value,…}`, no schema wrapper): the building block for
    /// embedding a registry in a larger object, e.g. one live-snapshot
    /// line of a metrics JSONL stream.
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.map.len() * 48);
        out.push('{');
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", crate::json::quote(k));
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{}", crate::json::fmt_f64(*g));
                }
                MetricValue::Hist(h) => h.write_json(&mut out),
            }
        }
        out.push('}');
        out
    }

    /// Deterministic JSON rendering:
    /// `{"schema":"gnn-trace/1","metrics":{key:value,…}}` with counters
    /// as integers, gauges as floats, histograms as objects.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.map.len() * 48);
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"metrics\":",
            crate::SCHEMA_VERSION
        );
        out.push_str(&self.metrics_json());
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_half_open() {
        let mut h = Histogram::new(vec![10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::pow2_bytes();
        let mut b = Histogram::pow2_bytes();
        a.record(100);
        b.record(1 << 20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn histogram_merge_rejects_different_shapes() {
        let mut a = Histogram::new(vec![1]);
        a.merge(&Histogram::new(vec![2]));
    }

    #[test]
    fn registry_json_is_sorted_and_parseable() {
        let mut r = MetricsRegistry::new();
        r.counter("z.last", 3);
        r.gauge("a.first", 1.5);
        let mut h = Histogram::new(vec![8]);
        h.record(4);
        r.hist("m.hist", h);
        let js = r.to_json();
        // Sorted: a.first before m.hist before z.last.
        let a = js.find("a.first").unwrap();
        let m = js.find("m.hist").unwrap();
        let z = js.find("z.last").unwrap();
        assert!(a < m && m < z, "{js}");
        crate::json::parse(&js).expect("valid JSON");
    }

    #[test]
    fn add_creates_and_accumulates() {
        let mut r = MetricsRegistry::new();
        r.add("c", 2);
        r.add("c", 3);
        assert_eq!(r.counter_value("c"), Some(5));
        assert_eq!(r.counter_value("missing"), None);
    }
}
