//! α–β–γ machine cost model.
//!
//! The paper analyzes its algorithms with the standard `α` (per-message
//! latency) + `β` (per-byte inverse bandwidth) model (§4.1, §4.2); local
//! SpMM compute is priced with a `γ` term (seconds per flop). Constants
//! default to Perlmutter-class hardware — A100 GPUs on 25 GB/s links —
//! so modeled epoch times land in the same regime as the paper's
//! measurements even though execution happens on a laptop.

/// Machine parameters for pricing communication and compute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds (NCCL p2p launch + network).
    pub alpha: f64,
    /// Seconds per byte (inverse link bandwidth).
    pub beta: f64,
    /// Effective local SpMM throughput in flop/s *per worker thread*.
    /// Sparse kernels on A100 reach a small fraction of peak; 1 Tflop/s
    /// is a realistic effective rate for csrmm-style kernels.
    pub flop_rate: f64,
    /// Worker threads each rank's local kernels run on (≥ 1). Compute
    /// time divides by the sub-linear speedup of
    /// [`CostModel::parallel_speedup`].
    pub threads: usize,
}

/// Marginal efficiency of each additional kernel thread: memory-bound
/// SpMM doesn't scale linearly, so thread `t` contributes `EFF^(t-1)`
/// of a full thread's throughput (≈ 0.85 on multicore CPUs).
const THREAD_EFFICIENCY: f64 = 0.85;

impl CostModel {
    /// Perlmutter-like constants: 20 µs message latency, 25 GB/s links,
    /// 1 Tflop/s effective sparse throughput, single-threaded kernels.
    pub fn perlmutter_like() -> Self {
        Self {
            alpha: 20e-6,
            beta: 1.0 / 25e9,
            flop_rate: 1e12,
            threads: 1,
        }
    }

    /// A latency-free, bandwidth-only variant (useful in tests to reason
    /// about volume terms in isolation).
    pub fn bandwidth_only() -> Self {
        Self {
            alpha: 0.0,
            beta: 1.0,
            flop_rate: f64::INFINITY,
            threads: 1,
        }
    }

    /// The same machine with `n`-threaded local kernels.
    #[must_use]
    pub fn with_threads(self, n: usize) -> Self {
        Self {
            threads: n.max(1),
            ..self
        }
    }

    /// The same machine with a different per-thread compute rate, in
    /// flop/s. This is how the CLI substitutes the *measured* single-core
    /// throughput of the active kernel backend (`train --flop-rate auto`)
    /// for the default A100-class constant.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    #[must_use]
    pub fn with_flop_rate(self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "flop rate must be finite and positive, got {rate}"
        );
        Self {
            flop_rate: rate,
            ..self
        }
    }

    /// Modeled speedup of `threads`-way kernels over serial: the sum of
    /// the geometric per-thread efficiencies `Σ EFF^(t-1)` — sub-linear,
    /// monotone, and exactly 1 for one thread.
    pub fn parallel_speedup(threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        if (THREAD_EFFICIENCY - 1.0).abs() < f64::EPSILON {
            t
        } else {
            (1.0 - THREAD_EFFICIENCY.powf(t)) / (1.0 - THREAD_EFFICIENCY)
        }
    }

    /// Point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }

    /// Binomial-tree broadcast of `bytes` to `p` ranks: `log₂p` latency
    /// steps; with pipelining the bandwidth term stays `O(bytes·β)`.
    pub fn bcast(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let logp = (p as f64).log2().ceil();
        logp * self.alpha + bytes as f64 * self.beta
    }

    /// Ring/Rabenseifner all-reduce of a `bytes`-sized buffer over `p`
    /// ranks: `2·(p−1)/p · bytes` moved per rank, `2·log₂p` latency steps.
    pub fn allreduce(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        2.0 * pf.log2().ceil() * self.alpha + 2.0 * (pf - 1.0) / pf * bytes as f64 * self.beta
    }

    /// Pairwise all-to-allv: `p − 1` point-to-point exchanges; the
    /// bandwidth term is the larger of what this rank sends and receives
    /// in total (links are bidirectional; the bottleneck direction
    /// dominates). This matches the paper's
    /// `α(P−1) + (P−1)·cut_P(G)·f·β` bound, which prices the *maximum*
    /// per-pair volume.
    pub fn alltoallv(&self, send_bytes: u64, recv_bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64 - 1.0) * self.alpha + send_bytes.max(recv_bytes) as f64 * self.beta
    }

    /// Local compute of `flops` floating-point operations across the
    /// model's worker threads.
    pub fn compute(&self, flops: u64) -> f64 {
        flops as f64 / (self.flop_rate * Self::parallel_speedup(self.threads))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::perlmutter_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_affine() {
        let m = CostModel {
            alpha: 1.0,
            beta: 2.0,
            flop_rate: 1.0,
            threads: 1,
        };
        assert_eq!(m.p2p(0), 1.0);
        assert_eq!(m.p2p(10), 21.0);
    }

    #[test]
    fn collectives_are_free_on_one_rank() {
        let m = CostModel::perlmutter_like();
        assert_eq!(m.bcast(1_000_000, 1), 0.0);
        assert_eq!(m.allreduce(1_000_000, 1), 0.0);
        assert_eq!(m.alltoallv(5, 5, 1), 0.0);
    }

    #[test]
    fn bcast_latency_scales_logarithmically() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.0,
            flop_rate: 1.0,
            threads: 1,
        };
        assert_eq!(m.bcast(0, 2), 1.0);
        assert_eq!(m.bcast(0, 8), 3.0);
        assert_eq!(m.bcast(0, 9), 4.0);
    }

    #[test]
    fn alltoallv_prices_bottleneck_direction() {
        let m = CostModel {
            alpha: 0.0,
            beta: 1.0,
            flop_rate: 1.0,
            threads: 1,
        };
        assert_eq!(m.alltoallv(100, 40, 4), 100.0);
        assert_eq!(m.alltoallv(40, 100, 4), 100.0);
    }

    #[test]
    fn allreduce_bandwidth_approaches_2x() {
        let m = CostModel {
            alpha: 0.0,
            beta: 1.0,
            flop_rate: 1.0,
            threads: 1,
        };
        let t = m.allreduce(1000, 1024);
        assert!((t - 2.0 * 1023.0 / 1024.0 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn compute_uses_flop_rate() {
        let m = CostModel {
            alpha: 0.0,
            beta: 0.0,
            flop_rate: 100.0,
            threads: 1,
        };
        assert_eq!(m.compute(250), 2.5);
    }

    #[test]
    fn thread_speedup_is_sublinear_and_monotone() {
        assert_eq!(CostModel::parallel_speedup(1), 1.0);
        assert_eq!(CostModel::parallel_speedup(0), 1.0);
        let mut prev = 1.0;
        for t in 2..=16 {
            let s = CostModel::parallel_speedup(t);
            assert!(s > prev, "speedup must grow with threads");
            assert!(s < t as f64, "speedup must stay sub-linear");
            prev = s;
        }
    }

    #[test]
    fn with_threads_divides_compute_time() {
        let m = CostModel {
            alpha: 0.0,
            beta: 0.0,
            flop_rate: 100.0,
            threads: 1,
        };
        let serial = m.compute(1000);
        let par = m.with_threads(4).compute(1000);
        assert!(par < serial);
        assert!((serial / par - CostModel::parallel_speedup(4)).abs() < 1e-12);
        // Communication terms are untouched by the thread count.
        assert_eq!(m.with_threads(4).p2p(64), m.p2p(64));
    }

    #[test]
    fn with_flop_rate_rescales_compute_only() {
        let m = CostModel::perlmutter_like();
        let fast = m.with_flop_rate(2e12);
        assert_eq!(fast.compute(1000), m.compute(1000) / 2.0);
        assert_eq!(fast.p2p(64), m.p2p(64));
        assert_eq!(fast.allreduce(1 << 20, 8), m.allreduce(1 << 20, 8));
    }

    #[test]
    #[should_panic(expected = "flop rate must be finite and positive")]
    fn with_flop_rate_rejects_nonpositive() {
        let _ = CostModel::perlmutter_like().with_flop_rate(0.0);
    }

    #[test]
    fn perlmutter_constants_plausible() {
        let m = CostModel::perlmutter_like();
        // 1 MB broadcast across 64 ranks should be tens of microseconds
        // of bandwidth plus a few latency hops — well under 1 ms.
        let t = m.bcast(1 << 20, 64);
        assert!(t > 0.0 && t < 1e-3);
    }
}
