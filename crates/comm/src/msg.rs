//! Typed message payloads exchanged between ranks.
//!
//! The algorithms in this workspace move exactly three kinds of data:
//! dense row blocks (`f64` buffers), index lists (`u32`), and row blocks
//! *with* their row indices attached (the sparsity-aware exchanges). A
//! small enum beats byte-serialization: zero copies, and the byte sizes
//! used for accounting are the true wire sizes of the equivalent MPI/NCCL
//! messages.

/// One message payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Nothing (synchronization or an empty v-exchange slot).
    Empty,
    /// A dense `f64` buffer (rows of `H`, gradient blocks, …).
    F64(Vec<f64>),
    /// An index list (`NnzCols` requests, row id headers).
    U32(Vec<u32>),
    /// Row indices plus their dense rows, the sparsity-aware unit of
    /// exchange: "here are rows `idx` of my `H` block".
    Rows {
        /// Global row ids.
        idx: Vec<u32>,
        /// Row-major `idx.len() × f` data.
        data: Vec<f64>,
    },
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Payload {
    /// Wire size in bytes (8 per f64, 4 per u32).
    pub fn bytes(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U32(v) => 4 * v.len() as u64,
            Payload::Rows { idx, data } => 4 * idx.len() as u64 + 8 * data.len() as u64,
        }
    }

    /// End-to-end integrity checksum: FNV-1a over the variant tag and
    /// the little-endian bytes of every element, exactly what a wire
    /// serialization would hash. Dependency-free and deterministic.
    pub fn checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        match self {
            Payload::Empty => h = fnv_bytes(h, &[0]),
            Payload::F64(v) => {
                h = fnv_bytes(h, &[1]);
                for x in v {
                    h = fnv_bytes(h, &x.to_bits().to_le_bytes());
                }
            }
            Payload::U32(v) => {
                h = fnv_bytes(h, &[2]);
                for x in v {
                    h = fnv_bytes(h, &x.to_le_bytes());
                }
            }
            Payload::Rows { idx, data } => {
                h = fnv_bytes(h, &[3]);
                for x in idx {
                    h = fnv_bytes(h, &x.to_le_bytes());
                }
                for x in data {
                    h = fnv_bytes(h, &x.to_bits().to_le_bytes());
                }
            }
        }
        h
    }

    /// Flips one bit somewhere in the payload (or returns `false` for
    /// [`Payload::Empty`], which carries no bits to damage). Used by the
    /// fault injector to model genuine in-flight corruption that the
    /// receiver must catch via [`Payload::checksum`].
    pub fn flip_bit(&mut self, which: u64) -> bool {
        match self {
            Payload::Empty => false,
            Payload::F64(v) => flip_f64(v, which),
            Payload::U32(v) => flip_u32(v, which),
            Payload::Rows { idx, data } => {
                if data.is_empty() {
                    flip_u32(idx, which)
                } else {
                    flip_f64(data, which)
                }
            }
        }
    }

    /// Unwraps an `F64` payload.
    ///
    /// # Panics
    /// Panics on a different variant (protocol error).
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {:?}", kind(&other)),
        }
    }

    /// Unwraps a `U32` payload.
    ///
    /// # Panics
    /// Panics on a different variant (protocol error).
    pub fn into_u32(self) -> Vec<u32> {
        match self {
            Payload::U32(v) => v,
            other => panic!("expected U32 payload, got {:?}", kind(&other)),
        }
    }

    /// Unwraps a `Rows` payload.
    ///
    /// # Panics
    /// Panics on a different variant (protocol error).
    pub fn into_rows(self) -> (Vec<u32>, Vec<f64>) {
        match self {
            Payload::Rows { idx, data } => (idx, data),
            other => panic!("expected Rows payload, got {:?}", kind(&other)),
        }
    }
}

fn flip_f64(v: &mut [f64], which: u64) -> bool {
    if v.is_empty() {
        return false;
    }
    let slot = (which as usize) % v.len();
    let bit = (which / v.len() as u64) % 64;
    v[slot] = f64::from_bits(v[slot].to_bits() ^ (1u64 << bit));
    true
}

fn flip_u32(v: &mut [u32], which: u64) -> bool {
    if v.is_empty() {
        return false;
    }
    let slot = (which as usize) % v.len();
    let bit = ((which / v.len() as u64) % 32) as u32;
    v[slot] ^= 1u32 << bit;
    true
}

fn kind(p: &Payload) -> &'static str {
    match p {
        Payload::Empty => "Empty",
        Payload::F64(_) => "F64",
        Payload::U32(_) => "U32",
        Payload::Rows { .. } => "Rows",
    }
}

/// A tagged, framed message; the tag carries the phase/op kind so
/// protocol mismatches fail fast instead of silently mis-pairing
/// buffers, while `seq`/`gen`/`checksum` are the reliable-transport
/// header: per-channel sequence number, epoch-attempt generation, and
/// the sender-computed FNV checksum the receiver verifies end to end.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Op discriminator (see [`crate::ctx`] constants).
    pub tag: u8,
    /// Per-(src → dst) channel sequence number, monotone across the
    /// whole run (never reset on failover).
    pub seq: u64,
    /// Failover generation the frame was sent in; receivers discard
    /// frames from completed (aborted) generations.
    pub gen: u32,
    /// [`Payload::checksum`] computed at send time. A mismatch at the
    /// receiver means in-flight corruption → discard + wait for the
    /// retransmit.
    pub checksum: u64,
    /// The data.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        assert_eq!(Payload::Empty.bytes(), 0);
        assert_eq!(Payload::F64(vec![0.0; 3]).bytes(), 24);
        assert_eq!(Payload::U32(vec![0; 3]).bytes(), 12);
        assert_eq!(
            Payload::Rows {
                idx: vec![1, 2],
                data: vec![0.0; 4]
            }
            .bytes(),
            8 + 32
        );
    }

    #[test]
    fn unwrap_roundtrip() {
        assert_eq!(Payload::F64(vec![1.0]).into_f64(), vec![1.0]);
        assert_eq!(Payload::U32(vec![7]).into_u32(), vec![7]);
        let (i, d) = Payload::Rows {
            idx: vec![3],
            data: vec![9.0],
        }
        .into_rows();
        assert_eq!((i, d), (vec![3], vec![9.0]));
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn wrong_variant_panics() {
        Payload::U32(vec![1]).into_f64();
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let base = Payload::Rows {
            idx: vec![4, 9],
            data: vec![1.5, -2.25, 0.0, 3.0],
        };
        let good = base.checksum();
        for which in 0..256u64 {
            let mut bad = base.clone();
            assert!(bad.flip_bit(which));
            assert_ne!(bad.checksum(), good, "flip {which} went undetected");
        }
    }

    #[test]
    fn checksum_distinguishes_variants_and_is_stable() {
        // Same raw bits, different variants → different checksums.
        assert_ne!(
            Payload::F64(vec![]).checksum(),
            Payload::U32(vec![]).checksum()
        );
        assert_ne!(Payload::Empty.checksum(), Payload::F64(vec![]).checksum());
        // Deterministic across calls.
        let p = Payload::F64(vec![1.0, 2.0]);
        assert_eq!(p.checksum(), p.checksum());
    }

    #[test]
    fn empty_payload_has_no_bits_to_flip() {
        let mut p = Payload::Empty;
        assert!(!p.flip_bit(0));
        let mut z = Payload::F64(vec![]);
        assert!(!z.flip_bit(3));
    }
}
