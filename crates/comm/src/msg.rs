//! Typed message payloads exchanged between ranks.
//!
//! The algorithms in this workspace move exactly three kinds of data:
//! dense row blocks (`f64` buffers), index lists (`u32`), and row blocks
//! *with* their row indices attached (the sparsity-aware exchanges). A
//! small enum beats byte-serialization: zero copies, and the byte sizes
//! used for accounting are the true wire sizes of the equivalent MPI/NCCL
//! messages.

/// One message payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Nothing (synchronization or an empty v-exchange slot).
    Empty,
    /// A dense `f64` buffer (rows of `H`, gradient blocks, …).
    F64(Vec<f64>),
    /// An index list (`NnzCols` requests, row id headers).
    U32(Vec<u32>),
    /// Row indices plus their dense rows, the sparsity-aware unit of
    /// exchange: "here are rows `idx` of my `H` block".
    Rows {
        /// Global row ids.
        idx: Vec<u32>,
        /// Row-major `idx.len() × f` data.
        data: Vec<f64>,
    },
}

impl Payload {
    /// Wire size in bytes (8 per f64, 4 per u32).
    pub fn bytes(&self) -> u64 {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U32(v) => 4 * v.len() as u64,
            Payload::Rows { idx, data } => 4 * idx.len() as u64 + 8 * data.len() as u64,
        }
    }

    /// Unwraps an `F64` payload.
    ///
    /// # Panics
    /// Panics on a different variant (protocol error).
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {:?}", kind(&other)),
        }
    }

    /// Unwraps a `U32` payload.
    ///
    /// # Panics
    /// Panics on a different variant (protocol error).
    pub fn into_u32(self) -> Vec<u32> {
        match self {
            Payload::U32(v) => v,
            other => panic!("expected U32 payload, got {:?}", kind(&other)),
        }
    }

    /// Unwraps a `Rows` payload.
    ///
    /// # Panics
    /// Panics on a different variant (protocol error).
    pub fn into_rows(self) -> (Vec<u32>, Vec<f64>) {
        match self {
            Payload::Rows { idx, data } => (idx, data),
            other => panic!("expected Rows payload, got {:?}", kind(&other)),
        }
    }
}

fn kind(p: &Payload) -> &'static str {
    match p {
        Payload::Empty => "Empty",
        Payload::F64(_) => "F64",
        Payload::U32(_) => "U32",
        Payload::Rows { .. } => "Rows",
    }
}

/// A tagged message; the tag carries the phase/op kind so protocol
/// mismatches fail fast instead of silently mis-pairing buffers.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Op discriminator (see [`crate::ctx`] constants).
    pub tag: u8,
    /// Set by the fault injector: this copy arrived corrupted (checksum
    /// failure); the receiver discards it and waits for the retransmit.
    pub corrupt: bool,
    /// The data.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        assert_eq!(Payload::Empty.bytes(), 0);
        assert_eq!(Payload::F64(vec![0.0; 3]).bytes(), 24);
        assert_eq!(Payload::U32(vec![0; 3]).bytes(), 12);
        assert_eq!(
            Payload::Rows {
                idx: vec![1, 2],
                data: vec![0.0; 4]
            }
            .bytes(),
            8 + 32
        );
    }

    #[test]
    fn unwrap_roundtrip() {
        assert_eq!(Payload::F64(vec![1.0]).into_f64(), vec![1.0]);
        assert_eq!(Payload::U32(vec![7]).into_u32(), vec![7]);
        let (i, d) = Payload::Rows {
            idx: vec![3],
            data: vec![9.0],
        }
        .into_rows();
        assert_eq!((i, d), (vec![3], vec![9.0]));
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn wrong_variant_panics() {
        Payload::U32(vec![1]).into_f64();
    }
}
