//! The per-rank communication handle.
//!
//! A `RankCtx` is what each SPMD rank closure receives: point-to-point
//! messaging plus the three collectives the paper's algorithms use. Every
//! operation records volumes and cost-model time into the rank's
//! [`RankStats`].
//!
//! ## Pricing conventions
//!
//! * `send`/`recv` (phase `P2p`): each side pays `α + bytes·β` for its own
//!   direction of traffic — a rank's modeled time reflects the bytes
//!   crossing *its* NIC.
//! * `alltoallv` (phase `AllToAll`): priced once per call as
//!   `(P−1)·α + max(sent, received)·β`, matching the paper's §4.1 bound.
//! * `bcast` (phase `Bcast`): priced on every participant as a pipelined
//!   binomial tree.
//! * `allreduce_sum` (phase `AllReduce`): priced on every group member
//!   with the ring-allreduce formula; recorded bytes are the logical
//!   buffer size.
//! * Execution topology (who moves bytes through which channel) is
//!   whatever is simplest — costs always come from the model, so the
//!   simulator's internal shortcuts never leak into results.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};

use crate::cost::CostModel;
use crate::msg::{Msg, Payload};
use crate::stats::{Phase, RankStats};

/// Message tags, one per operation kind; mismatches indicate an SPMD
/// protocol bug and fail fast.
pub(crate) mod tag {
    pub const P2P: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const ALLTOALLV: u8 = 3;
    pub const REDUCE_UP: u8 = 4;
    pub const REDUCE_DOWN: u8 = 5;
    pub const GATHER: u8 = 6;
}

/// Per-rank handle passed to the SPMD closure by
/// [`crate::world::ThreadWorld::run`].
pub struct RankCtx {
    rank: usize,
    p: usize,
    model: CostModel,
    to: Vec<Sender<Msg>>,
    from: Vec<Receiver<Msg>>,
    barrier: Arc<Barrier>,
    stats: RankStats,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        p: usize,
        model: CostModel,
        to: Vec<Sender<Msg>>,
        from: Vec<Receiver<Msg>>,
        barrier: Arc<Barrier>,
    ) -> Self {
        Self { rank, p, model, to, from, barrier, stats: RankStats::default() }
    }

    /// This rank's id in `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The cost model pricing this run.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Read access to the accumulated statistics.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    pub(crate) fn into_stats(self) -> RankStats {
        self.stats
    }

    fn raw_send(&self, dst: usize, tag: u8, payload: Payload) {
        self.to[dst].send(Msg { tag, payload }).expect("peer rank hung up");
    }

    fn raw_recv(&self, src: usize, expect_tag: u8) -> Payload {
        let msg = self.from[src].recv().expect("peer rank hung up");
        assert_eq!(
            msg.tag, expect_tag,
            "rank {}: protocol mismatch receiving from {} (got tag {}, expected {})",
            self.rank, src, msg.tag, expect_tag
        );
        msg.payload
    }

    /// Non-blocking point-to-point send (phase `P2p`). Pays
    /// `α + bytes·β` on this rank.
    pub fn send(&mut self, dst: usize, payload: Payload) {
        assert_ne!(dst, self.rank, "self-sends indicate an algorithm bug");
        let bytes = payload.bytes();
        let c = self.stats.phase_mut(Phase::P2p);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.modeled_seconds += self.model.p2p(bytes);
        self.raw_send(dst, tag::P2P, payload);
    }

    /// Blocking point-to-point receive (phase `P2p`). Pays
    /// `α + bytes·β` on this rank.
    pub fn recv(&mut self, src: usize) -> Payload {
        let payload = self.raw_recv(src, tag::P2P);
        let bytes = payload.bytes();
        let c = self.stats.phase_mut(Phase::P2p);
        c.ops += 1;
        c.bytes_recv += bytes;
        c.modeled_seconds += self.model.p2p(bytes);
        payload
    }

    /// Broadcast from `root` (phase `Bcast`): the root passes its payload,
    /// everyone else passes `None` and receives the root's payload.
    pub fn bcast(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        let out = if self.rank == root {
            let payload = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.p {
                if dst != root {
                    self.raw_send(dst, tag::BCAST, payload.clone());
                }
            }
            payload
        } else {
            assert!(payload.is_none(), "non-root rank supplied a broadcast payload");
            self.raw_recv(root, tag::BCAST)
        };
        let bytes = out.bytes();
        let c = self.stats.phase_mut(Phase::Bcast);
        c.ops += 1;
        if self.rank == root {
            c.bytes_sent += bytes;
        } else {
            c.bytes_recv += bytes;
        }
        c.modeled_seconds += self.model.bcast(bytes, self.p);
        out
    }

    /// Variable all-to-all (phase `AllToAll`): `sends[d]` goes to rank
    /// `d`; returns what every rank sent to us (`out[s]` from rank `s`).
    /// The self-slot is moved locally without being priced.
    ///
    /// # Panics
    /// Panics if `sends.len() != p`.
    pub fn alltoallv(&mut self, mut sends: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(sends.len(), self.p, "alltoallv needs one payload per rank");
        let mut sent_bytes = 0u64;
        let me = self.rank;
        // Shifted order avoids all ranks hammering rank 0's queue first.
        for off in 1..self.p {
            let dst = (me + off) % self.p;
            let payload = std::mem::replace(&mut sends[dst], Payload::Empty);
            sent_bytes += payload.bytes();
            self.raw_send(dst, tag::ALLTOALLV, payload);
        }
        let mut out: Vec<Payload> = (0..self.p).map(|_| Payload::Empty).collect();
        out[me] = std::mem::replace(&mut sends[me], Payload::Empty);
        let mut recv_bytes = 0u64;
        for off in 1..self.p {
            let src = (me + self.p - off) % self.p;
            let payload = self.raw_recv(src, tag::ALLTOALLV);
            recv_bytes += payload.bytes();
            out[src] = payload;
        }
        let c = self.stats.phase_mut(Phase::AllToAll);
        c.ops += 1;
        c.bytes_sent += sent_bytes;
        c.bytes_recv += recv_bytes;
        c.modeled_seconds += self.model.alltoallv(sent_bytes, recv_bytes, self.p);
        out
    }

    /// Sum-all-reduce of `buf` over `group` (phase `AllReduce`). Every
    /// member must call with the same group slice (which must contain this
    /// rank); afterwards all members hold the element-wise sum.
    pub fn allreduce_sum(&mut self, buf: &mut [f64], group: &[usize]) {
        debug_assert!(group.contains(&self.rank), "rank not in its own allreduce group");
        let g = group.len();
        let bytes = 8 * buf.len() as u64;
        if g > 1 {
            let root = group[0];
            if self.rank == root {
                for &src in &group[1..] {
                    let part = self.raw_recv(src, tag::REDUCE_UP).into_f64();
                    assert_eq!(part.len(), buf.len(), "allreduce length mismatch");
                    for (a, b) in buf.iter_mut().zip(part) {
                        *a += b;
                    }
                }
                for &dst in &group[1..] {
                    self.raw_send(dst, tag::REDUCE_DOWN, Payload::F64(buf.to_vec()));
                }
            } else {
                self.raw_send(root, tag::REDUCE_UP, Payload::F64(buf.to_vec()));
                let summed = self.raw_recv(root, tag::REDUCE_DOWN).into_f64();
                buf.copy_from_slice(&summed);
            }
        }
        let c = self.stats.phase_mut(Phase::AllReduce);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.bytes_recv += bytes;
        c.modeled_seconds += self.model.allreduce(bytes, g);
    }

    /// Gathers every rank's payload to `root` (phase `Other`; used for
    /// assembling final results, not priced as training communication).
    pub fn gather(&mut self, root: usize, payload: Payload) -> Option<Vec<Payload>> {
        if self.rank == root {
            let mut out: Vec<Payload> = (0..self.p).map(|_| Payload::Empty).collect();
            out[root] = payload;
            for src in 0..self.p {
                if src != root {
                    out[src] = self.raw_recv(src, tag::GATHER);
                }
            }
            Some(out)
        } else {
            self.raw_send(root, tag::GATHER, payload);
            None
        }
    }

    /// Barrier over all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Runs `work`, recording its wall time and `flops` into
    /// `LocalCompute` with modeled time `flops / flop_rate`.
    pub fn compute<R>(&mut self, flops: u64, work: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = work();
        let c = self.stats.phase_mut(Phase::LocalCompute);
        c.ops += 1;
        c.flops += flops;
        c.modeled_seconds += self.model.compute(flops);
        c.wall_seconds += t0.elapsed().as_secs_f64();
        out
    }

    /// Records compute cost without timing a closure (when the caller
    /// already knows the flop count of work done elsewhere).
    pub fn record_compute(&mut self, flops: u64) {
        let c = self.stats.phase_mut(Phase::LocalCompute);
        c.ops += 1;
        c.flops += flops;
        c.modeled_seconds += self.model.compute(flops);
    }
}
