//! The per-rank communication handle.
//!
//! A `RankCtx` is what each SPMD rank closure receives: point-to-point
//! messaging plus the three collectives the paper's algorithms use. Every
//! operation records volumes and cost-model time into the rank's
//! [`RankStats`].
//!
//! ## Pricing conventions
//!
//! * `send`/`recv` (phase `P2p`): each side pays `α + bytes·β` for its own
//!   direction of traffic — a rank's modeled time reflects the bytes
//!   crossing *its* NIC.
//! * `alltoallv` (phase `AllToAll`): priced once per call as
//!   `(P−1)·α + max(sent, received)·β`, matching the paper's §4.1 bound.
//! * `bcast` (phase `Bcast`): priced on every participant as a pipelined
//!   binomial tree.
//! * `allreduce_sum` (phase `AllReduce`): priced on every group member
//!   with the ring-allreduce formula; recorded bytes are the logical
//!   buffer size.
//! * Execution topology (who moves bytes through which channel) is
//!   whatever is simplest — costs always come from the model, so the
//!   simulator's internal shortcuts never leak into results.
//!
//! ## Robustness
//!
//! Blocking receives and barriers are watched: instead of hanging forever
//! on a protocol bug, a rank whose wait exceeds the world timeout panics
//! with a structured [`crate::error::DeadlockReport`] that
//! [`crate::ThreadWorld::try_run`] converts into
//! [`crate::WorldError::Deadlock`].
//!
//! Every frame carries a reliable-transport header: a per-channel
//! sequence number, the failover generation, and an FNV checksum over
//! the payload computed at send time. The receiver verifies the checksum
//! (discarding damaged frames and waiting for the retransmission),
//! discards duplicates by sequence number, and treats an out-of-order
//! future frame as a transport violation. The sender retries failed
//! attempts under capped exponential backoff on the modeled-time axis;
//! all retry overhead — backoff waits, retransmitted wire bytes,
//! receiver time wasted on discarded frames — is charged to
//! [`Phase::Retransmit`], never to the op's own phase, so
//! `bytes_sent`/`bytes_recv` stay the logical communication volumes the
//! paper's tables report. Injected delays are the one exception: a slow
//! link is part of the op's real cost and stays on the op's phase.
//!
//! In failover mode (`ThreadWorld::with_failover`), a crashed peer does
//! not kill the world: the survivor that observes the closed channel
//! broadcasts an `ABORT` control frame and unwinds the epoch attempt
//! with [`crate::EpochAbortPanic`]; all survivors rendezvous at the
//! death-aware [`RankCtx::commit_epoch`] barrier and retry the epoch in
//! the next generation with the shrunken grid. Stale frames from the
//! aborted generation are discarded by their `gen` stamp.

use std::panic::panic_any;
use std::sync::Arc;
use std::time::Instant;

use gnn_trace::{EventKind, RankTracer, SpanKind};

use crate::cost::CostModel;
use crate::error::{ColumnLostPanic, CrashPanic, DeadlockPanic, EpochAbortPanic, WaitKind};
use crate::fault::FaultInjector;
use crate::msg::{Msg, Payload};
use crate::stats::{Phase, RankStats};
use crate::transport::{RecvOutcome, Transport, TryRecvOutcome};

/// Message tags, one per operation kind; mismatches indicate an SPMD
/// protocol bug and fail fast.
pub(crate) mod tag {
    pub const P2P: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const ALLTOALLV: u8 = 3;
    pub const REDUCE_UP: u8 = 4;
    pub const REDUCE_DOWN: u8 = 5;
    pub const GATHER: u8 = 6;
    /// Failover control frame: "this generation is aborted".
    pub const ABORT: u8 = 7;
}

/// Human-readable tag name for diagnostics.
pub(crate) fn tag_name(t: u8) -> &'static str {
    match t {
        tag::P2P => "P2P",
        tag::BCAST => "BCAST",
        tag::ALLTOALLV => "ALLTOALLV",
        tag::REDUCE_UP => "REDUCE_UP",
        tag::REDUCE_DOWN => "REDUCE_DOWN",
        tag::GATHER => "GATHER",
        tag::ABORT => "ABORT",
        _ => "UNKNOWN",
    }
}

/// Configuration for the pipelined comm/compute overlap window shared
/// by the trainer, the analytic estimator, and the bench CLI. Lives in
/// `gnn-comm` so every layer speaks the same knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlapConfig {
    /// Run the 1D/1.5D SpMM exchange through the nonblocking pipeline.
    pub enabled: bool,
    /// How many chunks each epoch's remote fetches are split into.
    pub chunks: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            chunks: 2,
        }
    }
}

impl OverlapConfig {
    /// Overlap enabled with `chunks` pipeline chunks (clamped to ≥ 1).
    pub fn on(chunks: usize) -> Self {
        Self {
            enabled: true,
            chunks: chunks.max(1),
        }
    }

    /// Overlap disabled (the blocking executor).
    pub fn off() -> Self {
        Self::default()
    }
}

/// Handle to a nonblocking operation posted with [`RankCtx::isend`] /
/// [`RankCtx::irecv`]. Redeem with [`RankCtx::wait`] (or poll with
/// [`RankCtx::test`]); handles are valid until the next `set_epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingOp(usize);

/// One outstanding nonblocking op.
enum PendingSlot {
    /// Eagerly-pushed send: complete as soon as it is posted (channel
    /// buffering plays the role of MPI's eager protocol).
    Send,
    /// Posted receive; `payload` fills in when channel progress (a
    /// blocking [`RankCtx::wait`] or a nonblocking [`RankCtx::test`])
    /// delivers the matching frame.
    Recv {
        src: usize,
        phase: Phase,
        payload: Option<Payload>,
        done: bool,
    },
}

/// Accounting state of one open overlap window: per-stage send charges,
/// the current stage's receive/collective charges, and the compute that
/// has run since the last stage boundary (available to hide comm).
struct OverlapWindow {
    /// `(ops, bytes)` posted per declared pipeline stage.
    stage_send: Vec<(u64, u64)>,
    /// Boundaries crossed so far.
    cur_stage: usize,
    /// Receives completed since the last boundary.
    recv_ops: u64,
    /// Bytes received since the last boundary.
    recv_bytes: u64,
    /// Collective time (pipelined broadcasts) since the last boundary.
    coll_seconds: f64,
    /// Modeled compute seconds since the last boundary.
    compute_seconds: f64,
}

/// Per-rank handle passed to the SPMD closure by
/// [`crate::world::ThreadWorld::run`].
pub struct RankCtx {
    rank: usize,
    p: usize,
    model: CostModel,
    /// The pluggable link layer (thread channels or real sockets); see
    /// [`crate::transport`].
    transport: Box<dyn Transport>,
    injector: Option<Arc<FaultInjector>>,
    /// Trainer-reported epoch (fault-plan coordinates + diagnostics).
    epoch: Option<usize>,
    /// Operation counter within the current epoch (fault-plan coordinate).
    op_in_epoch: u64,
    /// Per-destination next sequence number (monotone across the whole
    /// run, never reset — stale-frame discipline depends on it).
    next_seq: Vec<u64>,
    /// Per-source next expected sequence number.
    expect_seq: Vec<u64>,
    /// Failover generation: bumped at each poisoned epoch commit.
    gen: u32,
    /// Whether the world tolerates crashes via degraded-mode failover.
    failover: bool,
    /// Guard so the ABORT broadcast goes out at most once per generation.
    abort_sent_gen: Option<u32>,
    stats: RankStats,
    /// Structured event recorder; `None` (a single branch per op) when
    /// tracing is off, so the steady-state path stays allocation-free.
    tracer: Option<Box<RankTracer>>,
    /// Outstanding nonblocking ops ([`RankCtx::isend`]/[`RankCtx::irecv`]).
    pending: Vec<PendingSlot>,
    /// Open overlap window, if any ([`RankCtx::overlap_begin`]).
    window: Option<OverlapWindow>,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        p: usize,
        model: CostModel,
        transport: Box<dyn Transport>,
        injector: Option<Arc<FaultInjector>>,
        tracer: Option<Box<RankTracer>>,
        failover: bool,
    ) -> Self {
        Self {
            rank,
            p,
            model,
            transport,
            injector,
            epoch: None,
            op_in_epoch: 0,
            next_seq: vec![0; p],
            expect_seq: vec![0; p],
            gen: 0,
            failover,
            abort_sent_gen: None,
            stats: RankStats::default(),
            tracer,
            pending: Vec::new(),
            window: None,
        }
    }

    /// This rank's id in `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The cost model pricing this run.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Read access to the accumulated statistics.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Declares the start of training epoch `e`. Gives crash faults their
    /// `(epoch, op)` coordinate system and tags deadlock reports with the
    /// phase of training they occurred in.
    pub fn set_epoch(&mut self, e: usize) {
        self.epoch = Some(e);
        self.op_in_epoch = 0;
        // A failover abort can unwind mid-pipeline; stale handles and a
        // half-open window must not leak into the retried epoch.
        self.pending.clear();
        self.window = None;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.set_epoch(e);
        }
        self.maybe_crash();
    }

    /// The epoch last declared via [`RankCtx::set_epoch`].
    pub fn epoch(&self) -> Option<usize> {
        self.epoch
    }

    pub(crate) fn into_parts(self) -> (RankStats, Option<Box<RankTracer>>) {
        (self.stats, self.tracer)
    }

    /// True when this rank is recording a structured trace.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Opens a structural trace span (epoch, forward, SpMM, …). A no-op
    /// (one branch) when tracing is off. Every `span_begin` must be
    /// matched by a [`RankCtx::span_end`] on all control-flow paths.
    pub fn span_begin(&mut self, kind: SpanKind, phase: Phase) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.begin_span(kind, phase);
        }
    }

    /// Closes the innermost open trace span. No-op when tracing is off.
    pub fn span_end(&mut self) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.end_span();
        }
    }

    /// Records one completed op into the tracer (no-op when off).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn trace_op(
        &mut self,
        kind: EventKind,
        phase: Phase,
        peer: Option<usize>,
        bytes_sent: u64,
        bytes_recv: u64,
        flops: u64,
        dur: f64,
    ) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.op(kind, phase, peer, bytes_sent, bytes_recv, flops, dur);
        }
    }

    /// Advances the per-epoch op counter and fires any due crash fault.
    fn op_tick(&mut self) {
        self.op_in_epoch += 1;
        self.maybe_crash();
    }

    fn maybe_crash(&mut self) {
        if let Some(inj) = &self.injector {
            if inj.crash_due(self.rank, self.epoch, self.op_in_epoch) {
                if self.failover {
                    // Register the death *before* unwinding so survivors
                    // that observe the closed channel (or the shrunken
                    // commit barrier) can attribute it.
                    self.transport.mark_dead(self.rank, self.gen);
                }
                panic_any(CrashPanic {
                    rank: self.rank,
                    epoch: self.epoch,
                    op: self.op_in_epoch,
                });
            }
        }
    }

    /// Link-layer send: retries under the injector's per-attempt verdicts
    /// (drop/corrupt re-rolled each attempt, capped exponential backoff on
    /// the modeled clock) until a clean frame is queued. All retry
    /// overhead is charged to [`Phase::Retransmit`]; injected link delay
    /// stays on the op's own `phase`.
    fn raw_send(&mut self, dst: usize, tag: u8, payload: Payload, phase: Phase) {
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let bytes = payload.bytes();
        let checksum = payload.checksum();
        let mut duplicate = false;
        if let Some(inj) = self.injector.clone() {
            let mut extra = 0.0;
            let mut wire_overhead = 0u64;
            let mut overhead_frames = 0u64;
            let mut attempt: u32 = 0;
            loop {
                let fate = inj.transmit_fate(self.rank, dst, seq, attempt);
                if fate.delay_seconds > 0.0 {
                    // A slow link delays the message once; that is part of
                    // the op's real cost, not retry overhead.
                    let f = &mut self.stats.faults;
                    f.delays += 1;
                    f.delay_seconds += fate.delay_seconds;
                    self.stats.phase_mut(phase).modeled_seconds += fate.delay_seconds;
                    self.trace_op(
                        EventKind::Retransmit,
                        phase,
                        Some(dst),
                        0,
                        0,
                        0,
                        fate.delay_seconds,
                    );
                }
                if fate.dropped || fate.corrupted {
                    {
                        let f = &mut self.stats.faults;
                        if fate.dropped {
                            f.drops += 1;
                        } else {
                            f.corruptions += 1;
                        }
                        f.retries += 1;
                    }
                    if fate.corrupted {
                        // The frame reaches the receiver bit-flipped; the
                        // checksum (computed pre-flight) exposes the
                        // damage end to end. An Empty payload has no bits
                        // to flip, so the header checksum is mangled
                        // instead.
                        let mut damaged = payload.clone();
                        let flipped = damaged.flip_bit(seq ^ ((attempt as u64) << 32));
                        let sum = if flipped { checksum } else { !checksum };
                        self.push(
                            dst,
                            Msg {
                                tag,
                                seq,
                                gen: self.gen,
                                checksum: sum,
                                payload: damaged,
                            },
                        );
                    }
                    // Timeout + NACK round trip, then the wire time of the
                    // retransmission itself.
                    extra += inj.plan().backoff_seconds(attempt) + self.model.p2p(bytes);
                    wire_overhead += bytes;
                    overhead_frames += 1;
                    attempt += 1;
                    continue;
                }
                duplicate = fate.duplicated;
                if duplicate {
                    // Spurious retransmit: the good frame goes out twice.
                    self.stats.faults.duplicates += 1;
                    extra += self.model.p2p(bytes);
                    wire_overhead += bytes;
                    overhead_frames += 1;
                }
                break;
            }
            if extra > 0.0 || wire_overhead > 0 {
                let c = self.stats.phase_mut(Phase::Retransmit);
                c.ops += overhead_frames;
                c.bytes_sent += wire_overhead;
                c.modeled_seconds += extra;
                self.stats.faults.retransmit_bytes += wire_overhead;
                self.trace_op(
                    EventKind::Retransmit,
                    Phase::Retransmit,
                    Some(dst),
                    wire_overhead,
                    0,
                    0,
                    extra,
                );
                if let Some(t) = self.tracer.as_deref_mut() {
                    // Each overhead frame is one more wire transmission.
                    for _ in 0..overhead_frames {
                        t.message(bytes);
                    }
                }
            }
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.message(bytes);
        }
        let msg = Msg {
            tag,
            seq,
            gen: self.gen,
            checksum,
            payload,
        };
        let dup = duplicate.then(|| msg.clone());
        self.push(dst, msg);
        if let Some(d) = dup {
            self.push(dst, d);
        }
    }

    fn push(&mut self, dst: usize, msg: Msg) {
        let tag = msg.tag;
        if self.transport.send(dst, msg).is_err() {
            if self.failover {
                // Dead peer: the frame evaporates; the death is handled
                // at the next blocking receive or the commit barrier.
                return;
            }
            panic!(
                "rank {}: peer rank {dst} hung up (crashed?) — cannot deliver a {} message",
                self.rank,
                tag_name(tag)
            );
        }
    }

    /// Broadcasts the ABORT control frame for generation `gen` to every
    /// peer, at most once per generation. Dead peers' closed channels are
    /// ignored.
    fn broadcast_abort(&mut self, gen: u32) {
        if self.abort_sent_gen == Some(gen) {
            return;
        }
        self.abort_sent_gen = Some(gen);
        let payload = Payload::Empty;
        let checksum = payload.checksum();
        for dst in 0..self.p {
            if dst == self.rank {
                continue;
            }
            let _ = self.transport.send(
                dst,
                Msg {
                    tag: tag::ABORT,
                    seq: 0,
                    gen,
                    checksum,
                    payload: payload.clone(),
                },
            );
        }
    }

    /// Abandons the current epoch attempt: propagate the abort, close any
    /// trace spans the unwind would otherwise leave dangling, and panic
    /// with [`EpochAbortPanic`] for the trainer's `catch_unwind`.
    fn abort_epoch(&mut self, gen: u32) -> ! {
        debug_assert!(self.failover, "abort protocol requires failover mode");
        self.broadcast_abort(gen);
        // Unwinding through a pipeline: drop its handles and window so
        // the retried attempt starts clean.
        self.pending.clear();
        self.window = None;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.close_open_spans();
        }
        panic_any(EpochAbortPanic { generation: gen });
    }

    /// One step of the reliable-transport receive state machine: decides
    /// the fate of a frame pulled off `src`'s channel. Returns the frame
    /// when it is the next in-order, checksum-clean delivery; `None` when
    /// it was consumed by the protocol (stale generation, detected
    /// corruption, duplicate, old ABORT). Shared between the blocking
    /// receive path and the nonblocking pending-op progress path.
    fn transport_accept(&mut self, src: usize, frame: Msg) -> Option<Msg> {
        if frame.tag == tag::ABORT {
            match frame.gen.cmp(&self.gen) {
                // Stale abort from an already-retired generation.
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    self.transport.wd_end(self.rank);
                    self.abort_epoch(frame.gen);
                }
                std::cmp::Ordering::Greater => panic!(
                    "rank {}: ABORT from future generation {} (commit barrier violated)",
                    self.rank, frame.gen
                ),
            }
            return None;
        }
        if frame.gen < self.gen {
            // Stale data from an aborted epoch attempt: discard, but
            // advance the channel cursor past it so the first
            // current-generation frame lands on the expected seq.
            self.expect_seq[src] = self.expect_seq[src].max(frame.seq + 1);
            return None;
        }
        assert_eq!(
            frame.gen, self.gen,
            "rank {}: data frame from future generation (commit barrier violated)",
            self.rank
        );
        if frame.payload.checksum() != frame.checksum {
            // In-flight corruption caught end to end: pay for the
            // useless transfer, wait for the retransmit.
            self.stats.faults.corruptions_detected += 1;
            let waste = self.model.p2p(frame.payload.bytes());
            let c = self.stats.phase_mut(Phase::Retransmit);
            c.ops += 1;
            c.modeled_seconds += waste;
            self.trace_op(
                EventKind::Retransmit,
                Phase::Retransmit,
                Some(src),
                0,
                0,
                0,
                waste,
            );
            None
        } else if frame.seq < self.expect_seq[src] {
            // Duplicate of a frame already delivered (spurious
            // retransmit): discard by sequence number.
            self.stats.faults.duplicates_discarded += 1;
            let waste = self.model.p2p(frame.payload.bytes());
            let c = self.stats.phase_mut(Phase::Retransmit);
            c.ops += 1;
            c.modeled_seconds += waste;
            self.trace_op(
                EventKind::Retransmit,
                Phase::Retransmit,
                Some(src),
                0,
                0,
                0,
                waste,
            );
            None
        } else if frame.seq > self.expect_seq[src] {
            panic!(
                "rank {}: transport violation — frame {} from rank {src} arrived \
                 before frame {} (reordered delivery)",
                self.rank, frame.seq, self.expect_seq[src]
            );
        } else {
            self.expect_seq[src] += 1;
            Some(frame)
        }
    }

    /// Link-layer receive: watched by the deadlock watchdog. Runs the
    /// reliable-transport state machine — stale-generation discard,
    /// end-to-end checksum verification, duplicate suppression by
    /// sequence number — and, in failover mode, converts a dead peer
    /// (closed channel or ABORT frame) into an epoch abort.
    fn raw_recv(&mut self, src: usize, expect_tag: u8) -> Payload {
        let timeout = self.transport.timeout();
        let deadline = Instant::now() + timeout;
        self.transport.wd_begin(
            self.rank,
            WaitKind::Recv,
            Some(src),
            Some(expect_tag),
            self.epoch,
        );
        let msg = loop {
            let now = Instant::now();
            if now >= deadline {
                // Leave our wait registered so the report includes us.
                let report = self.transport.wd_report(self.rank);
                panic_any(DeadlockPanic(report));
            }
            match self.transport.recv_deadline(src, deadline - now) {
                RecvOutcome::Frame(frame) => {
                    if let Some(msg) = self.transport_accept(src, frame) {
                        break msg;
                    }
                }
                RecvOutcome::TimedOut => {}
                RecvOutcome::Disconnected => {
                    self.transport.wd_end(self.rank);
                    if self.failover {
                        // The peer died mid-epoch; abandon this attempt
                        // and propagate the abort to the other survivors.
                        self.abort_epoch(self.gen);
                    }
                    panic!(
                        "rank {}: peer rank {src} hung up (crashed?) while waiting \
                         for a {} message",
                        self.rank,
                        tag_name(expect_tag)
                    );
                }
            }
        };
        self.transport.wd_end(self.rank);
        assert_eq!(
            msg.tag, expect_tag,
            "rank {}: protocol mismatch receiving from {} (got tag {}, expected {})",
            self.rank, src, msg.tag, expect_tag
        );
        msg.payload
    }

    /// True when the world tolerates crashes via degraded-mode failover.
    pub fn failover_enabled(&self) -> bool {
        self.failover
    }

    /// Current failover generation — the number of epoch attempts that
    /// were poisoned by a death and retried. 0 in a fault-free run.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// All ranks recorded dead so far (failover mode), in death order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.transport.deaths().iter().map(|d| d.rank).collect()
    }

    /// Ranks whose deaths are *sealed*: recorded in a generation strictly
    /// before the current one. A rank that died in generation `g` either
    /// registered its death before the generation-`g` commit barrier
    /// released (the barrier cannot release while it is alive and
    /// unarrived), so every survivor entering `g+1` observes the same
    /// set. Deaths in the current generation are deliberately excluded —
    /// they are racy to observe and are handled by the abort/retry path
    /// instead. Role assignment (who covers for whom) must only ever use
    /// this sealed set, never [`RankCtx::dead_ranks`].
    pub fn sealed_dead_ranks(&self) -> Vec<usize> {
        let gen = self.gen;
        let mut dead: Vec<usize> = self
            .transport
            .deaths()
            .iter()
            .filter(|d| d.gen < gen)
            .map(|d| d.rank)
            .collect();
        dead.sort_unstable();
        dead
    }

    /// Failover epoch commit: every survivor rendezvouses at a
    /// death-aware barrier, then all make the *same* decision — `true`
    /// (the epoch committed; apply its side effects) or `false` (a rank
    /// died during the attempt; discard and retry under the next
    /// generation). A no-op returning `true` outside failover mode.
    ///
    /// Determinism argument: the poisoned test (any death recorded in
    /// the current generation) is evaluated exactly once, by the party
    /// that trips the barrier release, and the published verdict is what
    /// every survivor acts on. Per-rank evaluation after release would
    /// race against a peer that commits cleanly and crashes at the very
    /// next `set_epoch`: ranks reading the death registry on either side
    /// of that crash would split into different generations and
    /// deadlock. A death that lands after the verdict is published is
    /// uniformly *not* part of this commit; every survivor trips over it
    /// in the next epoch attempt and the following commit retires it.
    pub fn commit_epoch(&mut self) -> bool {
        if !self.failover {
            return true;
        }
        self.transport
            .wd_begin(self.rank, WaitKind::Barrier, None, None, self.epoch);
        let committed = self.transport.commit_wait(self.gen);
        let Some(committed) = committed else {
            let report = self.transport.wd_report(self.rank);
            panic_any(DeadlockPanic(report));
        };
        self.transport.wd_end(self.rank);
        if !committed {
            self.gen += 1;
        }
        committed
    }

    /// Tears the world down: block row `block_row`'s entire replica group
    /// is dead, so no survivor holds the data needed to cover for it and
    /// the recovery ladder falls through to checkpoint restart.
    pub fn replica_column_lost(&mut self, block_row: usize) -> ! {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.close_open_spans();
        }
        panic_any(ColumnLostPanic { block_row });
    }

    /// Non-blocking point-to-point send (phase `P2p`). Pays
    /// `α + bytes·β` on this rank.
    pub fn send(&mut self, dst: usize, payload: Payload) {
        assert_ne!(dst, self.rank, "self-sends indicate an algorithm bug");
        self.op_tick();
        let bytes = payload.bytes();
        let dur = self.model.p2p(bytes);
        let c = self.stats.phase_mut(Phase::P2p);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.modeled_seconds += dur;
        self.trace_op(EventKind::Send, Phase::P2p, Some(dst), bytes, 0, 0, dur);
        self.raw_send(dst, tag::P2P, payload, Phase::P2p);
    }

    /// Blocking point-to-point receive (phase `P2p`). Pays
    /// `α + bytes·β` on this rank.
    pub fn recv(&mut self, src: usize) -> Payload {
        self.op_tick();
        let payload = self.raw_recv(src, tag::P2P);
        let bytes = payload.bytes();
        let dur = self.model.p2p(bytes);
        let c = self.stats.phase_mut(Phase::P2p);
        c.ops += 1;
        c.bytes_recv += bytes;
        c.modeled_seconds += dur;
        self.trace_op(EventKind::Recv, Phase::P2p, Some(src), 0, bytes, 0, dur);
        payload
    }

    // ---- nonblocking op layer -------------------------------------------
    //
    // `isend`/`irecv` return `PendingOp` handles redeemed by `wait`/
    // `wait_all` (or polled with `test`). Sends are eager — the buffered
    // channel plays MPI's eager protocol — and still run through
    // `raw_send`, so the checksum/retransmit/fault machinery composes
    // unchanged. Inside an overlap window ([`RankCtx::overlap_begin`])
    // the ops charge their bytes and op counts to their natural phase
    // with **zero** modeled seconds; the time is settled at each
    // [`RankCtx::overlap_stage`] boundary as exposed-vs-hidden against
    // the compute that ran since the previous boundary. Outside a
    // window they price exactly like their blocking counterparts.

    /// Nonblocking point-to-point send on `phase`. `stage` names the
    /// pipeline chunk this send belongs to when a window is open (its
    /// wire time is settled at that stage's boundary); ignored outside
    /// a window.
    pub fn isend(&mut self, dst: usize, payload: Payload, phase: Phase, stage: usize) -> PendingOp {
        assert_ne!(dst, self.rank, "self-sends indicate an algorithm bug");
        self.op_tick();
        let bytes = payload.bytes();
        let dur = match self.window.as_mut() {
            Some(w) => {
                assert!(
                    stage < w.stage_send.len(),
                    "isend stage {stage} out of range ({} chunks declared)",
                    w.stage_send.len()
                );
                w.stage_send[stage].0 += 1;
                w.stage_send[stage].1 += bytes;
                0.0
            }
            None => self.model.p2p(bytes),
        };
        let c = self.stats.phase_mut(phase);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.modeled_seconds += dur;
        self.trace_op(EventKind::Send, phase, Some(dst), bytes, 0, 0, dur);
        self.raw_send(dst, tag::P2P, payload, phase);
        self.pending.push(PendingSlot::Send);
        PendingOp(self.pending.len() - 1)
    }

    /// Posts a nonblocking receive from `src` on `phase`. No data moves
    /// until [`RankCtx::wait`] (or channel progress via
    /// [`RankCtx::test`]) matches the frame.
    pub fn irecv(&mut self, src: usize, phase: Phase) -> PendingOp {
        self.op_tick();
        self.pending.push(PendingSlot::Recv {
            src,
            phase,
            payload: None,
            done: false,
        });
        PendingOp(self.pending.len() - 1)
    }

    /// Stores a delivered payload into the earliest outstanding posted
    /// receive for `src` — channels are FIFO, and receives posted in
    /// order must complete in order.
    fn deliver_to_earliest(&mut self, src: usize, delivered: Payload) {
        for slot in self.pending.iter_mut() {
            if let PendingSlot::Recv {
                src: s,
                payload,
                done: false,
                ..
            } = slot
            {
                if *s == src && payload.is_none() {
                    *payload = Some(delivered);
                    return;
                }
            }
        }
        panic!(
            "rank {}: frame from rank {src} arrived with no matching posted irecv",
            self.rank
        );
    }

    /// Nonblocking progress on `src`'s channel: drains every frame that
    /// is already sitting in the queue through the reliable-transport
    /// state machine and files the deliveries against posted receives.
    fn try_progress(&mut self, src: usize) {
        loop {
            match self.transport.try_recv(src) {
                TryRecvOutcome::Frame(frame) => {
                    if let Some(msg) = self.transport_accept(src, frame) {
                        assert_eq!(
                            msg.tag,
                            tag::P2P,
                            "rank {}: protocol mismatch on nonblocking progress from {} \
                             (got tag {})",
                            self.rank,
                            src,
                            msg.tag
                        );
                        self.deliver_to_earliest(src, msg.payload);
                    }
                }
                TryRecvOutcome::Empty => break,
                TryRecvOutcome::Disconnected => {
                    if self.failover {
                        self.abort_epoch(self.gen);
                    }
                    panic!(
                        "rank {}: peer rank {src} hung up (crashed?) during nonblocking \
                         progress",
                        self.rank
                    );
                }
            }
        }
    }

    /// Tests a pending op for completion without blocking (drains any
    /// frames already queued first). Completion does not consume the
    /// handle — redeem it with [`RankCtx::wait`].
    pub fn test(&mut self, op: PendingOp) -> bool {
        match &self.pending[op.0] {
            PendingSlot::Send => true,
            PendingSlot::Recv { src, .. } => {
                let src = *src;
                self.try_progress(src);
                matches!(
                    &self.pending[op.0],
                    PendingSlot::Recv {
                        payload: Some(_),
                        ..
                    } | PendingSlot::Recv { done: true, .. }
                )
            }
        }
    }

    /// Blocks until `op` completes and returns its payload (`Empty` for
    /// sends). Frames arriving for *other* posted receives on the same
    /// channel are filed against them, so out-of-order waits are safe.
    ///
    /// # Panics
    /// Panics if the op was already waited on.
    pub fn wait(&mut self, op: PendingOp) -> Payload {
        self.op_tick();
        let (src, phase) = match &mut self.pending[op.0] {
            PendingSlot::Send => return Payload::Empty,
            PendingSlot::Recv {
                src, phase, done, ..
            } => {
                assert!(!*done, "pending op waited on twice");
                (*src, *phase)
            }
        };
        let payload = loop {
            if let PendingSlot::Recv { payload, done, .. } = &mut self.pending[op.0] {
                if let Some(p) = payload.take() {
                    *done = true;
                    break p;
                }
            }
            let delivered = self.raw_recv(src, tag::P2P);
            self.deliver_to_earliest(src, delivered);
        };
        let bytes = payload.bytes();
        let dur = match self.window.as_mut() {
            Some(w) => {
                w.recv_ops += 1;
                w.recv_bytes += bytes;
                0.0
            }
            None => self.model.p2p(bytes),
        };
        let c = self.stats.phase_mut(phase);
        c.ops += 1;
        c.bytes_recv += bytes;
        c.modeled_seconds += dur;
        self.trace_op(EventKind::Recv, phase, Some(src), 0, bytes, 0, dur);
        payload
    }

    /// Waits on every handle in order, returning their payloads.
    pub fn wait_all(&mut self, ops: &[PendingOp]) -> Vec<Payload> {
        ops.iter().map(|&op| self.wait(op)).collect()
    }

    // ---- overlap window --------------------------------------------------

    /// Opens a pipelined overlap window with `chunks` declared stages.
    /// Until [`RankCtx::overlap_end`], nonblocking ops charge zero
    /// modeled seconds to their phase; each [`RankCtx::overlap_stage`]
    /// boundary settles the stage's communication time against the
    /// compute that ran since the previous boundary: the exposed
    /// remainder `max(0, comm − compute)` goes to [`Phase::Overlap`]'s
    /// modeled clock, the hidden part only to the overlap counters.
    pub fn overlap_begin(&mut self, chunks: usize) {
        assert!(chunks >= 1, "an overlap window needs at least one chunk");
        assert!(
            self.window.is_none(),
            "rank {}: overlap windows do not nest",
            self.rank
        );
        self.span_begin(SpanKind::Overlap, Phase::Overlap);
        self.window = Some(OverlapWindow {
            stage_send: vec![(0, 0); chunks],
            cur_stage: 0,
            recv_ops: 0,
            recv_bytes: 0,
            coll_seconds: 0.0,
            compute_seconds: 0.0,
        });
    }

    /// Closes the current pipeline stage: prices the stage's
    /// communication (duplex `max` of the send and receive directions
    /// plus any pipelined collectives), splits it into exposed vs.
    /// hidden against the compute since the last boundary, and charges
    /// only the exposed part to the modeled clock. Call after the
    /// stage's waits complete and before its folding compute runs.
    pub fn overlap_stage(&mut self) {
        let (alpha, beta) = (self.model.alpha, self.model.beta);
        let w = self
            .window
            .as_mut()
            .expect("overlap_stage outside an overlap window");
        let stage = w.cur_stage;
        assert!(
            stage < w.stage_send.len(),
            "more overlap_stage calls than declared chunks"
        );
        let (send_ops, send_bytes) = w.stage_send[stage];
        let send_cost = send_ops as f64 * alpha + send_bytes as f64 * beta;
        let recv_cost = w.recv_ops as f64 * alpha + w.recv_bytes as f64 * beta;
        let comm = send_cost.max(recv_cost) + w.coll_seconds;
        let exposed = (comm - w.compute_seconds).max(0.0);
        let hidden = comm - exposed;
        w.cur_stage += 1;
        w.recv_ops = 0;
        w.recv_bytes = 0;
        w.coll_seconds = 0.0;
        w.compute_seconds = 0.0;
        let c = self.stats.phase_mut(Phase::Overlap);
        c.ops += 1;
        c.modeled_seconds += exposed;
        self.stats.overlap.stages += 1;
        self.stats.overlap.raw_comm_seconds += comm;
        self.stats.overlap.hidden_seconds += hidden;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.op(
                EventKind::OverlapWait,
                Phase::Overlap,
                None,
                0,
                0,
                0,
                exposed,
            );
            t.op_async(
                EventKind::OverlapHidden,
                Phase::Overlap,
                None,
                0,
                0,
                0,
                hidden,
            );
        }
    }

    /// Closes the overlap window.
    ///
    /// # Panics
    /// Panics unless every declared chunk was settled with
    /// [`RankCtx::overlap_stage`].
    pub fn overlap_end(&mut self) {
        let w = self
            .window
            .take()
            .expect("overlap_end without overlap_begin");
        assert_eq!(
            w.cur_stage,
            w.stage_send.len(),
            "rank {}: overlap window closed with unsettled chunks",
            self.rank
        );
        self.span_end();
    }

    /// Broadcast from `root` inside an overlap window (phase `Bcast`):
    /// same wire protocol and byte accounting as [`RankCtx::bcast`],
    /// but its modeled tree time accrues to the current pipeline
    /// stage's collective cost instead of the modeled clock — the
    /// CAGNET-style fused broadcast/compute pipeline.
    pub fn bcast_overlapped(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        assert!(
            self.window.is_some(),
            "bcast_overlapped outside an overlap window"
        );
        self.op_tick();
        let out = if self.rank == root {
            let payload = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.p {
                if dst != root {
                    self.raw_send(dst, tag::BCAST, payload.clone(), Phase::Bcast);
                }
            }
            payload
        } else {
            assert!(
                payload.is_none(),
                "non-root rank supplied a broadcast payload"
            );
            self.raw_recv(root, tag::BCAST)
        };
        let bytes = out.bytes();
        let dur = self.model.bcast(bytes, self.p);
        self.window.as_mut().unwrap().coll_seconds += dur;
        let is_root = self.rank == root;
        let c = self.stats.phase_mut(Phase::Bcast);
        c.ops += 1;
        if is_root {
            c.bytes_sent += bytes;
        } else {
            c.bytes_recv += bytes;
        }
        let (sent, recv) = if is_root { (bytes, 0) } else { (0, bytes) };
        self.trace_op(
            EventKind::Bcast,
            Phase::Bcast,
            Some(root),
            sent,
            recv,
            0,
            0.0,
        );
        out
    }

    /// Broadcast from `root` (phase `Bcast`): the root passes its payload,
    /// everyone else passes `None` and receives the root's payload.
    pub fn bcast(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        self.op_tick();
        let out = if self.rank == root {
            let payload = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.p {
                if dst != root {
                    self.raw_send(dst, tag::BCAST, payload.clone(), Phase::Bcast);
                }
            }
            payload
        } else {
            assert!(
                payload.is_none(),
                "non-root rank supplied a broadcast payload"
            );
            self.raw_recv(root, tag::BCAST)
        };
        let bytes = out.bytes();
        let dur = self.model.bcast(bytes, self.p);
        let is_root = self.rank == root;
        let c = self.stats.phase_mut(Phase::Bcast);
        c.ops += 1;
        if is_root {
            c.bytes_sent += bytes;
        } else {
            c.bytes_recv += bytes;
        }
        c.modeled_seconds += dur;
        let (sent, recv) = if is_root { (bytes, 0) } else { (0, bytes) };
        self.trace_op(
            EventKind::Bcast,
            Phase::Bcast,
            Some(root),
            sent,
            recv,
            0,
            dur,
        );
        out
    }

    /// Variable all-to-all (phase `AllToAll`): `sends[d]` goes to rank
    /// `d`; returns what every rank sent to us (`out[s]` from rank `s`).
    /// The self-slot is moved locally without being priced.
    ///
    /// # Panics
    /// Panics if `sends.len() != p`.
    pub fn alltoallv(&mut self, mut sends: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(sends.len(), self.p, "alltoallv needs one payload per rank");
        self.op_tick();
        let mut sent_bytes = 0u64;
        let me = self.rank;
        // Shifted order avoids all ranks hammering rank 0's queue first.
        for off in 1..self.p {
            let dst = (me + off) % self.p;
            let payload = std::mem::replace(&mut sends[dst], Payload::Empty);
            sent_bytes += payload.bytes();
            self.raw_send(dst, tag::ALLTOALLV, payload, Phase::AllToAll);
        }
        let mut out: Vec<Payload> = (0..self.p).map(|_| Payload::Empty).collect();
        out[me] = std::mem::replace(&mut sends[me], Payload::Empty);
        let mut recv_bytes = 0u64;
        for off in 1..self.p {
            let src = (me + self.p - off) % self.p;
            let payload = self.raw_recv(src, tag::ALLTOALLV);
            recv_bytes += payload.bytes();
            out[src] = payload;
        }
        let dur = self.model.alltoallv(sent_bytes, recv_bytes, self.p);
        let c = self.stats.phase_mut(Phase::AllToAll);
        c.ops += 1;
        c.bytes_sent += sent_bytes;
        c.bytes_recv += recv_bytes;
        c.modeled_seconds += dur;
        self.trace_op(
            EventKind::AllToAllV,
            Phase::AllToAll,
            None,
            sent_bytes,
            recv_bytes,
            0,
            dur,
        );
        out
    }

    /// Sum-all-reduce of `buf` over `group` (phase `AllReduce`). Every
    /// member must call with the same group slice (which must contain this
    /// rank); afterwards all members hold the element-wise sum.
    pub fn allreduce_sum(&mut self, buf: &mut [f64], group: &[usize]) {
        debug_assert!(
            group.contains(&self.rank),
            "rank not in its own allreduce group"
        );
        self.op_tick();
        let g = group.len();
        let bytes = 8 * buf.len() as u64;
        if g > 1 {
            let root = group[0];
            if self.rank == root {
                for &src in &group[1..] {
                    let part = self.raw_recv(src, tag::REDUCE_UP).into_f64();
                    assert_eq!(part.len(), buf.len(), "allreduce length mismatch");
                    for (a, b) in buf.iter_mut().zip(part) {
                        *a += b;
                    }
                }
                for &dst in &group[1..] {
                    self.raw_send(
                        dst,
                        tag::REDUCE_DOWN,
                        Payload::F64(buf.to_vec()),
                        Phase::AllReduce,
                    );
                }
            } else {
                self.raw_send(
                    root,
                    tag::REDUCE_UP,
                    Payload::F64(buf.to_vec()),
                    Phase::AllReduce,
                );
                let summed = self.raw_recv(root, tag::REDUCE_DOWN).into_f64();
                buf.copy_from_slice(&summed);
            }
        }
        let dur = self.model.allreduce(bytes, g);
        let c = self.stats.phase_mut(Phase::AllReduce);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.bytes_recv += bytes;
        c.modeled_seconds += dur;
        self.trace_op(
            EventKind::AllReduce,
            Phase::AllReduce,
            None,
            bytes,
            bytes,
            0,
            dur,
        );
    }

    /// Gathers every rank's payload to `root` (phase `Other`; used for
    /// assembling final results, not priced as training communication).
    pub fn gather(&mut self, root: usize, mut payload: Payload) -> Option<Vec<Payload>> {
        self.op_tick();
        // Unpriced and not counted in stats; traced as a zero-cost marker.
        self.trace_op(EventKind::Gather, Phase::Other, Some(root), 0, 0, 0, 0.0);
        if self.rank == root {
            let out: Vec<Payload> = (0..self.p)
                .map(|src| {
                    if src == root {
                        std::mem::replace(&mut payload, Payload::Empty)
                    } else {
                        self.raw_recv(src, tag::GATHER)
                    }
                })
                .collect();
            Some(out)
        } else {
            self.raw_send(root, tag::GATHER, payload, Phase::Other);
            None
        }
    }

    /// Barrier over all ranks (watched: times out into a deadlock report
    /// instead of blocking forever when a rank never arrives). In
    /// failover mode the barrier waits only for the surviving ranks.
    pub fn barrier(&mut self) {
        self.op_tick();
        self.trace_op(EventKind::Barrier, Phase::Other, None, 0, 0, 0, 0.0);
        self.transport
            .wd_begin(self.rank, WaitKind::Barrier, None, None, self.epoch);
        let ok = if self.failover {
            self.transport.barrier_wait_alive()
        } else {
            self.transport.barrier_wait()
        };
        if !ok {
            let report = self.transport.wd_report(self.rank);
            panic_any(DeadlockPanic(report));
        }
        self.transport.wd_end(self.rank);
    }

    /// Runs `work`, recording its wall time and `flops` into
    /// `LocalCompute` with modeled time `flops / flop_rate` (scaled by any
    /// injected straggler factor).
    pub fn compute<R>(&mut self, flops: u64, work: impl FnOnce() -> R) -> R {
        self.op_tick();
        let t0 = Instant::now();
        let out = work();
        let factor = self.slow_factor();
        let dur = self.model.compute(flops) * factor;
        if let Some(w) = self.window.as_mut() {
            w.compute_seconds += dur;
        }
        let c = self.stats.phase_mut(Phase::LocalCompute);
        c.ops += 1;
        c.flops += flops;
        c.modeled_seconds += dur;
        c.wall_seconds += t0.elapsed().as_secs_f64();
        self.trace_op(
            EventKind::Compute,
            Phase::LocalCompute,
            None,
            0,
            0,
            flops,
            dur,
        );
        out
    }

    /// Records compute cost without timing a closure (when the caller
    /// already knows the flop count of work done elsewhere).
    pub fn record_compute(&mut self, flops: u64) {
        self.op_tick();
        let factor = self.slow_factor();
        let dur = self.model.compute(flops) * factor;
        if let Some(w) = self.window.as_mut() {
            w.compute_seconds += dur;
        }
        let c = self.stats.phase_mut(Phase::LocalCompute);
        c.ops += 1;
        c.flops += flops;
        c.modeled_seconds += dur;
        self.trace_op(
            EventKind::Compute,
            Phase::LocalCompute,
            None,
            0,
            0,
            flops,
            dur,
        );
    }

    fn slow_factor(&mut self) -> f64 {
        match &self.injector {
            Some(inj) => {
                let factor = inj.compute_factor(self.rank);
                if factor != 1.0 {
                    self.stats.faults.slowed_ops += 1;
                }
                factor
            }
            None => 1.0,
        }
    }
}
