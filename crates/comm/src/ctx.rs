//! The per-rank communication handle.
//!
//! A `RankCtx` is what each SPMD rank closure receives: point-to-point
//! messaging plus the three collectives the paper's algorithms use. Every
//! operation records volumes and cost-model time into the rank's
//! [`RankStats`].
//!
//! ## Pricing conventions
//!
//! * `send`/`recv` (phase `P2p`): each side pays `α + bytes·β` for its own
//!   direction of traffic — a rank's modeled time reflects the bytes
//!   crossing *its* NIC.
//! * `alltoallv` (phase `AllToAll`): priced once per call as
//!   `(P−1)·α + max(sent, received)·β`, matching the paper's §4.1 bound.
//! * `bcast` (phase `Bcast`): priced on every participant as a pipelined
//!   binomial tree.
//! * `allreduce_sum` (phase `AllReduce`): priced on every group member
//!   with the ring-allreduce formula; recorded bytes are the logical
//!   buffer size.
//! * Execution topology (who moves bytes through which channel) is
//!   whatever is simplest — costs always come from the model, so the
//!   simulator's internal shortcuts never leak into results.
//!
//! ## Robustness
//!
//! Blocking receives and barriers are watched: instead of hanging forever
//! on a protocol bug, a rank whose wait exceeds the world timeout panics
//! with a structured [`crate::error::DeadlockReport`] that
//! [`crate::ThreadWorld::try_run`] converts into
//! [`crate::WorldError::Deadlock`]. When a [`crate::fault::FaultInjector`]
//! is attached, the link layer injects delays, transient drops (with
//! modeled retransmission), corruptions (detected by the receiver,
//! retransmitted by the sender) and one-shot crashes; injected overheads
//! are charged to the affected operation's phase and counted in
//! [`crate::stats::FaultCounters`]. Retransmitted bytes are *not* added
//! to `bytes_sent`/`bytes_recv`, which stay the logical communication
//! volumes the paper's tables report.

use std::panic::panic_any;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Instant;

use gnn_trace::{EventKind, RankTracer, SpanKind};

use crate::cost::CostModel;
use crate::error::{CrashPanic, DeadlockPanic, WaitKind};
use crate::fault::FaultInjector;
use crate::msg::{Msg, Payload};
use crate::stats::{Phase, RankStats};
use crate::watchdog::{TimeoutBarrier, Watchdog};

/// Message tags, one per operation kind; mismatches indicate an SPMD
/// protocol bug and fail fast.
pub(crate) mod tag {
    pub const P2P: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const ALLTOALLV: u8 = 3;
    pub const REDUCE_UP: u8 = 4;
    pub const REDUCE_DOWN: u8 = 5;
    pub const GATHER: u8 = 6;
}

/// Human-readable tag name for diagnostics.
pub(crate) fn tag_name(t: u8) -> &'static str {
    match t {
        tag::P2P => "P2P",
        tag::BCAST => "BCAST",
        tag::ALLTOALLV => "ALLTOALLV",
        tag::REDUCE_UP => "REDUCE_UP",
        tag::REDUCE_DOWN => "REDUCE_DOWN",
        tag::GATHER => "GATHER",
        _ => "UNKNOWN",
    }
}

/// Per-rank handle passed to the SPMD closure by
/// [`crate::world::ThreadWorld::run`].
pub struct RankCtx {
    rank: usize,
    p: usize,
    model: CostModel,
    to: Vec<Sender<Msg>>,
    from: Vec<Receiver<Msg>>,
    barrier: Arc<TimeoutBarrier>,
    watchdog: Arc<Watchdog>,
    injector: Option<Arc<FaultInjector>>,
    /// Trainer-reported epoch (fault-plan coordinates + diagnostics).
    epoch: Option<usize>,
    /// Operation counter within the current epoch (fault-plan coordinate).
    op_in_epoch: u64,
    /// Monotone transmission counter (deterministic fault decisions).
    send_seq: u64,
    stats: RankStats,
    /// Structured event recorder; `None` (a single branch per op) when
    /// tracing is off, so the steady-state path stays allocation-free.
    tracer: Option<Box<RankTracer>>,
}

impl RankCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        p: usize,
        model: CostModel,
        to: Vec<Sender<Msg>>,
        from: Vec<Receiver<Msg>>,
        barrier: Arc<TimeoutBarrier>,
        watchdog: Arc<Watchdog>,
        injector: Option<Arc<FaultInjector>>,
        tracer: Option<Box<RankTracer>>,
    ) -> Self {
        Self {
            rank,
            p,
            model,
            to,
            from,
            barrier,
            watchdog,
            injector,
            epoch: None,
            op_in_epoch: 0,
            send_seq: 0,
            stats: RankStats::default(),
            tracer,
        }
    }

    /// This rank's id in `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The cost model pricing this run.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Read access to the accumulated statistics.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Declares the start of training epoch `e`. Gives crash faults their
    /// `(epoch, op)` coordinate system and tags deadlock reports with the
    /// phase of training they occurred in.
    pub fn set_epoch(&mut self, e: usize) {
        self.epoch = Some(e);
        self.op_in_epoch = 0;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.set_epoch(e);
        }
        self.maybe_crash();
    }

    /// The epoch last declared via [`RankCtx::set_epoch`].
    pub fn epoch(&self) -> Option<usize> {
        self.epoch
    }

    pub(crate) fn into_parts(self) -> (RankStats, Option<Box<RankTracer>>) {
        (self.stats, self.tracer)
    }

    /// True when this rank is recording a structured trace.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Opens a structural trace span (epoch, forward, SpMM, …). A no-op
    /// (one branch) when tracing is off. Every `span_begin` must be
    /// matched by a [`RankCtx::span_end`] on all control-flow paths.
    pub fn span_begin(&mut self, kind: SpanKind, phase: Phase) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.begin_span(kind, phase);
        }
    }

    /// Closes the innermost open trace span. No-op when tracing is off.
    pub fn span_end(&mut self) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.end_span();
        }
    }

    /// Records one completed op into the tracer (no-op when off).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn trace_op(
        &mut self,
        kind: EventKind,
        phase: Phase,
        peer: Option<usize>,
        bytes_sent: u64,
        bytes_recv: u64,
        flops: u64,
        dur: f64,
    ) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.op(kind, phase, peer, bytes_sent, bytes_recv, flops, dur);
        }
    }

    /// Advances the per-epoch op counter and fires any due crash fault.
    fn op_tick(&mut self) {
        self.op_in_epoch += 1;
        self.maybe_crash();
    }

    fn maybe_crash(&mut self) {
        if let Some(inj) = &self.injector {
            if inj.crash_due(self.rank, self.epoch, self.op_in_epoch) {
                panic_any(CrashPanic {
                    rank: self.rank,
                    epoch: self.epoch,
                    op: self.op_in_epoch,
                });
            }
        }
    }

    /// Link-layer send: consults the fault injector, charges injected
    /// overheads (delay, retransmission) to `phase`, and guarantees the
    /// uncorrupted payload is eventually delivered.
    fn raw_send(&mut self, dst: usize, tag: u8, payload: Payload, phase: Phase) {
        let seq = self.send_seq;
        self.send_seq += 1;
        let bytes = payload.bytes();
        if let Some(inj) = self.injector.clone() {
            let fate = inj.send_fate(self.rank, dst, seq);
            let mut extra = 0.0;
            let mut retries = 0u64;
            let f = &mut self.stats.faults;
            if fate.delay_seconds > 0.0 {
                f.delays += 1;
                f.delay_seconds += fate.delay_seconds;
                extra += fate.delay_seconds;
            }
            if fate.dropped {
                // First copy lost in transit: the reliable layer times out
                // and retransmits; the receiver only ever sees the retry.
                f.drops += 1;
                f.retries += 1;
                retries += 1;
                extra += inj.plan().retry_backoff_seconds + self.model.p2p(bytes);
            }
            if fate.corrupted {
                // Deliver a corrupt copy first (receiver checksum fails),
                // then retransmit the good one.
                f.corruptions += 1;
                f.retries += 1;
                retries += 1;
                extra += inj.plan().retry_backoff_seconds + self.model.p2p(bytes);
                self.push(
                    dst,
                    Msg {
                        tag,
                        corrupt: true,
                        payload: payload.clone(),
                    },
                );
            }
            let wire_overhead = bytes * retries;
            self.stats.faults.retransmit_bytes += wire_overhead;
            if extra > 0.0 {
                self.stats.phase_mut(phase).modeled_seconds += extra;
                self.trace_op(
                    EventKind::Retransmit,
                    phase,
                    Some(dst),
                    wire_overhead,
                    0,
                    0,
                    extra,
                );
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                // Each retry is one more wire transmission.
                for _ in 0..retries {
                    t.message(bytes);
                }
            }
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.message(bytes);
        }
        self.push(
            dst,
            Msg {
                tag,
                corrupt: false,
                payload,
            },
        );
    }

    fn push(&self, dst: usize, msg: Msg) {
        let tag = msg.tag;
        if self.to[dst].send(msg).is_err() {
            panic!(
                "rank {}: peer rank {dst} hung up (crashed?) — cannot deliver a {} message",
                self.rank,
                tag_name(tag)
            );
        }
    }

    /// Link-layer receive: watched by the deadlock watchdog, discards
    /// corrupt copies (counting the detection), and fails fast with a
    /// rank-attributed message when the peer died.
    fn raw_recv(&mut self, src: usize, expect_tag: u8, phase: Phase) -> Payload {
        let timeout = self.watchdog.timeout();
        let deadline = Instant::now() + timeout;
        self.watchdog.begin(
            self.rank,
            WaitKind::Recv,
            Some(src),
            Some(expect_tag),
            self.epoch,
        );
        let msg = loop {
            let now = Instant::now();
            if now >= deadline {
                // Leave our wait registered so the report includes us.
                let report = self.watchdog.report(self.rank);
                panic_any(DeadlockPanic(report));
            }
            match self.from[src].recv_timeout(deadline - now) {
                Ok(msg) if msg.corrupt => {
                    // Checksum failure: count it, pay for the useless
                    // transfer, and wait for the retransmission.
                    self.stats.faults.corruptions_detected += 1;
                    let waste = self.model.p2p(msg.payload.bytes());
                    self.stats.phase_mut(phase).modeled_seconds += waste;
                    // Zero bytes on the event: the sender accounts the
                    // wire overhead; this records the receiver's lost time.
                    self.trace_op(EventKind::Retransmit, phase, Some(src), 0, 0, 0, waste);
                }
                Ok(msg) => break msg,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    self.watchdog.end(self.rank);
                    panic!(
                        "rank {}: peer rank {src} hung up (crashed?) while waiting \
                         for a {} message",
                        self.rank,
                        tag_name(expect_tag)
                    );
                }
            }
        };
        self.watchdog.end(self.rank);
        assert_eq!(
            msg.tag, expect_tag,
            "rank {}: protocol mismatch receiving from {} (got tag {}, expected {})",
            self.rank, src, msg.tag, expect_tag
        );
        msg.payload
    }

    /// Non-blocking point-to-point send (phase `P2p`). Pays
    /// `α + bytes·β` on this rank.
    pub fn send(&mut self, dst: usize, payload: Payload) {
        assert_ne!(dst, self.rank, "self-sends indicate an algorithm bug");
        self.op_tick();
        let bytes = payload.bytes();
        let dur = self.model.p2p(bytes);
        let c = self.stats.phase_mut(Phase::P2p);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.modeled_seconds += dur;
        self.trace_op(EventKind::Send, Phase::P2p, Some(dst), bytes, 0, 0, dur);
        self.raw_send(dst, tag::P2P, payload, Phase::P2p);
    }

    /// Blocking point-to-point receive (phase `P2p`). Pays
    /// `α + bytes·β` on this rank.
    pub fn recv(&mut self, src: usize) -> Payload {
        self.op_tick();
        let payload = self.raw_recv(src, tag::P2P, Phase::P2p);
        let bytes = payload.bytes();
        let dur = self.model.p2p(bytes);
        let c = self.stats.phase_mut(Phase::P2p);
        c.ops += 1;
        c.bytes_recv += bytes;
        c.modeled_seconds += dur;
        self.trace_op(EventKind::Recv, Phase::P2p, Some(src), 0, bytes, 0, dur);
        payload
    }

    /// Broadcast from `root` (phase `Bcast`): the root passes its payload,
    /// everyone else passes `None` and receives the root's payload.
    pub fn bcast(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        self.op_tick();
        let out = if self.rank == root {
            let payload = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.p {
                if dst != root {
                    self.raw_send(dst, tag::BCAST, payload.clone(), Phase::Bcast);
                }
            }
            payload
        } else {
            assert!(
                payload.is_none(),
                "non-root rank supplied a broadcast payload"
            );
            self.raw_recv(root, tag::BCAST, Phase::Bcast)
        };
        let bytes = out.bytes();
        let dur = self.model.bcast(bytes, self.p);
        let is_root = self.rank == root;
        let c = self.stats.phase_mut(Phase::Bcast);
        c.ops += 1;
        if is_root {
            c.bytes_sent += bytes;
        } else {
            c.bytes_recv += bytes;
        }
        c.modeled_seconds += dur;
        let (sent, recv) = if is_root { (bytes, 0) } else { (0, bytes) };
        self.trace_op(
            EventKind::Bcast,
            Phase::Bcast,
            Some(root),
            sent,
            recv,
            0,
            dur,
        );
        out
    }

    /// Variable all-to-all (phase `AllToAll`): `sends[d]` goes to rank
    /// `d`; returns what every rank sent to us (`out[s]` from rank `s`).
    /// The self-slot is moved locally without being priced.
    ///
    /// # Panics
    /// Panics if `sends.len() != p`.
    pub fn alltoallv(&mut self, mut sends: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(sends.len(), self.p, "alltoallv needs one payload per rank");
        self.op_tick();
        let mut sent_bytes = 0u64;
        let me = self.rank;
        // Shifted order avoids all ranks hammering rank 0's queue first.
        for off in 1..self.p {
            let dst = (me + off) % self.p;
            let payload = std::mem::replace(&mut sends[dst], Payload::Empty);
            sent_bytes += payload.bytes();
            self.raw_send(dst, tag::ALLTOALLV, payload, Phase::AllToAll);
        }
        let mut out: Vec<Payload> = (0..self.p).map(|_| Payload::Empty).collect();
        out[me] = std::mem::replace(&mut sends[me], Payload::Empty);
        let mut recv_bytes = 0u64;
        for off in 1..self.p {
            let src = (me + self.p - off) % self.p;
            let payload = self.raw_recv(src, tag::ALLTOALLV, Phase::AllToAll);
            recv_bytes += payload.bytes();
            out[src] = payload;
        }
        let dur = self.model.alltoallv(sent_bytes, recv_bytes, self.p);
        let c = self.stats.phase_mut(Phase::AllToAll);
        c.ops += 1;
        c.bytes_sent += sent_bytes;
        c.bytes_recv += recv_bytes;
        c.modeled_seconds += dur;
        self.trace_op(
            EventKind::AllToAllV,
            Phase::AllToAll,
            None,
            sent_bytes,
            recv_bytes,
            0,
            dur,
        );
        out
    }

    /// Sum-all-reduce of `buf` over `group` (phase `AllReduce`). Every
    /// member must call with the same group slice (which must contain this
    /// rank); afterwards all members hold the element-wise sum.
    pub fn allreduce_sum(&mut self, buf: &mut [f64], group: &[usize]) {
        debug_assert!(
            group.contains(&self.rank),
            "rank not in its own allreduce group"
        );
        self.op_tick();
        let g = group.len();
        let bytes = 8 * buf.len() as u64;
        if g > 1 {
            let root = group[0];
            if self.rank == root {
                for &src in &group[1..] {
                    let part = self
                        .raw_recv(src, tag::REDUCE_UP, Phase::AllReduce)
                        .into_f64();
                    assert_eq!(part.len(), buf.len(), "allreduce length mismatch");
                    for (a, b) in buf.iter_mut().zip(part) {
                        *a += b;
                    }
                }
                for &dst in &group[1..] {
                    self.raw_send(
                        dst,
                        tag::REDUCE_DOWN,
                        Payload::F64(buf.to_vec()),
                        Phase::AllReduce,
                    );
                }
            } else {
                self.raw_send(
                    root,
                    tag::REDUCE_UP,
                    Payload::F64(buf.to_vec()),
                    Phase::AllReduce,
                );
                let summed = self
                    .raw_recv(root, tag::REDUCE_DOWN, Phase::AllReduce)
                    .into_f64();
                buf.copy_from_slice(&summed);
            }
        }
        let dur = self.model.allreduce(bytes, g);
        let c = self.stats.phase_mut(Phase::AllReduce);
        c.ops += 1;
        c.bytes_sent += bytes;
        c.bytes_recv += bytes;
        c.modeled_seconds += dur;
        self.trace_op(
            EventKind::AllReduce,
            Phase::AllReduce,
            None,
            bytes,
            bytes,
            0,
            dur,
        );
    }

    /// Gathers every rank's payload to `root` (phase `Other`; used for
    /// assembling final results, not priced as training communication).
    pub fn gather(&mut self, root: usize, mut payload: Payload) -> Option<Vec<Payload>> {
        self.op_tick();
        // Unpriced and not counted in stats; traced as a zero-cost marker.
        self.trace_op(EventKind::Gather, Phase::Other, Some(root), 0, 0, 0, 0.0);
        if self.rank == root {
            let out: Vec<Payload> = (0..self.p)
                .map(|src| {
                    if src == root {
                        std::mem::replace(&mut payload, Payload::Empty)
                    } else {
                        self.raw_recv(src, tag::GATHER, Phase::Other)
                    }
                })
                .collect();
            Some(out)
        } else {
            self.raw_send(root, tag::GATHER, payload, Phase::Other);
            None
        }
    }

    /// Barrier over all ranks (watched: times out into a deadlock report
    /// instead of blocking forever when a rank never arrives).
    pub fn barrier(&mut self) {
        self.op_tick();
        self.trace_op(EventKind::Barrier, Phase::Other, None, 0, 0, 0, 0.0);
        self.watchdog
            .begin(self.rank, WaitKind::Barrier, None, None, self.epoch);
        if !self.barrier.wait(self.watchdog.timeout()) {
            let report = self.watchdog.report(self.rank);
            panic_any(DeadlockPanic(report));
        }
        self.watchdog.end(self.rank);
    }

    /// Runs `work`, recording its wall time and `flops` into
    /// `LocalCompute` with modeled time `flops / flop_rate` (scaled by any
    /// injected straggler factor).
    pub fn compute<R>(&mut self, flops: u64, work: impl FnOnce() -> R) -> R {
        self.op_tick();
        let t0 = Instant::now();
        let out = work();
        let factor = self.slow_factor();
        let dur = self.model.compute(flops) * factor;
        let c = self.stats.phase_mut(Phase::LocalCompute);
        c.ops += 1;
        c.flops += flops;
        c.modeled_seconds += dur;
        c.wall_seconds += t0.elapsed().as_secs_f64();
        self.trace_op(
            EventKind::Compute,
            Phase::LocalCompute,
            None,
            0,
            0,
            flops,
            dur,
        );
        out
    }

    /// Records compute cost without timing a closure (when the caller
    /// already knows the flop count of work done elsewhere).
    pub fn record_compute(&mut self, flops: u64) {
        self.op_tick();
        let factor = self.slow_factor();
        let dur = self.model.compute(flops) * factor;
        let c = self.stats.phase_mut(Phase::LocalCompute);
        c.ops += 1;
        c.flops += flops;
        c.modeled_seconds += dur;
        self.trace_op(
            EventKind::Compute,
            Phase::LocalCompute,
            None,
            0,
            0,
            flops,
            dur,
        );
    }

    fn slow_factor(&mut self) -> f64 {
        match &self.injector {
            Some(inj) => {
                let factor = inj.compute_factor(self.rank);
                if factor != 1.0 {
                    self.stats.faults.slowed_ops += 1;
                }
                factor
            }
            None => 1.0,
        }
    }
}
