//! Deterministic fault injection for the SPMD simulator.
//!
//! A [`FaultPlan`] declares straggler, message-loss, corruption and crash
//! faults; a [`FaultInjector`] evaluates them at runtime. Message-level
//! decisions are pure functions of `(seed, src, dst, sequence number)`
//! (SplitMix64 hashing), so a run with a given plan is exactly
//! reproducible — the property every degraded-mode experiment and every
//! regression test of the recovery path relies on.
//!
//! Fault semantics (all charged through the α–β cost model):
//!
//! * **Delay** — matching sends cost `seconds` extra modeled time (a
//!   slow NIC / congested link on that rank).
//! * **Drop** — the first transmission is lost; the sender's reliable
//!   link layer times out (`retry_backoff_seconds`) and retransmits,
//!   paying the α–β price twice. Progress is guaranteed: a retransmission
//!   is never dropped again.
//! * **Corrupt** — the receiver gets a corrupt copy first (checksum
//!   failure, counted in [`crate::stats::FaultCounters`]), then the
//!   sender's retransmission.
//! * **SlowCompute** — modeled compute time on the rank is multiplied by
//!   `factor` (the paper's bottleneck-rank argument, made injectable).
//! * **CrashAt** — the rank panics at a chosen `(epoch, op)` point. The
//!   fault fires **once** per injector (transient node failure): a driver
//!   that restarts the world with the same injector resumes cleanly.

use std::sync::atomic::{AtomicBool, Ordering};

/// One injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Extra modeled seconds on every matching send from `rank`
    /// (to `to`, or to every peer when `None`).
    DelaySend {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Extra modeled seconds per message.
        seconds: f64,
    },
    /// Each matching first transmission is lost with probability `prob`;
    /// the link layer retransmits after a modeled backoff.
    DropMsg {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Each matching first transmission arrives corrupted with
    /// probability `prob`; the receiver detects and discards it and the
    /// sender retransmits.
    CorruptMsg {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Modeled compute time on `rank` is multiplied by `factor`.
    SlowCompute {
        /// Straggling rank.
        rank: usize,
        /// Slowdown multiplier (`> 1` for stragglers).
        factor: f64,
    },
    /// `rank` panics at operation index `op` of `epoch` (fires once).
    CrashAt {
        /// Crashing rank.
        rank: usize,
        /// Epoch in which to crash (as reported via
        /// [`crate::RankCtx::set_epoch`]).
        epoch: usize,
        /// Per-epoch operation index at which to crash (0 = the
        /// `set_epoch` call itself).
        op: u64,
    },
}

/// A declarative, seeded set of faults for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<Fault>,
    /// Seed for per-message probabilistic decisions.
    pub seed: u64,
    /// Modeled retransmission timeout charged per drop/corruption.
    pub retry_backoff_seconds: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

impl FaultPlan {
    /// An empty plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            faults: Vec::new(),
            seed,
            retry_backoff_seconds: 1e-3,
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a send-delay fault (builder style).
    #[must_use]
    pub fn delay_send(mut self, rank: usize, to: Option<usize>, seconds: f64) -> Self {
        self.faults.push(Fault::DelaySend { rank, to, seconds });
        self
    }

    /// Adds a message-drop fault (builder style).
    #[must_use]
    pub fn drop_messages(mut self, rank: usize, to: Option<usize>, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop probability out of range");
        self.faults.push(Fault::DropMsg { rank, to, prob });
        self
    }

    /// Adds a message-corruption fault (builder style).
    #[must_use]
    pub fn corrupt_messages(mut self, rank: usize, to: Option<usize>, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "corruption probability out of range"
        );
        self.faults.push(Fault::CorruptMsg { rank, to, prob });
        self
    }

    /// Adds a compute-straggler fault (builder style).
    #[must_use]
    pub fn slow_compute(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.faults.push(Fault::SlowCompute { rank, factor });
        self
    }

    /// Adds a one-shot crash fault (builder style).
    #[must_use]
    pub fn crash_at(mut self, rank: usize, epoch: usize, op: u64) -> Self {
        self.faults.push(Fault::CrashAt { rank, epoch, op });
        self
    }
}

/// The injector's verdict for one transmission.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SendFate {
    /// Extra modeled seconds from delay faults.
    pub delay_seconds: f64,
    /// The first transmission is lost.
    pub dropped: bool,
    /// The first transmission arrives corrupted.
    pub corrupted: bool,
}

/// Runtime evaluator of a [`FaultPlan`]. Shareable across restarted
/// worlds (crash faults stay fired), which is what makes elastic restart
/// converge instead of crashing forever.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Parallel to `plan.faults`; `true` once a `CrashAt` has fired.
    crash_fired: Vec<AtomicBool>,
}

/// SplitMix64 finalizer over a composite key.
fn mix(seed: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(c.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(d.wrapping_mul(0xD6E8FEB86659FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from 53 hash bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let crash_fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        Self { plan, crash_fired }
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any not-yet-fired crash fault remains.
    pub fn crashes_pending(&self) -> bool {
        self.plan
            .faults
            .iter()
            .zip(&self.crash_fired)
            .any(|(f, fired)| matches!(f, Fault::CrashAt { .. }) && !fired.load(Ordering::Relaxed))
    }

    /// Deterministic fate of the `seq`-th transmission from `src` to `dst`.
    pub(crate) fn send_fate(&self, src: usize, dst: usize, seq: u64) -> SendFate {
        let mut fate = SendFate::default();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            let key = |prob_kind: u64| {
                mix(
                    self.plan.seed ^ prob_kind,
                    src as u64,
                    dst as u64,
                    seq,
                    i as u64,
                )
            };
            match *fault {
                Fault::DelaySend { rank, to, seconds }
                    if rank == src && to.is_none_or(|t| t == dst) =>
                {
                    fate.delay_seconds += seconds;
                }
                Fault::DropMsg { rank, to, prob } if rank == src && to.is_none_or(|t| t == dst) => {
                    fate.dropped |= unit(key(1)) < prob;
                }
                Fault::CorruptMsg { rank, to, prob }
                    if rank == src && to.is_none_or(|t| t == dst) =>
                {
                    fate.corrupted |= unit(key(2)) < prob;
                }
                _ => {}
            }
        }
        fate
    }

    /// Combined compute-slowdown factor for `rank`.
    pub(crate) fn compute_factor(&self, rank: usize) -> f64 {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::SlowCompute { rank: r, factor } if r == rank => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Checks (and fires at most once) any crash fault due at this point.
    pub(crate) fn crash_due(&self, rank: usize, epoch: Option<usize>, op: u64) -> bool {
        let Some(epoch) = epoch else { return false };
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if let Fault::CrashAt {
                rank: r,
                epoch: e,
                op: o,
            } = *fault
            {
                if r == rank
                    && e == epoch
                    && op >= o
                    && !self.crash_fired[i].swap(true, Ordering::SeqCst)
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_per_key() {
        let inj = FaultInjector::new(FaultPlan::new(7).drop_messages(0, None, 0.5));
        for seq in 0..50 {
            assert_eq!(inj.send_fate(0, 1, seq), inj.send_fate(0, 1, seq));
        }
        // And actually vary with the sequence number.
        let drops = (0..200).filter(|&s| inj.send_fate(0, 1, s).dropped).count();
        assert!(drops > 50 && drops < 150, "drops {drops}");
    }

    #[test]
    fn fates_respect_rank_and_destination_filters() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .delay_send(2, Some(0), 0.25)
                .drop_messages(1, None, 1.0),
        );
        assert_eq!(inj.send_fate(2, 0, 0).delay_seconds, 0.25);
        assert_eq!(inj.send_fate(2, 1, 0).delay_seconds, 0.0);
        assert!(inj.send_fate(1, 0, 3).dropped);
        assert!(!inj.send_fate(0, 1, 3).dropped);
    }

    #[test]
    fn seed_changes_the_stream() {
        let a = FaultInjector::new(FaultPlan::new(1).drop_messages(0, None, 0.5));
        let b = FaultInjector::new(FaultPlan::new(2).drop_messages(0, None, 0.5));
        let differs =
            (0..100).any(|s| a.send_fate(0, 1, s).dropped != b.send_fate(0, 1, s).dropped);
        assert!(differs);
    }

    #[test]
    fn compute_factor_multiplies() {
        let inj = FaultInjector::new(FaultPlan::new(0).slow_compute(1, 2.0).slow_compute(1, 3.0));
        assert_eq!(inj.compute_factor(1), 6.0);
        assert_eq!(inj.compute_factor(0), 1.0);
    }

    #[test]
    fn crash_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new(0).crash_at(1, 2, 5));
        assert!(!inj.crash_due(1, Some(2), 4), "too early");
        assert!(!inj.crash_due(1, Some(1), 9), "wrong epoch");
        assert!(!inj.crash_due(0, Some(2), 9), "wrong rank");
        assert!(inj.crashes_pending());
        assert!(inj.crash_due(1, Some(2), 5));
        assert!(!inj.crash_due(1, Some(2), 6), "must not re-fire");
        assert!(!inj.crashes_pending());
    }

    #[test]
    fn crash_needs_epoch_tracking() {
        let inj = FaultInjector::new(FaultPlan::new(0).crash_at(0, 0, 0));
        assert!(!inj.crash_due(0, None, 10), "no epoch reported, no crash");
    }
}
