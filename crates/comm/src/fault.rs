//! Deterministic fault injection for the SPMD simulator.
//!
//! A [`FaultPlan`] declares straggler, message-loss, corruption and crash
//! faults; a [`FaultInjector`] evaluates them at runtime. Message-level
//! decisions are pure functions of `(seed, src, dst, sequence number)`
//! (SplitMix64 hashing), so a run with a given plan is exactly
//! reproducible — the property every degraded-mode experiment and every
//! regression test of the recovery path relies on.
//!
//! Fault semantics (all charged through the α–β cost model):
//!
//! * **Delay** — matching sends cost `seconds` extra modeled time (a
//!   slow NIC / congested link on that rank), charged once per logical
//!   message (not per retry).
//! * **Drop** — each transmission attempt is lost independently with
//!   probability `prob`; the sender's reliable link layer times out
//!   (capped exponential backoff from `retry_backoff_seconds`) and
//!   retransmits, paying the α–β price per attempt. Progress is
//!   guaranteed: the attempt at `max_retries` always goes through.
//! * **Corrupt** — each attempt arrives bit-flipped with probability
//!   `prob`; the receiver's checksum catches it (counted in
//!   [`crate::stats::FaultCounters`]) and the sender retransmits under
//!   the same backoff schedule.
//! * **Duplicate** — a spurious retransmit: the successfully delivered
//!   frame is pushed twice; the receiver's sequence numbers discard the
//!   extra copy.
//! * **SlowCompute** — modeled compute time on the rank is multiplied by
//!   `factor` (the paper's bottleneck-rank argument, made injectable).
//! * **CrashAt** — the rank panics at a chosen `(epoch, op)` point. The
//!   fault fires **once** per injector (transient node failure): a driver
//!   that restarts the world with the same injector resumes cleanly.

use std::sync::atomic::{AtomicBool, Ordering};

/// One injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Extra modeled seconds on every matching send from `rank`
    /// (to `to`, or to every peer when `None`).
    DelaySend {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Extra modeled seconds per message.
        seconds: f64,
    },
    /// Each matching first transmission is lost with probability `prob`;
    /// the link layer retransmits after a modeled backoff.
    DropMsg {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Each matching first transmission arrives corrupted with
    /// probability `prob`; the receiver detects and discards it and the
    /// sender retransmits.
    CorruptMsg {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// Each matching successful delivery is duplicated (spurious
    /// retransmit) with probability `prob`; the receiver's sequence
    /// numbers discard the second copy.
    DuplicateMsg {
        /// Sending rank.
        rank: usize,
        /// Destination filter (`None` = all peers).
        to: Option<usize>,
        /// Duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Modeled compute time on `rank` is multiplied by `factor`.
    SlowCompute {
        /// Straggling rank.
        rank: usize,
        /// Slowdown multiplier (`> 1` for stragglers).
        factor: f64,
    },
    /// `rank` panics at operation index `op` of `epoch` (fires once).
    CrashAt {
        /// Crashing rank.
        rank: usize,
        /// Epoch in which to crash (as reported via
        /// [`crate::RankCtx::set_epoch`]).
        epoch: usize,
        /// Per-epoch operation index at which to crash (0 = the
        /// `set_epoch` call itself).
        op: u64,
    },
}

/// A declarative, seeded set of faults for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<Fault>,
    /// Seed for per-message probabilistic decisions.
    pub seed: u64,
    /// Base modeled retransmission timeout; attempt `k` waits
    /// `retry_backoff_seconds · 2^k`, capped at
    /// [`FaultPlan::retry_backoff_cap_seconds`].
    pub retry_backoff_seconds: f64,
    /// Upper bound on a single backoff wait.
    pub retry_backoff_cap_seconds: f64,
    /// Retry budget per message: the attempt numbered `max_retries` is
    /// forced clean, so even a prob=1.0 corruption storm converges.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new(0)
    }
}

impl FaultPlan {
    /// An empty plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        Self {
            faults: Vec::new(),
            seed,
            retry_backoff_seconds: 1e-3,
            retry_backoff_cap_seconds: 0.1,
            max_retries: 6,
        }
    }

    /// Backoff before retry attempt `attempt` (1-based for waits; the
    /// wait after failed attempt `k` is `base · 2^k`, capped).
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        let exp = attempt.min(52);
        (self.retry_backoff_seconds * (1u64 << exp) as f64).min(self.retry_backoff_cap_seconds)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a send-delay fault (builder style).
    #[must_use]
    pub fn delay_send(mut self, rank: usize, to: Option<usize>, seconds: f64) -> Self {
        self.faults.push(Fault::DelaySend { rank, to, seconds });
        self
    }

    /// Adds a message-drop fault (builder style).
    #[must_use]
    pub fn drop_messages(mut self, rank: usize, to: Option<usize>, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop probability out of range");
        self.faults.push(Fault::DropMsg { rank, to, prob });
        self
    }

    /// Adds a message-corruption fault (builder style).
    #[must_use]
    pub fn corrupt_messages(mut self, rank: usize, to: Option<usize>, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "corruption probability out of range"
        );
        self.faults.push(Fault::CorruptMsg { rank, to, prob });
        self
    }

    /// Adds a message-duplication fault (builder style).
    #[must_use]
    pub fn duplicate_messages(mut self, rank: usize, to: Option<usize>, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "duplication probability out of range"
        );
        self.faults.push(Fault::DuplicateMsg { rank, to, prob });
        self
    }

    /// Adds a compute-straggler fault (builder style).
    #[must_use]
    pub fn slow_compute(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.faults.push(Fault::SlowCompute { rank, factor });
        self
    }

    /// Adds a one-shot crash fault (builder style).
    #[must_use]
    pub fn crash_at(mut self, rank: usize, epoch: usize, op: u64) -> Self {
        self.faults.push(Fault::CrashAt { rank, epoch, op });
        self
    }
}

/// The injector's verdict for one transmission attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SendFate {
    /// Extra modeled seconds from delay faults (attempt 0 only — a slow
    /// link delays the message, not each retry independently).
    pub delay_seconds: f64,
    /// This attempt is lost in flight.
    pub dropped: bool,
    /// This attempt arrives bit-flipped (checksum will catch it).
    pub corrupted: bool,
    /// The delivered frame is pushed twice (spurious retransmit).
    pub duplicated: bool,
}

/// Runtime evaluator of a [`FaultPlan`]. Shareable across restarted
/// worlds (crash faults stay fired), which is what makes elastic restart
/// converge instead of crashing forever.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Parallel to `plan.faults`; `true` once a `CrashAt` has fired.
    crash_fired: Vec<AtomicBool>,
}

/// SplitMix64 finalizer over a composite key.
fn mix(seed: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(c.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(d.wrapping_mul(0xD6E8FEB86659FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from 53 hash bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let crash_fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        Self { plan, crash_fired }
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any not-yet-fired crash fault remains.
    pub fn crashes_pending(&self) -> bool {
        self.plan
            .faults
            .iter()
            .zip(&self.crash_fired)
            .any(|(f, fired)| matches!(f, Fault::CrashAt { .. }) && !fired.load(Ordering::Relaxed))
    }

    /// Deterministic fate of transmission attempt `attempt` of the
    /// `seq`-th message from `src` to `dst`. Drop/corrupt are re-rolled
    /// per attempt (independent link events); delay applies to attempt 0
    /// only; the attempt numbered `plan.max_retries` is forced clean so
    /// every message eventually lands.
    pub(crate) fn transmit_fate(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> SendFate {
        let mut fate = SendFate::default();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            // Folding the attempt into the last key slot keeps attempt 0
            // on the original (src, dst, seq, i) stream.
            let key = |prob_kind: u64| {
                mix(
                    self.plan.seed ^ prob_kind,
                    src as u64,
                    dst as u64,
                    seq,
                    i as u64 | ((attempt as u64) << 32),
                )
            };
            match *fault {
                Fault::DelaySend { rank, to, seconds }
                    if rank == src && to.is_none_or(|t| t == dst) && attempt == 0 =>
                {
                    fate.delay_seconds += seconds;
                }
                Fault::DropMsg { rank, to, prob } if rank == src && to.is_none_or(|t| t == dst) => {
                    fate.dropped |= unit(key(1)) < prob;
                }
                Fault::CorruptMsg { rank, to, prob }
                    if rank == src && to.is_none_or(|t| t == dst) =>
                {
                    fate.corrupted |= unit(key(2)) < prob;
                }
                Fault::DuplicateMsg { rank, to, prob }
                    if rank == src && to.is_none_or(|t| t == dst) =>
                {
                    fate.duplicated |= unit(key(3)) < prob;
                }
                _ => {}
            }
        }
        if attempt >= self.plan.max_retries {
            fate.dropped = false;
            fate.corrupted = false;
        }
        fate
    }

    /// Combined compute-slowdown factor for `rank`.
    pub(crate) fn compute_factor(&self, rank: usize) -> f64 {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::SlowCompute { rank: r, factor } if r == rank => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Worst-case injected compute slowdown across all ranks (≥ 1.0).
    /// The watchdog scales its deadlock timeout by this budget so heavy
    /// stragglers don't trip false-positive deadlock reports.
    pub fn straggler_budget(&self) -> f64 {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::SlowCompute { rank, .. } => Some(self.compute_factor(rank)),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Checks (and fires at most once) any crash fault due at this point.
    pub(crate) fn crash_due(&self, rank: usize, epoch: Option<usize>, op: u64) -> bool {
        let Some(epoch) = epoch else { return false };
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if let Fault::CrashAt {
                rank: r,
                epoch: e,
                op: o,
            } = *fault
            {
                if r == rank
                    && e == epoch
                    && op >= o
                    && !self.crash_fired[i].swap(true, Ordering::SeqCst)
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_per_key() {
        let inj = FaultInjector::new(FaultPlan::new(7).drop_messages(0, None, 0.5));
        for seq in 0..50 {
            assert_eq!(
                inj.transmit_fate(0, 1, seq, 0),
                inj.transmit_fate(0, 1, seq, 0)
            );
        }
        // And actually vary with the sequence number.
        let drops = (0..200)
            .filter(|&s| inj.transmit_fate(0, 1, s, 0).dropped)
            .count();
        assert!(drops > 50 && drops < 150, "drops {drops}");
    }

    #[test]
    fn fates_respect_rank_and_destination_filters() {
        let inj = FaultInjector::new(
            FaultPlan::new(1)
                .delay_send(2, Some(0), 0.25)
                .drop_messages(1, None, 1.0),
        );
        assert_eq!(inj.transmit_fate(2, 0, 0, 0).delay_seconds, 0.25);
        assert_eq!(inj.transmit_fate(2, 1, 0, 0).delay_seconds, 0.0);
        assert!(inj.transmit_fate(1, 0, 3, 0).dropped);
        assert!(!inj.transmit_fate(0, 1, 3, 0).dropped);
    }

    #[test]
    fn seed_changes_the_stream() {
        let a = FaultInjector::new(FaultPlan::new(1).drop_messages(0, None, 0.5));
        let b = FaultInjector::new(FaultPlan::new(2).drop_messages(0, None, 0.5));
        let differs = (0..100)
            .any(|s| a.transmit_fate(0, 1, s, 0).dropped != b.transmit_fate(0, 1, s, 0).dropped);
        assert!(differs);
    }

    #[test]
    fn retries_reroll_and_final_attempt_is_forced_clean() {
        let inj = FaultInjector::new(FaultPlan::new(3).drop_messages(0, None, 0.6));
        // Attempts are independent link events: same message, different
        // attempt → different verdict stream.
        let differs = (0..100).any(|s| {
            inj.transmit_fate(0, 1, s, 0).dropped != inj.transmit_fate(0, 1, s, 1).dropped
        });
        assert!(differs);
        // Even a prob=1.0 storm converges at the retry cap.
        let storm = FaultInjector::new(FaultPlan::new(3).corrupt_messages(0, None, 1.0));
        let cap = storm.plan().max_retries;
        for attempt in 0..cap {
            assert!(storm.transmit_fate(0, 1, 9, attempt).corrupted);
        }
        let last = storm.transmit_fate(0, 1, 9, cap);
        assert!(!last.corrupted && !last.dropped);
        // Delay is charged once, on the first attempt only.
        let slow = FaultInjector::new(FaultPlan::new(0).delay_send(0, None, 0.5));
        assert_eq!(slow.transmit_fate(0, 1, 0, 0).delay_seconds, 0.5);
        assert_eq!(slow.transmit_fate(0, 1, 0, 1).delay_seconds, 0.0);
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.backoff_seconds(0), 1e-3);
        assert_eq!(plan.backoff_seconds(1), 2e-3);
        assert_eq!(plan.backoff_seconds(2), 4e-3);
        assert_eq!(plan.backoff_seconds(60), plan.retry_backoff_cap_seconds);
    }

    #[test]
    fn duplicates_follow_their_own_stream() {
        let inj = FaultInjector::new(FaultPlan::new(5).duplicate_messages(0, Some(1), 1.0));
        assert!(inj.transmit_fate(0, 1, 0, 0).duplicated);
        assert!(!inj.transmit_fate(0, 2, 0, 0).duplicated, "dst filter");
        // Duplication never suppresses delivery.
        assert!(!inj.transmit_fate(0, 1, 0, 0).dropped);
    }

    #[test]
    fn straggler_budget_is_the_worst_rank() {
        let inj = FaultInjector::new(
            FaultPlan::new(0)
                .slow_compute(1, 2.0)
                .slow_compute(1, 3.0)
                .slow_compute(2, 4.0),
        );
        assert_eq!(inj.straggler_budget(), 6.0);
        let clean = FaultInjector::new(FaultPlan::new(0).drop_messages(0, None, 0.5));
        assert_eq!(clean.straggler_budget(), 1.0);
    }

    #[test]
    fn compute_factor_multiplies() {
        let inj = FaultInjector::new(FaultPlan::new(0).slow_compute(1, 2.0).slow_compute(1, 3.0));
        assert_eq!(inj.compute_factor(1), 6.0);
        assert_eq!(inj.compute_factor(0), 1.0);
    }

    #[test]
    fn crash_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new(0).crash_at(1, 2, 5));
        assert!(!inj.crash_due(1, Some(2), 4), "too early");
        assert!(!inj.crash_due(1, Some(1), 9), "wrong epoch");
        assert!(!inj.crash_due(0, Some(2), 9), "wrong rank");
        assert!(inj.crashes_pending());
        assert!(inj.crash_due(1, Some(2), 5));
        assert!(!inj.crash_due(1, Some(2), 6), "must not re-fire");
        assert!(!inj.crashes_pending());
    }

    #[test]
    fn crash_needs_epoch_tracking() {
        let inj = FaultInjector::new(FaultPlan::new(0).crash_at(0, 0, 0));
        assert!(!inj.crash_due(0, None, 10), "no epoch reported, no crash");
    }
}
