//! Per-rank, per-phase communication/compute accounting.
//!
//! Every [`crate::RankCtx`] operation records what it moved or computed
//! into a [`RankStats`]; after a run, [`WorldStats`] aggregates the ranks
//! into the quantities the paper's tables and figures report: modeled
//! epoch time (max over ranks), per-phase breakdowns (Fig. 4/5), and
//! communication load imbalance (Table 2).

// The phase taxonomy lives in `gnn-trace` (shared between stats and the
// tracer's event schema); re-exported here so existing `gnn_comm::Phase`
// paths keep working.
pub use gnn_trace::{Phase, PHASES};

/// Counters for one phase on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseCounters {
    /// Number of operations (collective calls, messages, kernel launches).
    pub ops: u64,
    /// Bytes this rank sent in this phase. For `AllReduce` this is the
    /// logical buffer size per call, not wire traffic.
    pub bytes_sent: u64,
    /// Bytes this rank received in this phase (same convention).
    pub bytes_recv: u64,
    /// Floating-point operations executed (compute phases).
    pub flops: u64,
    /// Time priced by the [`crate::CostModel`] at op time.
    pub modeled_seconds: f64,
    /// Wall-clock seconds actually spent (informational; the simulator's
    /// wall time says nothing about a GPU cluster).
    pub wall_seconds: f64,
}

impl PhaseCounters {
    fn merge(&mut self, o: &PhaseCounters) {
        self.ops += o.ops;
        self.bytes_sent += o.bytes_sent;
        self.bytes_recv += o.bytes_recv;
        self.flops += o.flops;
        self.modeled_seconds += o.modeled_seconds;
        self.wall_seconds += o.wall_seconds;
    }
}

/// Injected-fault and recovery accounting for one rank (satellite data
/// for degraded-mode experiments: how much adversity a run absorbed).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultCounters {
    /// Sends hit by an injected delay fault.
    pub delays: u64,
    /// Total extra modeled seconds injected by delay faults.
    pub delay_seconds: f64,
    /// First transmissions lost to injected drop faults (each triggered a
    /// modeled retransmission).
    pub drops: u64,
    /// First transmissions corrupted by injected corruption faults.
    pub corruptions: u64,
    /// Corrupt copies this rank detected (checksum failure) and discarded.
    pub corruptions_detected: u64,
    /// Link-layer retransmissions this rank performed (drops + corruptions).
    pub retries: u64,
    /// Extra wire bytes those retransmissions moved. Charged to
    /// [`Phase::Retransmit`] (never to the op's own phase), so logical
    /// communication volumes (the paper's Table 2 quantities) are
    /// unaffected by fault injection.
    pub retransmit_bytes: u64,
    /// Injected duplicate deliveries this rank's sends produced.
    pub duplicates: u64,
    /// Duplicate frames this rank detected (stale sequence number) and
    /// discarded.
    pub duplicates_discarded: u64,
    /// Compute ops priced with an injected straggler slowdown.
    pub slowed_ops: u64,
}

impl FaultCounters {
    fn merge(&mut self, o: &FaultCounters) {
        self.delays += o.delays;
        self.delay_seconds += o.delay_seconds;
        self.drops += o.drops;
        self.corruptions += o.corruptions;
        self.corruptions_detected += o.corruptions_detected;
        self.retries += o.retries;
        self.retransmit_bytes += o.retransmit_bytes;
        self.duplicates += o.duplicates;
        self.duplicates_discarded += o.duplicates_discarded;
        self.slowed_ops += o.slowed_ops;
    }

    /// Total injected fault events charged to this rank's sends/computes.
    pub fn injected_total(&self) -> u64 {
        self.delays + self.drops + self.corruptions + self.duplicates + self.slowed_ops
    }
}

/// Pipelined comm/compute overlap accounting for one rank.
///
/// When an SpMM runs its exchange through the nonblocking pipeline, the
/// per-stage communication time is split into the *exposed* remainder
/// (`max(0, comm − compute)`, charged to [`Phase::Overlap`]'s
/// `modeled_seconds`) and the *hidden* part that ran concurrently with
/// local compute (tracked here, never on the modeled clock).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverlapCounters {
    /// Pipeline stage boundaries crossed.
    pub stages: u64,
    /// Total communication seconds the pipeline stages would have cost
    /// if fully blocking (exposed + hidden).
    pub raw_comm_seconds: f64,
    /// Communication seconds hidden behind local compute.
    pub hidden_seconds: f64,
}

impl OverlapCounters {
    fn merge(&mut self, o: &OverlapCounters) {
        self.stages += o.stages;
        self.raw_comm_seconds += o.raw_comm_seconds;
        self.hidden_seconds += o.hidden_seconds;
    }
}

/// Process-backend link-layer counters for one rank: real socket events
/// (reconnects, replay retransmits, heartbeat misses) that have no
/// thread-backend analogue. Always present — and always zero — on
/// thread-backed runs, so both backends emit a comparable metrics
/// schema.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcCounters {
    /// Successful dialer-side reconnects after a transient link loss.
    pub reconnects: u64,
    /// Reliable frames retransmitted from the replay queue when a
    /// replacement connection was installed.
    pub replayed_frames: u64,
    /// Liveness-monitor ticks that observed a peer past one heartbeat
    /// period of silence (each tick past the threshold counts once per
    /// silent peer).
    pub heartbeat_misses: u64,
    /// Backoff sleeps across every dial loop (rendezvous, mesh wire-up,
    /// reconnect).
    pub dial_backoffs: u64,
    /// Unclean connection losses while the world was healthy — each one
    /// a suspected partition or peer crash, resolved by reconnect one
    /// way or the other.
    pub partitions_suspected: u64,
    /// Reconnections that replaced a previously established link: a
    /// suspected partition that healed within the liveness budget.
    pub partitions_healed: u64,
    /// Network-chaos interposer activations (delays + severs + refused
    /// dials); zero when no chaos plan was armed.
    pub chaos_injected: u64,
}

impl ProcCounters {
    fn merge(&mut self, o: &ProcCounters) {
        self.reconnects += o.reconnects;
        self.replayed_frames += o.replayed_frames;
        self.heartbeat_misses += o.heartbeat_misses;
        self.dial_backoffs += o.dial_backoffs;
        self.partitions_suspected += o.partitions_suspected;
        self.partitions_healed += o.partitions_healed;
        self.chaos_injected += o.chaos_injected;
    }
}

/// Per-rank accounting across all phases.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankStats {
    phases: [PhaseCounters; PHASES.len()],
    /// Injected-fault and retry counters.
    pub faults: FaultCounters,
    /// Pipelined-overlap accounting (all zero for blocking runs).
    pub overlap: OverlapCounters,
    /// Process-backend link-layer counters (zero on thread runs).
    pub proc: ProcCounters,
}

impl RankStats {
    /// Counters for one phase.
    pub fn phase(&self, p: Phase) -> &PhaseCounters {
        &self.phases[p.index()]
    }

    /// Mutable counters for one phase.
    pub fn phase_mut(&mut self, p: Phase) -> &mut PhaseCounters {
        &mut self.phases[p.index()]
    }

    /// Total modeled seconds across phases — this rank's epoch time.
    pub fn modeled_total(&self) -> f64 {
        self.phases.iter().map(|c| c.modeled_seconds).sum()
    }

    /// Total **logical** bytes sent across communication phases — the
    /// `Retransmit` phase carries only wire overhead and is excluded, so
    /// fault injection never perturbs the paper's volume metrics.
    pub fn bytes_sent_total(&self) -> u64 {
        self.phases
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != Phase::Retransmit.index())
            .map(|(_, c)| c.bytes_sent)
            .sum()
    }

    /// Total **logical** bytes received (same convention as
    /// [`RankStats::bytes_sent_total`]).
    pub fn bytes_recv_total(&self) -> u64 {
        self.phases
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != Phase::Retransmit.index())
            .map(|(_, c)| c.bytes_recv)
            .sum()
    }

    /// Total bytes this rank pushed onto the wire: logical volume plus
    /// every retransmitted frame. Reconciles with the trace validator's
    /// `logical_bytes_sent + retransmit_wire_bytes`.
    pub fn wire_bytes_sent_total(&self) -> u64 {
        self.bytes_sent_total() + self.phases[Phase::Retransmit.index()].bytes_sent
    }

    /// Communication seconds this rank hid behind compute via the
    /// pipelined overlap window.
    pub fn overlap_hidden_seconds(&self) -> f64 {
        self.overlap.hidden_seconds
    }

    /// Exposed overlap-window seconds (identical to the
    /// [`Phase::Overlap`] phase's modeled time).
    pub fn overlap_exposed_seconds(&self) -> f64 {
        self.phases[Phase::Overlap.index()].modeled_seconds
    }

    /// Adds another rank-stats (e.g. accumulating epochs).
    pub fn merge(&mut self, other: &RankStats) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
        self.faults.merge(&other.faults);
        self.overlap.merge(&other.overlap);
        self.proc.merge(&other.proc);
    }
}

/// Aggregated statistics for a whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorldStats {
    /// One entry per rank.
    pub per_rank: Vec<RankStats>,
    /// Degraded-mode epochs completed via replica failover (surviving
    /// replicas covered for dead ranks without a world restart).
    pub failovers: u64,
}

impl WorldStats {
    /// Builds from per-rank stats.
    pub fn new(per_rank: Vec<RankStats>) -> Self {
        Self {
            per_rank,
            failovers: 0,
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.per_rank.len()
    }

    /// Modeled epoch time: the slowest rank determines the bulk-
    /// synchronous step, exactly the "bottleneck process" argument of §5.
    pub fn modeled_epoch_time(&self) -> f64 {
        self.per_rank
            .iter()
            .map(RankStats::modeled_total)
            .fold(0.0, f64::max)
    }

    /// Modeled epoch time under **perfect communication/computation
    /// overlap**: per rank, `max(compute, communication)` instead of
    /// their sum. The paper's §1 lists overlap as a benefit of the
    /// sparsity-oblivious approach's regular communication pattern; this
    /// bound is the most charitable possible reading of it.
    pub fn modeled_epoch_time_overlapped(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| {
                let compute = r.phase(Phase::LocalCompute).modeled_seconds;
                let comm = r.modeled_total() - compute;
                compute.max(comm)
            })
            .fold(0.0, f64::max)
    }

    /// Max over ranks of one phase's modeled seconds (figure breakdowns).
    pub fn phase_time(&self, p: Phase) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.phase(p).modeled_seconds)
            .fold(0.0, f64::max)
    }

    /// Sum over ranks of bytes sent in one phase. Note broadcast sends
    /// are counted once at the root (tree model); when comparing a
    /// broadcast-based scheme against a point-to-point scheme, compare
    /// [`WorldStats::phase_recv_bytes_total`] instead.
    pub fn phase_bytes_total(&self, p: Phase) -> u64 {
        self.per_rank.iter().map(|r| r.phase(p).bytes_sent).sum()
    }

    /// Sum over ranks of bytes received in one phase — the volume that
    /// actually crossed each rank's ingress link.
    pub fn phase_recv_bytes_total(&self, p: Phase) -> u64 {
        self.per_rank.iter().map(|r| r.phase(p).bytes_recv).sum()
    }

    /// Mean bytes sent per rank in one phase (Table 2's "average").
    pub fn avg_send_bytes(&self, p: Phase) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.phase_bytes_total(p) as f64 / self.per_rank.len() as f64
    }

    /// Max bytes sent by any rank in one phase (Table 2's "max").
    pub fn max_send_bytes(&self, p: Phase) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.phase(p).bytes_sent)
            .max()
            .unwrap_or(0)
    }

    /// Communication load imbalance `(max/avg − 1)·100%`, the paper's
    /// Table 2 metric.
    pub fn send_imbalance_pct(&self, p: Phase) -> f64 {
        let avg = self.avg_send_bytes(p);
        if avg == 0.0 {
            return 0.0;
        }
        (self.max_send_bytes(p) as f64 / avg - 1.0) * 100.0
    }

    /// Sum over ranks of link-layer retransmissions (injected drops and
    /// corruptions that were recovered in place).
    pub fn total_retries(&self) -> u64 {
        self.per_rank.iter().map(|r| r.faults.retries).sum()
    }

    /// Sum over ranks of injected fault events (delays, drops,
    /// corruptions, slowed compute ops).
    pub fn total_injected_faults(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.faults.injected_total())
            .sum()
    }

    /// Sum over ranks of extra wire bytes moved by fault-injected
    /// retransmissions (not part of any phase's logical volume).
    pub fn total_retransmit_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.faults.retransmit_bytes)
            .sum()
    }

    /// Sum over ranks of wire bytes sent (logical + retransmits).
    pub fn total_wire_bytes_sent(&self) -> u64 {
        self.per_rank
            .iter()
            .map(RankStats::wire_bytes_sent_total)
            .sum()
    }

    /// Sum over ranks of communication seconds hidden behind compute by
    /// the pipelined overlap window.
    pub fn total_overlap_hidden_seconds(&self) -> f64 {
        self.per_rank
            .iter()
            .map(RankStats::overlap_hidden_seconds)
            .sum()
    }

    /// Sum over ranks of exposed overlap-window seconds (the part of
    /// pipelined communication compute could not hide).
    pub fn total_overlap_exposed_seconds(&self) -> f64 {
        self.per_rank
            .iter()
            .map(RankStats::overlap_exposed_seconds)
            .sum()
    }

    /// Sum over ranks of pipeline stage boundaries crossed.
    pub fn total_overlap_stages(&self) -> u64 {
        self.per_rank.iter().map(|r| r.overlap.stages).sum()
    }

    /// Sum over ranks of duplicate frames detected and discarded.
    pub fn total_duplicates_discarded(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.faults.duplicates_discarded)
            .sum()
    }

    /// Sum over ranks of process-backend reconnects (zero on thread runs).
    pub fn total_reconnects(&self) -> u64 {
        self.per_rank.iter().map(|r| r.proc.reconnects).sum()
    }

    /// Sum over ranks of replay-queue frames retransmitted on reconnect.
    pub fn total_replayed_frames(&self) -> u64 {
        self.per_rank.iter().map(|r| r.proc.replayed_frames).sum()
    }

    /// Sum over ranks of heartbeat-miss observations.
    pub fn total_heartbeat_misses(&self) -> u64 {
        self.per_rank.iter().map(|r| r.proc.heartbeat_misses).sum()
    }

    /// Sum over ranks of dial-backoff sleeps (rendezvous + reconnect).
    pub fn total_dial_backoffs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.proc.dial_backoffs).sum()
    }

    /// Sum over ranks of suspected partitions (unclean link losses).
    pub fn total_partitions_suspected(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.proc.partitions_suspected)
            .sum()
    }

    /// Sum over ranks of partitions that healed within the budget.
    pub fn total_partitions_healed(&self) -> u64 {
        self.per_rank.iter().map(|r| r.proc.partitions_healed).sum()
    }

    /// Sum over ranks of network-chaos fault activations.
    pub fn total_chaos_injected(&self) -> u64 {
        self.per_rank.iter().map(|r| r.proc.chaos_injected).sum()
    }

    /// Flattens the world's accounting into a [`gnn_trace::MetricsRegistry`]
    /// — the unification point between `RankStats` and the trace/metrics
    /// artifacts (`--metrics-out`).
    pub fn to_metrics(&self) -> gnn_trace::MetricsRegistry {
        let mut reg = gnn_trace::MetricsRegistry::new();
        reg.counter("world.ranks", self.p() as u64);
        reg.gauge("world.modeled_epoch_seconds", self.modeled_epoch_time());
        reg.gauge(
            "world.modeled_epoch_seconds_overlapped",
            self.modeled_epoch_time_overlapped(),
        );
        reg.counter("faults.retries", self.total_retries());
        reg.counter("faults.injected", self.total_injected_faults());
        reg.counter("faults.retransmit_bytes", self.total_retransmit_bytes());
        reg.counter("faults.failovers", self.failovers);
        reg.counter(
            "faults.duplicates_discarded",
            self.total_duplicates_discarded(),
        );
        // Proc-only link-layer counters are exported unconditionally
        // (zero for thread runs) so both backends produce the same
        // metrics schema and dashboards can diff them directly.
        reg.counter("proc.reconnects", self.total_reconnects());
        reg.counter("proc.replayed_frames", self.total_replayed_frames());
        reg.counter("proc.heartbeat_misses", self.total_heartbeat_misses());
        reg.counter("proc.dial_backoffs", self.total_dial_backoffs());
        reg.counter(
            "proc.partitions_suspected",
            self.total_partitions_suspected(),
        );
        reg.counter("proc.partitions_healed", self.total_partitions_healed());
        reg.counter("chaos.injected", self.total_chaos_injected());
        reg.counter("overlap.stages", self.total_overlap_stages());
        reg.gauge(
            "overlap.hidden_seconds",
            self.total_overlap_hidden_seconds(),
        );
        reg.gauge(
            "overlap.exposed_seconds",
            self.total_overlap_exposed_seconds(),
        );
        for p in PHASES {
            let name = p.name();
            reg.counter(
                format!("phase.bytes_sent{{phase={name}}}"),
                self.phase_bytes_total(p),
            );
            reg.counter(
                format!("phase.bytes_recv{{phase={name}}}"),
                self.phase_recv_bytes_total(p),
            );
            reg.gauge(
                format!("phase.max_seconds{{phase={name}}}"),
                self.phase_time(p),
            );
            reg.gauge(
                format!("phase.send_imbalance_pct{{phase={name}}}"),
                self.send_imbalance_pct(p),
            );
        }
        for (rank, r) in self.per_rank.iter().enumerate() {
            reg.gauge(
                format!("rank.modeled_seconds{{rank={rank}}}"),
                r.modeled_total(),
            );
            reg.counter(
                format!("rank.bytes_sent{{rank={rank}}}"),
                r.bytes_sent_total(),
            );
        }
        reg
    }

    /// Element-wise merge (accumulate multiple epochs/runs).
    pub fn merge(&mut self, other: &WorldStats) {
        assert_eq!(
            self.per_rank.len(),
            other.per_rank.len(),
            "rank count mismatch"
        );
        for (a, b) in self.per_rank.iter_mut().zip(&other.per_rank) {
            a.merge(b);
        }
        self.failovers += other.failovers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_with(phase: Phase, sent: u64, modeled: f64) -> RankStats {
        let mut r = RankStats::default();
        let c = r.phase_mut(phase);
        c.ops = 1;
        c.bytes_sent = sent;
        c.modeled_seconds = modeled;
        r
    }

    #[test]
    fn epoch_time_is_max_over_ranks() {
        let w = WorldStats::new(vec![
            rank_with(Phase::AllToAll, 10, 1.0),
            rank_with(Phase::AllToAll, 20, 3.0),
            rank_with(Phase::AllToAll, 5, 2.0),
        ]);
        assert_eq!(w.modeled_epoch_time(), 3.0);
    }

    #[test]
    fn imbalance_matches_table2_definition() {
        // avg = 20, max = 40 → 100%
        let w = WorldStats::new(vec![
            rank_with(Phase::AllToAll, 40, 0.0),
            rank_with(Phase::AllToAll, 10, 0.0),
            rank_with(Phase::AllToAll, 10, 0.0),
            rank_with(Phase::AllToAll, 20, 0.0),
        ]);
        assert!((w.send_imbalance_pct(Phase::AllToAll) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_world_has_zero_imbalance() {
        let w = WorldStats::new(vec![
            rank_with(Phase::Bcast, 7, 0.0),
            rank_with(Phase::Bcast, 7, 0.0),
        ]);
        assert_eq!(w.send_imbalance_pct(Phase::Bcast), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WorldStats::new(vec![rank_with(Phase::P2p, 5, 1.0)]);
        let b = WorldStats::new(vec![rank_with(Phase::P2p, 7, 2.0)]);
        a.merge(&b);
        assert_eq!(a.per_rank[0].phase(Phase::P2p).bytes_sent, 12);
        assert_eq!(a.per_rank[0].phase(Phase::P2p).modeled_seconds, 3.0);
        assert_eq!(a.per_rank[0].phase(Phase::P2p).ops, 2);
    }

    #[test]
    fn totals_span_phases() {
        let mut r = rank_with(Phase::AllToAll, 5, 1.0);
        r.phase_mut(Phase::Bcast).bytes_sent = 3;
        r.phase_mut(Phase::Bcast).modeled_seconds = 0.5;
        assert_eq!(r.bytes_sent_total(), 8);
        assert!((r.modeled_total() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_bound_takes_max_of_compute_and_comm() {
        let mut r = RankStats::default();
        r.phase_mut(Phase::LocalCompute).modeled_seconds = 2.0;
        r.phase_mut(Phase::AllToAll).modeled_seconds = 5.0;
        r.phase_mut(Phase::Bcast).modeled_seconds = 1.0;
        let w = WorldStats::new(vec![r]);
        assert_eq!(w.modeled_epoch_time(), 8.0);
        assert_eq!(w.modeled_epoch_time_overlapped(), 6.0);
    }

    #[test]
    fn overlap_equals_plain_when_compute_dominates() {
        let mut r = RankStats::default();
        r.phase_mut(Phase::LocalCompute).modeled_seconds = 9.0;
        let w = WorldStats::new(vec![r]);
        assert_eq!(w.modeled_epoch_time_overlapped(), 9.0);
    }

    #[test]
    fn empty_phase_is_zero() {
        let w = WorldStats::new(vec![RankStats::default()]);
        assert_eq!(w.phase_time(Phase::AllReduce), 0.0);
        assert_eq!(w.send_imbalance_pct(Phase::AllReduce), 0.0);
    }

    #[test]
    fn retransmit_phase_is_wire_not_logical() {
        let mut r = rank_with(Phase::P2p, 100, 1.0);
        r.phase_mut(Phase::Retransmit).bytes_sent = 40;
        assert_eq!(r.bytes_sent_total(), 100, "logical volume unperturbed");
        assert_eq!(r.wire_bytes_sent_total(), 140);
        let w = WorldStats::new(vec![r]);
        assert_eq!(w.total_wire_bytes_sent(), 140);
    }

    #[test]
    fn overlap_counters_merge_and_reconcile() {
        let mut r = RankStats::default();
        r.overlap.stages = 3;
        r.overlap.raw_comm_seconds = 5.0;
        r.overlap.hidden_seconds = 4.0;
        r.phase_mut(Phase::Overlap).modeled_seconds = 1.0;
        r.phase_mut(Phase::Overlap).ops = 3;
        assert_eq!(r.overlap_hidden_seconds(), 4.0);
        assert_eq!(r.overlap_exposed_seconds(), 1.0);
        // exposed + hidden = raw comm (the blocking-equivalent price).
        assert_eq!(
            r.overlap_exposed_seconds() + r.overlap_hidden_seconds(),
            r.overlap.raw_comm_seconds
        );
        let mut a = r.clone();
        a.merge(&r);
        assert_eq!(a.overlap.stages, 6);
        assert_eq!(a.overlap.hidden_seconds, 8.0);
        let w = WorldStats::new(vec![a]);
        assert_eq!(w.total_overlap_stages(), 6);
        assert_eq!(w.total_overlap_hidden_seconds(), 8.0);
        assert_eq!(w.total_overlap_exposed_seconds(), 2.0);
        let reg = w.to_metrics();
        assert_eq!(reg.counter_value("overlap.stages"), Some(6));
    }

    #[test]
    fn failovers_merge_and_export() {
        let mut a = WorldStats::new(vec![RankStats::default()]);
        a.failovers = 1;
        let mut b = WorldStats::new(vec![RankStats::default()]);
        b.failovers = 2;
        a.merge(&b);
        assert_eq!(a.failovers, 3);
        let reg = a.to_metrics();
        assert_eq!(reg.counter_value("faults.failovers"), Some(3));
    }
}
