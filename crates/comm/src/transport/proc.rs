//! The process-backed [`Transport`]: ranks are real OS processes
//! exchanging length-prefixed frames ([`super::wire`]) over Unix-domain
//! sockets — or, with a hostfile ([`crate::HostFile`]), over TCP for
//! multi-node runs.
//!
//! Where [`super::thread::ThreadTransport`] simulates failure with flags
//! and modeled time, this backend faces the real thing:
//!
//! * **Rendezvous** — every rank binds its own mesh listener
//!   (`<dir>/rank<r>.sock`, or a TCP listener on its hostfile port),
//!   non-zero ranks dial rank 0's rendezvous endpoint to REGISTER their
//!   mesh address (retrying with capped exponential backoff + jitter up
//!   to the hard wire-up deadline), and rank 0 replies with the full
//!   ADDRBOOK. Higher ranks then dial lower ranks for a full mesh (one
//!   full-duplex connection per pair). A duplicate REGISTER or a
//!   registrant dying mid-rendezvous fails the world with a structured
//!   error well before the deadline.
//! * **Reliable links** — DATA and barrier frames carry a per-direction
//!   `link_seq` and live in a [`ReplayQueue`] until cumulatively ACKed,
//!   so a reconnect retransmits exactly the unacknowledged suffix and
//!   the receiver's [`DedupWatermark`] filters the duplicates. The
//!   upper layer ([`crate::RankCtx`]) never observes a socket bounce:
//!   its own seq/FNV state machine sees the same frame stream either
//!   way.
//! * **Liveness** — a heartbeat thread beacons every peer and marks a
//!   peer dead after a miss threshold; death drops the peer's delivery
//!   channel so blocked receives fail fast with the same "hung up"
//!   semantics the thread backend gets from a dropped channel. The
//!   transport cannot distinguish "peer process died" from "link
//!   partitioned past the deadline" — both exhaust the same budget and
//!   both funnel into the trainer's checkpoint-restart ladder; a
//!   partition that *heals* within the budget is absorbed by
//!   reconnect + replay with bit-identical results.
//! * **Reconnect** — the dialing side (higher rank) redials with capped
//!   exponential backoff + deterministic jitter ([`Backoff`]) on
//!   transient errors; the listening side simply accepts the
//!   replacement connection and replays.
//! * **Shutdown** — a finishing rank sends BYE, drains briefly, then
//!   closes (SIGTERM triggers the same drain then `exit(143)`).
//!   A SIGKILL'd rank never says BYE: peers see an unclean EOF or
//!   missed heartbeats and fail over to the trainer's
//!   checkpoint-restart ladder.
//! * **Network chaos** — an optional deterministic interposer
//!   ([`crate::NetChaosPlan`], armed via
//!   [`ProcWorld::with_net_chaos`] or `GNN_PROC_NET_CHAOS`) sits on
//!   the frame write path and the dial/accept path, injecting seeded
//!   per-link latency/jitter, bandwidth caps, byte-threshold cuts,
//!   partitions, and connection-refused windows — real TCP resets and
//!   refused dials, replayed exactly from the seed. Windowed faults
//!   fire only in supervised restart generation 0 by default (the
//!   `<dir>/generation` file, written by the supervisor via
//!   [`write_proc_generation`], tells children their generation), so a
//!   fault that forces a restart does not re-fire forever.
//!
//! * **Observability** — every link keeps live transport metrics
//!   (frame send latency / receive-gap histograms, retransmit /
//!   reconnect / heartbeat-miss / dial-backoff / partition counters,
//!   wire-vs-logical byte gauges) in [`Shared`]; with
//!   `GNN_PROC_METRICS_MS=<n>` each rank appends a periodic JSONL
//!   snapshot (`metrics-rank<r>.jsonl`) the supervisor can aggregate
//!   while a run is in flight. The rendezvous handshake ends with an
//!   NTP-style clock-offset exchange (CLOCK_PING/PONG request/reply
//!   midpoint) so rank 0 can estimate every peer's monotonic-clock
//!   offset and write `clock-offsets.json` — the sidecar `trace-report
//!   --merge` uses to align per-rank wall-clock traces onto one axis.
//!   Chaos fault activations are exported onto the trace wall axis as
//!   `chaos_*` events at run end.
//!
//! Set `GNN_PROC_DROP_CONN_AFTER=<n>` to forcibly shut one connection
//! down after the n-th DATA send — a deterministic transient-fault hook
//! the reconnect tests use.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Write};
use std::net::Shutdown;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gnn_trace::{EventKind, Histogram, MetricsRegistry, RankTracer};

use crate::cost::CostModel;
use crate::ctx::RankCtx;
use crate::error::{
    ColumnLostPanic, CrashPanic, DeadlockPanic, DeadlockReport, EpochAbortPanic, WaitKind,
};
use crate::fault::{FaultInjector, FaultPlan};
use crate::msg::Msg;
use crate::stats::RankStats;
use crate::watchdog::{DeathRecord, Watchdog};
use crate::world::PanicHookGuard;

use super::chaos::{Chaos, NetChaosPlan, SendVerdict};
use super::net::{lock_or_recover, splitmix64, Backoff, HostFile, Listener, Stream};
use super::replay::{DedupWatermark, ReplayQueue};
use super::wire::{self, kind, Frame};
use super::{PeerGone, RecvOutcome, Transport, TryRecvOutcome};

/// Poll slice for interruptible blocking waits (sigterm + death checks).
const SLICE: Duration = Duration::from_millis(25);

/// Default heartbeat beacon period (override: `GNN_PROC_HEARTBEAT_MS`).
const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(200);

/// Default missed-beacon threshold before a peer is declared dead
/// (override: `GNN_PROC_MISS`).
const DEFAULT_MISS: u32 = 15;

// ---- SIGTERM --------------------------------------------------------------

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM handler that requests a drain-then-exit. Raw FFI
/// to keep the build dependency-free; `signal` is fine here because the
/// handler only stores to an atomic.
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

fn sigterm_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

// ---- Errors ---------------------------------------------------------------

/// Failure launching or running one process-backend rank.
#[derive(Debug)]
pub enum ProcError {
    /// Socket or filesystem failure during wire-up or shutdown.
    Io(io::Error),
    /// The rank's body panicked (protocol violation, peer death,
    /// deadlock, injected crash); the message is the decoded payload.
    RankPanicked {
        /// Which rank.
        rank: usize,
        /// Human-readable panic description.
        message: String,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "process backend I/O error: {e}"),
            ProcError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

impl From<io::Error> for ProcError {
    fn from(e: io::Error) -> Self {
        ProcError::Io(e)
    }
}

/// Decodes a caught panic payload into the message a supervisor logs.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(d) = payload.downcast_ref::<DeadlockPanic>() {
        format!("deadlock: {:?}", d.0)
    } else if let Some(c) = payload.downcast_ref::<CrashPanic>() {
        format!(
            "injected crash on rank {} at epoch {:?} op {}",
            c.rank, c.epoch, c.op
        )
    } else if let Some(a) = payload.downcast_ref::<EpochAbortPanic>() {
        format!("epoch abort (generation {})", a.generation)
    } else if let Some(l) = payload.downcast_ref::<ColumnLostPanic>() {
        format!("replica column {} lost", l.block_row)
    } else {
        "unknown panic payload".to_string()
    }
}

// ---- Per-peer connection state -------------------------------------------

/// Writer-side state for one peer link.
struct Conn {
    /// Writer half of the current connection (a `try_clone` of the
    /// reader's stream); `None` while disconnected.
    stream: Option<Stream>,
    /// Bumped on every (re)connect; readers use it to tell whether the
    /// connection that just died is still the current one.
    epoch: u64,
    /// Sender half of the reliable layer: seq assignment + retained
    /// unACKed frames (see [`super::replay`] for the pinned invariants).
    replay: ReplayQueue,
    /// Receiver half: cumulative delivered watermark for dedup.
    dedup: DedupWatermark,
}

struct Peer {
    conn: Mutex<Conn>,
    /// Delivery channel into the owning transport; taking it to `None`
    /// is how death/clean-close turns blocked receives into
    /// `Disconnected` (mirroring a dropped mpsc sender in the thread
    /// backend).
    data_tx: Mutex<Option<Sender<Msg>>>,
    /// Milliseconds since transport start when a frame last arrived.
    last_seen_ms: AtomicU64,
    /// Declared dead by the liveness monitor or reconnect exhaustion.
    dead: AtomicBool,
    /// Peer announced graceful shutdown (BYE).
    bye: AtomicBool,
}

impl Peer {
    fn new() -> Self {
        Peer {
            conn: Mutex::new(Conn {
                stream: None,
                epoch: 0,
                replay: ReplayQueue::new(),
                dedup: DedupWatermark::new(),
            }),
            data_tx: Mutex::new(None),
            last_seen_ms: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            bye: AtomicBool::new(false),
        }
    }
}

// ---- Transport metrics ----------------------------------------------------

/// Live link-layer metrics for one rank process: lock-free counters on
/// the frame path plus two mutex-guarded latency histograms (socket
/// writes are already serialized per peer, so the lock is uncontended).
/// Snapshot at any time via [`Shared::metrics_registry`].
struct TransportMetrics {
    /// Successful dialer-side reconnects.
    reconnects: AtomicU64,
    /// Reliable frames retransmitted from the replay queue when a
    /// (re)connection was installed.
    replayed_frames: AtomicU64,
    /// Monitor ticks that saw a peer silent past one heartbeat period.
    heartbeat_misses: AtomicU64,
    /// Backoff sleeps across every dial loop (rendezvous, mesh wire-up,
    /// reconnect) — how hard this rank had to fight to get connected.
    dial_backoffs: AtomicU64,
    /// Unclean connection losses while the world was healthy: each one
    /// is a *suspected* partition (indistinguishable from a peer crash
    /// until reconnect either succeeds or exhausts the budget).
    partitions_suspected: AtomicU64,
    /// Reconnections that replaced a previously established link — a
    /// suspected partition that healed within the liveness budget.
    partitions_healed: AtomicU64,
    /// Encoded frame bytes pushed onto sockets (headers included).
    wire_bytes_sent: AtomicU64,
    /// Encoded frame bytes read off sockets (headers included).
    wire_bytes_recv: AtomicU64,
    /// DATA frame body bytes sent (the logical payload volume).
    data_bytes_sent: AtomicU64,
    /// DATA frame body bytes received.
    data_bytes_recv: AtomicU64,
    /// Blocking write+flush latency per reliable frame, microseconds.
    frame_send_us: Mutex<Histogram>,
    /// Gap between consecutive received frames (any peer), microseconds.
    frame_recv_gap_us: Mutex<Histogram>,
    /// Elapsed-µs stamp of the last received frame (`u64::MAX` = none).
    last_recv_us: AtomicU64,
}

impl TransportMetrics {
    /// Power-of-two microsecond buckets from 1 µs to ~1 s.
    fn us_buckets() -> Histogram {
        Histogram::new((0..=20).map(|e| 1u64 << e).collect())
    }

    fn new() -> Self {
        TransportMetrics {
            reconnects: AtomicU64::new(0),
            replayed_frames: AtomicU64::new(0),
            heartbeat_misses: AtomicU64::new(0),
            dial_backoffs: AtomicU64::new(0),
            partitions_suspected: AtomicU64::new(0),
            partitions_healed: AtomicU64::new(0),
            wire_bytes_sent: AtomicU64::new(0),
            wire_bytes_recv: AtomicU64::new(0),
            data_bytes_sent: AtomicU64::new(0),
            data_bytes_recv: AtomicU64::new(0),
            frame_send_us: Mutex::new(Self::us_buckets()),
            frame_recv_gap_us: Mutex::new(Self::us_buckets()),
            last_recv_us: AtomicU64::new(u64::MAX),
        }
    }

    fn record_send(&self, wire_len: u64, dur_us: u64) {
        self.wire_bytes_sent.fetch_add(wire_len, Ordering::Relaxed);
        lock_or_recover(&self.frame_send_us).record(dur_us);
    }

    fn record_recv(&self, wire_len: u64, now_us: u64) {
        self.wire_bytes_recv.fetch_add(wire_len, Ordering::Relaxed);
        let prev = self.last_recv_us.swap(now_us, Ordering::Relaxed);
        if prev != u64::MAX {
            lock_or_recover(&self.frame_recv_gap_us).record(now_us.saturating_sub(prev));
        }
    }
}

// ---- Shared state ---------------------------------------------------------

struct Shared {
    rank: usize,
    p: usize,
    timeout: Duration,
    heartbeat: Duration,
    miss: u32,
    start: Instant,
    addrbook: Vec<String>,
    peers: Vec<Peer>,
    dead: Mutex<Vec<DeathRecord>>,
    /// Rank 0 only: barrier-entry announcements (src, round).
    entries_tx: Mutex<Option<Sender<(u32, u64)>>>,
    /// Non-zero ranks: barrier releases from rank 0.
    release_tx: Mutex<Option<Sender<u64>>>,
    /// We started shutting down (gracefully or not): background threads
    /// exit and connection teardown stops triggering reconnects.
    shutting_down: AtomicBool,
    /// DATA frames sent process-wide (the drop-injection trigger).
    data_sent: AtomicU64,
    drop_after: Option<u64>,
    drop_fired: AtomicBool,
    log: Mutex<File>,
    /// Live link-layer metrics (snapshot via [`Shared::metrics_registry`]).
    metrics: TransportMetrics,
    /// Deterministic network-chaos interposer (None = clean network).
    chaos: Option<Chaos>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Snapshots the live transport metrics into a registry under
    /// `proc.*` keys — the per-rank half of the `--metrics-interval`
    /// stream and the source for [`crate::ProcCounters`] at run end.
    fn metrics_registry(&self) -> MetricsRegistry {
        let m = &self.metrics;
        let mut reg = MetricsRegistry::new();
        reg.counter("proc.reconnects", m.reconnects.load(Ordering::Relaxed));
        reg.counter(
            "proc.replayed_frames",
            m.replayed_frames.load(Ordering::Relaxed),
        );
        reg.counter(
            "proc.heartbeat_misses",
            m.heartbeat_misses.load(Ordering::Relaxed),
        );
        reg.counter(
            "proc.dial_backoffs",
            m.dial_backoffs.load(Ordering::Relaxed),
        );
        reg.counter(
            "proc.partitions_suspected",
            m.partitions_suspected.load(Ordering::Relaxed),
        );
        reg.counter(
            "proc.partitions_healed",
            m.partitions_healed.load(Ordering::Relaxed),
        );
        if let Some(c) = &self.chaos {
            reg.counter(
                "chaos.delays_injected",
                c.delays_injected.load(Ordering::Relaxed),
            );
            reg.counter(
                "chaos.severs_injected",
                c.severs_injected.load(Ordering::Relaxed),
            );
            reg.counter(
                "chaos.dials_refused",
                c.dials_refused.load(Ordering::Relaxed),
            );
        }
        reg.gauge(
            "proc.wire_bytes_sent",
            m.wire_bytes_sent.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "proc.wire_bytes_recv",
            m.wire_bytes_recv.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "proc.data_bytes_sent",
            m.data_bytes_sent.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "proc.data_bytes_recv",
            m.data_bytes_recv.load(Ordering::Relaxed) as f64,
        );
        reg.hist(
            "proc.frame_send_us",
            lock_or_recover(&m.frame_send_us).clone(),
        );
        reg.hist(
            "proc.frame_recv_gap_us",
            lock_or_recover(&m.frame_recv_gap_us).clone(),
        );
        reg
    }

    fn log(&self, msg: &str) {
        let mut f = lock_or_recover(&self.log);
        let _ = writeln!(f, "[{:9.3}s] {}", self.start.elapsed().as_secs_f64(), msg);
    }

    /// Writes one encoded frame to `slot`, with the chaos interposer in
    /// the path: an injected latency/bandwidth verdict holds the frame
    /// (sleeping with the conn lock held — a slow wire serializes the
    /// link exactly like this), a sever verdict tears the connection
    /// down instead of writing (the frame stays queued for replay).
    /// Returns `true` when the bytes actually went out.
    fn gated_write(&self, dst: usize, slot: &mut Option<Stream>, bytes: &[u8]) -> bool {
        if slot.is_none() {
            return false;
        }
        if let Some(chaos) = &self.chaos {
            match chaos.on_send(dst, bytes.len() as u64, self.now_us()) {
                SendVerdict::Deliver { delay } => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                SendVerdict::Sever { why } => {
                    self.log(&format!("chaos: severing link to rank {dst} ({why})"));
                    if let Some(stream) = slot.take() {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    return false;
                }
            }
        }
        let stream = slot.as_mut().expect("stream checked above");
        let t0 = Instant::now();
        let outcome = stream.write_all(bytes).and_then(|_| stream.flush());
        if outcome.is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            *slot = None;
            false
        } else {
            self.metrics
                .record_send(bytes.len() as u64, t0.elapsed().as_micros() as u64);
            true
        }
    }

    /// Queues a reliable frame for `dst` (replayed across reconnects)
    /// and attempts an immediate write.
    fn send_reliable(&self, dst: usize, kind_byte: u8, body: Vec<u8>) -> Result<(), PeerGone> {
        let peer = &self.peers[dst];
        if peer.dead.load(Ordering::SeqCst) || peer.bye.load(Ordering::SeqCst) {
            return Err(PeerGone);
        }
        let mut conn = lock_or_recover(&peer.conn);
        let link_seq = conn.replay.assign_seq();
        let body_len = body.len() as u64;
        let frame = Frame {
            kind: kind_byte,
            src: self.rank as u32,
            link_seq,
            body,
        };
        let bytes = wire::encode_frame(&frame);
        conn.replay.push(link_seq, bytes.clone());
        {
            let Conn { stream, .. } = &mut *conn;
            self.gated_write(dst, stream, &bytes);
        }
        if kind_byte == kind::DATA {
            self.metrics
                .data_bytes_sent
                .fetch_add(body_len, Ordering::Relaxed);
            let n = self.data_sent.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(after) = self.drop_after {
                if n >= after && !self.drop_fired.swap(true, Ordering::SeqCst) {
                    self.log(&format!(
                        "fault hook: dropping connection to rank {dst} after DATA #{n}"
                    ));
                    if let Some(stream) = conn.stream.take() {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                }
            }
        }
        Ok(())
    }

    /// Best-effort unreliable control frame (HEARTBEAT, BYE, ACK).
    fn send_control(&self, dst: usize, frame: &Frame) {
        let bytes = wire::encode_frame(frame);
        let mut conn = lock_or_recover(&self.peers[dst].conn);
        let Conn { stream, .. } = &mut *conn;
        self.gated_write(dst, stream, &bytes);
    }

    fn mark_peer_dead(&self, q: usize, why: &str) {
        let peer = &self.peers[q];
        if peer.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        self.log(&format!("peer rank {q} declared dead: {why}"));
        lock_or_recover(&self.dead).push(DeathRecord { rank: q, gen: 0 });
        // Wake anything blocked on this peer: receives observe
        // `Disconnected` once the sender is gone, the reader wakes on
        // the shutdown.
        *lock_or_recover(&peer.data_tx) = None;
        let mut conn = lock_or_recover(&peer.conn);
        if let Some(stream) = conn.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn any_peer_dead(&self) -> bool {
        (0..self.p).any(|q| q != self.rank && self.peers[q].dead.load(Ordering::SeqCst))
    }

    /// Graceful shutdown: BYE every live peer, wait briefly for theirs,
    /// then tear the mesh down.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for q in 0..self.p {
            if q == self.rank || self.peers[q].dead.load(Ordering::SeqCst) {
                continue;
            }
            self.send_control(q, &Frame::control(kind::BYE, self.rank));
        }
        // Drain: give peers a moment to BYE back so both sides close at
        // a frame boundary instead of racing EOF against final ACKs.
        let deadline = Instant::now() + Duration::from_millis(750);
        while Instant::now() < deadline {
            let all_done = (0..self.p).all(|q| {
                q == self.rank
                    || self.peers[q].dead.load(Ordering::SeqCst)
                    || self.peers[q].bye.load(Ordering::SeqCst)
            });
            if all_done {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown();
        self.log("graceful shutdown complete");
    }

    /// Unclean shutdown (rank panicked): no BYE, peers see a raw EOF
    /// and route it into their own failure handling.
    fn abort_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.teardown();
        self.log("abortive shutdown (no BYE)");
    }

    fn teardown(&self) {
        for q in 0..self.p {
            if q == self.rank {
                continue;
            }
            let mut conn = lock_or_recover(&self.peers[q].conn);
            if let Some(stream) = conn.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        *lock_or_recover(&self.entries_tx) = None;
        *lock_or_recover(&self.release_tx) = None;
    }

    /// SIGTERM: drain connections, then exit with the conventional
    /// 128+15 status.
    fn drain_and_exit(&self) -> ! {
        self.log("SIGTERM received: draining connections");
        self.begin_shutdown();
        std::process::exit(143);
    }
}

// ---- Connection wiring ----------------------------------------------------

/// Installs `stream` as the current connection to `q`: syncs the replay
/// queue against the peer's delivered watermark, retransmits the
/// unacknowledged suffix, and spawns a reader for the new connection.
fn install_conn(
    shared: &Arc<Shared>,
    q: usize,
    stream: Stream,
    peer_watermark: u64,
) -> io::Result<()> {
    let writer = stream.try_clone()?;
    let peer = &shared.peers[q];
    let epoch;
    {
        let mut conn = lock_or_recover(&peer.conn);
        if let Some(old) = conn.stream.take() {
            let _ = old.shutdown(Shutdown::Both);
        }
        if conn.epoch > 0 {
            // This link existed before and is coming back: whatever
            // took it down (reset, partition, peer restart of the
            // connection) healed within the liveness budget.
            shared
                .metrics
                .partitions_healed
                .fetch_add(1, Ordering::Relaxed);
        }
        conn.epoch += 1;
        epoch = conn.epoch;
        conn.replay.ack(peer_watermark);
        conn.stream = Some(writer);
        // Retransmit the unacknowledged suffix through the same gated
        // path as live traffic (chaos shapes replays too). A failed or
        // severed write clears the stream; the remaining suffix stays
        // queued for the next reconnect.
        let mut replayed = 0u64;
        let Conn { stream, replay, .. } = &mut *conn;
        for bytes in replay.unacked() {
            if !shared.gated_write(q, stream, bytes) {
                break;
            }
            replayed += 1;
        }
        shared
            .metrics
            .replayed_frames
            .fetch_add(replayed, Ordering::Relaxed);
        shared.log(&format!(
            "link to rank {q} up (epoch {epoch}, peer watermark {peer_watermark}, replayed {replayed})"
        ));
    }
    peer.last_seen_ms.store(shared.now_ms(), Ordering::SeqCst);
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("proc-read-{q}"))
        .spawn(move || reader_loop(shared, q, stream, epoch))
        .map(|_| ())
}

/// Reads frames off one connection to peer `q` until it dies, then
/// hands off to reconnect/death handling.
fn reader_loop(shared: Arc<Shared>, q: usize, stream: Stream, epoch: u64) {
    let _ = stream.set_read_timeout(None);
    let raw = match stream.try_clone() {
        Ok(c) => c,
        Err(_) => stream,
    };
    let mut r = BufReader::new(raw);
    let reason = loop {
        match wire::read_frame(&mut r) {
            Ok(Some(frame)) => {
                shared.peers[q]
                    .last_seen_ms
                    .store(shared.now_ms(), Ordering::SeqCst);
                shared.metrics.record_recv(
                    wire::FRAME_OVERHEAD + frame.body.len() as u64,
                    shared.now_us(),
                );
                if frame.kind == kind::DATA {
                    shared
                        .metrics
                        .data_bytes_recv
                        .fetch_add(frame.body.len() as u64, Ordering::Relaxed);
                }
                route_frame(&shared, q, frame);
            }
            Ok(None) => break "EOF".to_string(),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => break format!("read error: {e}"),
        }
    };
    on_conn_end(&shared, q, epoch, &reason);
}

/// Routes one received frame to the right consumer.
fn route_frame(shared: &Arc<Shared>, q: usize, frame: Frame) {
    let peer = &shared.peers[q];
    match frame.kind {
        kind::DATA | kind::BARRIER_ENTER | kind::BARRIER_RELEASE => {
            // Reliable frame: watermark-dedup, ack, then deliver.
            {
                let mut conn = lock_or_recover(&peer.conn);
                if !conn.dedup.admit(frame.link_seq) {
                    return; // duplicate from a replay
                }
                let ack = wire::encode_frame(&Frame::with_u64(
                    kind::ACK,
                    shared.rank,
                    conn.dedup.delivered(),
                ));
                let Conn { stream, .. } = &mut *conn;
                shared.gated_write(q, stream, &ack);
            }
            match frame.kind {
                kind::DATA => {
                    let msg = match wire::decode_msg(&frame.body) {
                        Ok(m) => m,
                        Err(e) => {
                            shared.log(&format!("rank {q}: undecodable DATA frame: {e}"));
                            return;
                        }
                    };
                    let tx = lock_or_recover(&peer.data_tx).clone();
                    if let Some(tx) = tx {
                        let _ = tx.send(msg);
                    }
                }
                kind::BARRIER_ENTER => {
                    if let Ok(round) = frame.body_u64() {
                        let tx = lock_or_recover(&shared.entries_tx).clone();
                        if let Some(tx) = tx {
                            let _ = tx.send((frame.src, round));
                        }
                    }
                }
                _ => {
                    // BARRIER_RELEASE
                    if let Ok(round) = frame.body_u64() {
                        let tx = lock_or_recover(&shared.release_tx).clone();
                        if let Some(tx) = tx {
                            let _ = tx.send(round);
                        }
                    }
                }
            }
        }
        kind::ACK => {
            if let Ok(watermark) = frame.body_u64() {
                lock_or_recover(&peer.conn).replay.ack(watermark);
            }
        }
        kind::HEARTBEAT => {} // last_seen already updated
        kind::BYE => {
            shared.log(&format!("rank {q} said BYE"));
            peer.bye.store(true, Ordering::SeqCst);
        }
        other => shared.log(&format!("rank {q}: unexpected frame kind {other}")),
    }
}

/// A connection to `q` ended: clean-close after BYE, ignore if stale or
/// shutting down, reconnect if we are the dialing side, else leave it
/// to the liveness monitor.
fn on_conn_end(shared: &Arc<Shared>, q: usize, epoch: u64, reason: &str) {
    let peer = &shared.peers[q];
    {
        let mut conn = lock_or_recover(&peer.conn);
        if conn.epoch != epoch {
            return; // a newer connection has already replaced this one
        }
        if let Some(stream) = conn.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
    if shared.shutting_down.load(Ordering::SeqCst) || peer.dead.load(Ordering::SeqCst) {
        return;
    }
    if peer.bye.load(Ordering::SeqCst) {
        // Graceful close: future receives must see `Disconnected`, the
        // thread-backend analogue of a finished rank dropping its
        // channels. Queued messages already delivered remain readable.
        shared.log(&format!("link to rank {q} closed cleanly"));
        *lock_or_recover(&peer.data_tx) = None;
        return;
    }
    // An unclean loss while healthy: from here it is either a crashed
    // peer or a partitioned link — indistinguishable until reconnect
    // resolves it one way or the other.
    shared
        .metrics
        .partitions_suspected
        .fetch_add(1, Ordering::Relaxed);
    shared.log(&format!("link to rank {q} lost ({reason})"));
    if q < shared.rank {
        reconnect_loop(shared, q);
    }
    // q > rank: the peer dials us; the acceptor installs the
    // replacement and the heartbeat monitor handles true death.
}

/// Dialer-side reconnect with capped exponential backoff + jitter,
/// bounded by the liveness budget (miss threshold × heartbeat period).
fn reconnect_loop(shared: &Arc<Shared>, q: usize) {
    let budget = shared.heartbeat * shared.miss;
    let deadline = Instant::now() + budget.max(Duration::from_secs(1));
    let mut backoff = Backoff::new(20, 500, splitmix64(((shared.rank as u64) << 32) ^ q as u64));
    let addr = shared.addrbook[q].clone();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst)
            || shared.peers[q].dead.load(Ordering::SeqCst)
        {
            return;
        }
        match dial_peer(shared, q, &addr) {
            Ok(()) => {
                shared.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                shared.log(&format!("reconnected to rank {q}"));
                return;
            }
            Err(e) => {
                shared.log(&format!("redial rank {q} failed: {e}"));
            }
        }
        if Instant::now() >= deadline {
            shared.mark_peer_dead(
                q,
                "reconnect budget exhausted (peer process died or partition outlived the deadline)",
            );
            return;
        }
        shared.metrics.dial_backoffs.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(backoff.next());
    }
}

/// Dials peer `q` and runs the HELLO exchange (dialer side: HELLO out,
/// HELLO back carrying the peer's delivered watermark).
fn dial_peer(shared: &Arc<Shared>, q: usize, addr: &str) -> io::Result<()> {
    if let Some(chaos) = &shared.chaos {
        if let Some(why) = chaos.dial_refused(q, shared.now_ms()) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("chaos: {why}"),
            ));
        }
    }
    let mut stream = Stream::connect(addr)?;
    let delivered = lock_or_recover(&shared.peers[q].conn).dedup.delivered();
    wire::write_frame(
        &mut stream,
        &Frame::with_u64(kind::HELLO, shared.rank, delivered),
    )?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let hello = wire::read_frame(&mut &stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before HELLO reply"))?;
    stream.set_read_timeout(None)?;
    if hello.kind != kind::HELLO || hello.src as usize != q {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad HELLO reply",
        ));
    }
    install_conn(shared, q, stream, hello.body_u64()?)
}

/// Mesh accept loop: each incoming connection leads with HELLO(src,
/// watermark); we reply with our own watermark and install it.
fn acceptor_loop(shared: Arc<Shared>, listener: Listener) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let _ = stream.set_nonblocking(false);
                if let Err(e) = handle_accept(&shared, stream) {
                    shared.log(&format!("accept handshake failed: {e}"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(SLICE);
            }
            Err(e) => {
                shared.log(&format!("accept error: {e}"));
                std::thread::sleep(SLICE);
            }
        }
    }
}

fn handle_accept(shared: &Arc<Shared>, mut stream: Stream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let hello = wire::read_frame(&mut &stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before HELLO"))?;
    stream.set_read_timeout(None)?;
    if hello.kind != kind::HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected HELLO"));
    }
    let q = hello.src as usize;
    if q >= shared.p || q == shared.rank {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "HELLO from invalid rank",
        ));
    }
    if shared.peers[q].dead.load(Ordering::SeqCst) {
        // No resurrection: once declared dead, stay dead (the
        // supervisor restarts the whole generation).
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "peer already declared dead",
        ));
    }
    if let Some(chaos) = &shared.chaos {
        // A partitioned link refuses replacement connections in both
        // directions until the window heals — otherwise the dialer
        // would punch straight through the partition.
        let now = shared.now_ms();
        if chaos.partitioned(q, shared.rank, now) || chaos.partitioned(shared.rank, q, now) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "chaos: link partitioned",
            ));
        }
    }
    let delivered = lock_or_recover(&shared.peers[q].conn).dedup.delivered();
    wire::write_frame(
        &mut stream,
        &Frame::with_u64(kind::HELLO, shared.rank, delivered),
    )?;
    install_conn(shared, q, stream, hello.body_u64()?)
}

/// Heartbeat thread: beacon every peer each period; declare a peer dead
/// once its silence exceeds the miss threshold.
fn monitor_loop(shared: Arc<Shared>) {
    let period_ms = shared.heartbeat.as_millis().max(1) as u64;
    loop {
        let wake = Instant::now() + shared.heartbeat;
        while Instant::now() < wake {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20).min(shared.heartbeat));
        }
        let now = shared.now_ms();
        for q in 0..shared.p {
            if q == shared.rank {
                continue;
            }
            let peer = &shared.peers[q];
            if peer.dead.load(Ordering::SeqCst) || peer.bye.load(Ordering::SeqCst) {
                continue;
            }
            shared.send_control(q, &Frame::control(kind::HEARTBEAT, shared.rank));
            let age = now.saturating_sub(peer.last_seen_ms.load(Ordering::SeqCst));
            if age > period_ms {
                // Each tick past one beacon period of silence is one
                // observed miss; `miss` consecutive observations is
                // death below.
                shared
                    .metrics
                    .heartbeat_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
            if age > u64::from(shared.miss) * period_ms {
                shared.mark_peer_dead(
                    q,
                    &format!("no frames for {age} ms (process died or link partitioned past the deadline)"),
                );
            }
        }
    }
}

// ---- Rendezvous -----------------------------------------------------------

fn rendezvous_path(dir: &Path) -> PathBuf {
    dir.join("rendezvous.sock")
}

fn mesh_path(dir: &Path, rank: usize) -> String {
    dir.join(format!("rank{rank}.sock"))
        .to_string_lossy()
        .into_owned()
}

/// File rank 0 writes its rendezvous-estimated per-rank clock offsets
/// into (consumed by `trace-report --merge` to align wall clocks).
pub(crate) fn clock_offsets_path(dir: &Path) -> PathBuf {
    dir.join("clock-offsets.json")
}

/// Restart-generation file the supervisor writes under the run dir
/// before each spawn round; children read it at connect time so
/// windowed chaos faults can stay generation-0-only.
fn generation_path(dir: &Path) -> PathBuf {
    dir.join("generation")
}

/// Supervisor side: records restart generation `generation` under `dir`
/// before (re)spawning a rank round. Children pick it up in
/// `ProcTransport::connect`; a missing file reads as generation 0.
pub fn write_proc_generation(dir: &Path, generation: u64) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(generation_path(dir), format!("{generation}\n"))
}

fn read_proc_generation(dir: &Path) -> u64 {
    fs::read_to_string(generation_path(dir))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Rank 0: runs the NTP-style midpoint exchange against one held
/// rendezvous stream. Three CLOCK_PING/PONG round trips; the minimum-RTT
/// sample wins (least queueing noise). The returned offset is
/// `t1 − (t0 + t2)/2` — what to *subtract* from the peer's wall reading
/// to land it on rank 0's clock axis.
fn estimate_clock_offset(stream: &Stream, src: usize, anchor: &Instant) -> io::Result<f64> {
    let mut best_rtt = f64::INFINITY;
    let mut best_offset = 0.0f64;
    for _ in 0..3 {
        let t0 = anchor.elapsed().as_secs_f64();
        wire::write_frame(&mut &*stream, &Frame::control(kind::CLOCK_PING, 0))?;
        let pong = wire::read_frame(&mut &*stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before CLOCK_PONG"))?;
        let t2 = anchor.elapsed().as_secs_f64();
        if pong.kind != kind::CLOCK_PONG || pong.src as usize != src {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected CLOCK_PONG",
            ));
        }
        let t1 = f64::from_bits(pong.body_u64()?);
        if !t1.is_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "non-finite CLOCK_PONG timestamp",
            ));
        }
        let rtt = t2 - t0;
        if rtt < best_rtt {
            best_rtt = rtt;
            best_offset = t1 - 0.5 * (t0 + t2);
        }
    }
    Ok(best_offset)
}

/// Nonblocking probe of a held rendezvous stream. A registrant must be
/// silent between REGISTER and the CLOCK_PING exchange, so readable
/// bytes are a protocol violation and EOF means the rank died
/// mid-rendezvous; both must fail the world now rather than stall every
/// rank until the wire-up deadline.
fn rendezvous_conn_died(stream: &Stream) -> io::Result<bool> {
    stream.set_nonblocking(true)?;
    let mut byte = [0u8; 1];
    let outcome = (&mut &*stream).read(&mut byte);
    stream.set_nonblocking(false)?;
    match outcome {
        Ok(0) => Ok(true),
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected bytes before the clock exchange",
        )),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
        Err(e) => Err(e),
    }
}

/// Rank 0: collect REGISTER(addr) from every other rank on `listener`
/// (Unix or TCP), estimate each registrant's clock offset over the held
/// stream, then reply to each with the full ADDRBOOK. Offsets land in
/// `clock-offsets.json`.
fn rendezvous_serve(
    listener: Listener,
    dir: &Path,
    p: usize,
    my_addr: &str,
    deadline: Instant,
    anchor: &Instant,
) -> io::Result<Vec<String>> {
    listener.set_nonblocking(true)?;
    let mut book: Vec<Option<String>> = vec![None; p];
    book[0] = Some(my_addr.to_string());
    let mut conns: Vec<(usize, Stream)> = Vec::new();
    while conns.len() < p - 1 {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "rendezvous: only {}/{} ranks registered",
                    conns.len(),
                    p - 1
                ),
            ));
        }
        match listener.accept() {
            Ok(stream) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_secs(2)))?;
                let frame = wire::read_frame(&mut &stream)?.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before REGISTER")
                })?;
                if frame.kind != kind::REGISTER {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "expected REGISTER",
                    ));
                }
                let src = frame.src as usize;
                if src == 0 || src >= p {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "REGISTER from invalid rank",
                    ));
                }
                if book[src].is_some() {
                    // Two processes claiming one rank is a launcher bug
                    // (or a stray straggler from a previous generation);
                    // silently keeping the newcomer would wire a mesh to
                    // the wrong process.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("duplicate REGISTER from rank {src}"),
                    ));
                }
                book[src] = Some(wire::decode_register(&frame.body)?);
                conns.push((src, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for (src, stream) in &conns {
                    match rendezvous_conn_died(stream) {
                        Ok(false) => {}
                        Ok(true) => {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                format!("rank {src} died during rendezvous"),
                            ));
                        }
                        Err(e) => {
                            return Err(io::Error::new(
                                e.kind(),
                                format!("rank {src} rendezvous stream: {e}"),
                            ));
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    let paths: Vec<String> = book.into_iter().map(|b| b.unwrap()).collect();
    // Clock-offset estimation rides the held rendezvous streams before
    // the ADDRBOOK release: every peer is parked in `rendezvous_join`
    // answering pings, so the exchange sees rendezvous-quality latency.
    let mut offsets = vec![0.0f64; p];
    for (src, stream) in &conns {
        offsets[*src] = estimate_clock_offset(stream, *src, anchor)?;
    }
    fs::write(
        clock_offsets_path(dir),
        gnn_trace::merge::offsets_json(&offsets),
    )?;
    let body = wire::encode_addrbook(&paths);
    for (_, mut stream) in conns {
        let frame = Frame {
            kind: kind::ADDRBOOK,
            src: 0,
            link_seq: 0,
            body: body.clone(),
        };
        wire::write_frame(&mut stream, &frame)?;
    }
    Ok(paths)
}

/// Non-zero ranks: dial the rendezvous endpoint with capped exponential
/// backoff + jitter (rank 0 may still be booting; chaos may be refusing
/// dials) up to the hard wire-up deadline, REGISTER our mesh address,
/// answer rank 0's clock-offset pings, and wait for the ADDRBOOK.
fn rendezvous_join(
    target: &str,
    rank: usize,
    my_addr: &str,
    deadline: Instant,
    anchor: &Instant,
    chaos: Option<&Chaos>,
    metrics: &TransportMetrics,
) -> io::Result<Vec<String>> {
    let mut backoff = Backoff::new(20, 500, splitmix64(0x52454E44 ^ rank as u64));
    let mut stream = loop {
        let refused = chaos.and_then(|c| c.dial_refused(0, anchor.elapsed().as_millis() as u64));
        let attempt = match refused {
            Some(why) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("chaos: {why}"),
            )),
            None => Stream::connect(target),
        };
        match attempt {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rendezvous dial timed out: {e}"),
                    ));
                }
                metrics.dial_backoffs.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.next());
            }
        }
    };
    let frame = Frame {
        kind: kind::REGISTER,
        src: rank as u32,
        link_seq: 0,
        body: wire::encode_path(my_addr),
    };
    wire::write_frame(&mut stream, &frame)?;
    let remaining = deadline.saturating_duration_since(Instant::now());
    stream.set_read_timeout(Some(remaining.max(Duration::from_millis(100))))?;
    let reply = loop {
        let frame = wire::read_frame(&mut &stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before ADDRBOOK"))?;
        match frame.kind {
            kind::CLOCK_PING => {
                // Reply with our monotonic reading immediately — the
                // midpoint estimate's accuracy is bounded by this
                // turnaround.
                let pong = Frame::with_u64(
                    kind::CLOCK_PONG,
                    rank,
                    anchor.elapsed().as_secs_f64().to_bits(),
                );
                wire::write_frame(&mut &stream, &pong)?;
            }
            kind::ADDRBOOK => break frame,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected CLOCK_PING or ADDRBOOK",
                ));
            }
        }
    };
    wire::decode_addrbook(&reply.body)
}

// ---- The transport --------------------------------------------------------

/// Process-backend link layer for one rank (one per process).
pub(crate) struct ProcTransport {
    shared: Arc<Shared>,
    watchdog: Arc<Watchdog>,
    data_rx: Vec<Option<Receiver<Msg>>>,
    /// Rank 0: barrier entries from every peer (all reader threads feed
    /// one channel; rounds are tallied in `pending_entries`).
    entries_rx: Option<Receiver<(u32, u64)>>,
    /// Non-zero ranks: releases from rank 0.
    release_rx: Option<Receiver<u64>>,
    round: u64,
    pending_entries: HashMap<u64, usize>,
}

impl ProcTransport {
    /// Binds, rendezvouses, and wires the full mesh; returns once every
    /// peer link is established. With a hostfile the mesh runs over TCP
    /// (rank 0's hostfile port is the rendezvous endpoint; mesh
    /// listeners advertise their kernel-assigned or pinned ports via
    /// the ADDRBOOK); otherwise over Unix-domain sockets under the run
    /// dir.
    fn connect(rank: usize, w: &ProcWorld) -> io::Result<Self> {
        let (p, dir, timeout) = (w.p, &w.dir, w.timeout);
        install_sigterm_handler();
        fs::create_dir_all(dir)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(format!("rank{rank}.log")))?;
        let drop_after = std::env::var("GNN_PROC_DROP_CONN_AFTER")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());

        // One anchor serves both clocks-of-record: it is `Shared.start`
        // (heartbeat ages, log stamps, chaos windows) *and* the
        // wall-clock zero the tracer and the rendezvous offset
        // estimation share — so the offsets rank 0 writes apply
        // directly to trace timestamps.
        let start = Instant::now();
        let deadline = start + timeout;
        let generation = read_proc_generation(dir);
        let chaos = w
            .net_chaos
            .clone()
            .map(|plan| Chaos::new(plan, rank, p, generation));
        let metrics = TransportMetrics::new();

        let (listener, my_addr) = match &w.hostfile {
            Some(hosts) => {
                // Rank 0's hostfile port belongs to the rendezvous
                // endpoint; its mesh listener takes an ephemeral port
                // (published via the ADDRBOOK like everyone else's).
                let port = if rank == 0 { 0 } else { hosts.port(rank) };
                let l = Listener::bind_tcp(hosts.host(rank), port)?;
                let addr = l.advertised_addr(hosts.host(rank))?;
                (l, addr)
            }
            None => {
                let path = mesh_path(dir, rank);
                (Listener::bind_unix(&path)?, path)
            }
        };

        let addrbook = if p == 1 {
            fs::write(
                clock_offsets_path(dir),
                gnn_trace::merge::offsets_json(&[0.0]),
            )?;
            vec![my_addr.clone()]
        } else if rank == 0 {
            let (rv_listener, rv_cleanup) = match &w.hostfile {
                Some(hosts) => (Listener::bind_tcp(hosts.host(0), hosts.port(0))?, None),
                None => {
                    let path = rendezvous_path(dir);
                    let l = Listener::bind_unix(&path.to_string_lossy())?;
                    (l, Some(path))
                }
            };
            let book = rendezvous_serve(rv_listener, dir, p, &my_addr, deadline, &start)?;
            if let Some(path) = rv_cleanup {
                let _ = fs::remove_file(&path);
            }
            book
        } else {
            let target = match &w.hostfile {
                Some(hosts) => hosts.rendezvous_addr(),
                None => rendezvous_path(dir).to_string_lossy().into_owned(),
            };
            rendezvous_join(
                &target,
                rank,
                &my_addr,
                deadline,
                &start,
                chaos.as_ref(),
                &metrics,
            )?
        };
        if addrbook.len() != p {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "address book arity mismatch",
            ));
        }

        let mut data_rx: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(p);
        let mut peers = Vec::with_capacity(p);
        for q in 0..p {
            let peer = Peer::new();
            if q == rank {
                data_rx.push(None);
            } else {
                let (tx, rx) = mpsc::channel();
                *lock_or_recover(&peer.data_tx) = Some(tx);
                data_rx.push(Some(rx));
            }
            peers.push(peer);
        }
        let (entries_rx, entries_tx) = if rank == 0 && p > 1 {
            let (tx, rx) = mpsc::channel();
            (Some(rx), Some(tx))
        } else {
            (None, None)
        };
        let (release_rx, release_tx) = if rank != 0 {
            let (tx, rx) = mpsc::channel();
            (Some(rx), Some(tx))
        } else {
            (None, None)
        };

        let shared = Arc::new(Shared {
            rank,
            p,
            timeout,
            heartbeat: w.heartbeat,
            miss: w.miss,
            start,
            addrbook,
            peers,
            dead: Mutex::new(Vec::new()),
            entries_tx: Mutex::new(entries_tx),
            release_tx: Mutex::new(release_tx),
            shutting_down: AtomicBool::new(false),
            data_sent: AtomicU64::new(0),
            drop_after,
            drop_fired: AtomicBool::new(false),
            log: Mutex::new(log),
            metrics,
            chaos,
        });
        shared.log(&format!(
            "rank {rank}/{p} rendezvous complete (generation {generation}, mesh {})",
            if w.hostfile.is_some() { "tcp" } else { "unix" }
        ));

        if p > 1 {
            {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("proc-accept-{rank}"))
                    .spawn(move || acceptor_loop(shared, listener))?;
            }
            // Dial every lower rank; higher ranks dial us.
            for q in 0..rank {
                let addr = shared.addrbook[q].clone();
                let mut backoff = Backoff::new(20, 500, splitmix64((rank as u64) << 16 | q as u64));
                loop {
                    match dial_peer(&shared, q, &addr) {
                        Ok(()) => break,
                        Err(e) => {
                            if Instant::now() >= deadline {
                                return Err(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    format!("mesh dial to rank {q} timed out: {e}"),
                                ));
                            }
                            shared.metrics.dial_backoffs.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(backoff.next());
                        }
                    }
                }
            }
            // Wait for the full mesh (higher ranks connect through the
            // acceptor).
            loop {
                let all_up =
                    (0..p).all(|q| q == rank || lock_or_recover(&shared.peers[q].conn).epoch > 0);
                if all_up {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "mesh wire-up timed out",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("proc-beat-{rank}"))
                    .spawn(move || monitor_loop(shared))?;
            }
        }
        shared.log("mesh up");

        Ok(ProcTransport {
            shared,
            watchdog: Arc::new(Watchdog::new(p, timeout)),
            data_rx,
            entries_rx,
            release_rx,
            round: 0,
            pending_entries: HashMap::new(),
        })
    }

    fn barrier_rank0(&mut self, round: u64) -> bool {
        let p = self.shared.p;
        let deadline = Instant::now() + self.shared.timeout;
        let mut have = self.pending_entries.remove(&round).unwrap_or(0);
        let rx = self.entries_rx.as_ref().expect("rank 0 entries channel");
        while have < p - 1 {
            if sigterm_requested() {
                self.shared.drain_and_exit();
            }
            if self.shared.any_peer_dead() {
                return false;
            }
            match rx.recv_timeout(SLICE) {
                Ok((_src, r)) if r == round => have += 1,
                Ok((_src, r)) => *self.pending_entries.entry(r).or_insert(0) += 1,
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
        for q in 1..p {
            if self
                .shared
                .send_reliable(q, kind::BARRIER_RELEASE, round.to_le_bytes().to_vec())
                .is_err()
            {
                return false;
            }
        }
        true
    }

    fn barrier_member(&mut self, round: u64) -> bool {
        if self
            .shared
            .send_reliable(0, kind::BARRIER_ENTER, round.to_le_bytes().to_vec())
            .is_err()
        {
            return false;
        }
        let deadline = Instant::now() + self.shared.timeout;
        let rx = self.release_rx.as_ref().expect("member release channel");
        loop {
            if sigterm_requested() {
                self.shared.drain_and_exit();
            }
            if self.shared.peers[0].dead.load(Ordering::SeqCst) {
                return false;
            }
            match rx.recv_timeout(SLICE) {
                Ok(r) if r == round => return true,
                Ok(r) => {
                    // A stale release can only trail a barrier this rank
                    // already abandoned; ignore it.
                    self.shared
                        .log(&format!("ignoring stale barrier release {r} (at {round})"));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }
}

impl Transport for ProcTransport {
    fn send(&mut self, dst: usize, msg: Msg) -> Result<(), PeerGone> {
        self.shared
            .send_reliable(dst, kind::DATA, wire::encode_msg(&msg))
    }

    fn recv_deadline(&mut self, src: usize, timeout: Duration) -> RecvOutcome {
        let deadline = Instant::now() + timeout;
        let rx = match self.data_rx[src].as_ref() {
            Some(rx) => rx,
            None => return RecvOutcome::Disconnected, // self-receive
        };
        loop {
            if sigterm_requested() {
                self.shared.drain_and_exit();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return RecvOutcome::TimedOut;
            }
            match rx.recv_timeout(remaining.min(SLICE)) {
                Ok(msg) => return RecvOutcome::Frame(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return RecvOutcome::Disconnected,
            }
        }
    }

    fn try_recv(&mut self, src: usize) -> TryRecvOutcome {
        let rx = match self.data_rx[src].as_ref() {
            Some(rx) => rx,
            None => return TryRecvOutcome::Disconnected,
        };
        match rx.try_recv() {
            Ok(msg) => TryRecvOutcome::Frame(msg),
            Err(TryRecvError::Empty) => TryRecvOutcome::Empty,
            Err(TryRecvError::Disconnected) => TryRecvOutcome::Disconnected,
        }
    }

    fn barrier_wait(&mut self) -> bool {
        if self.shared.p == 1 {
            return true;
        }
        self.round += 1;
        let round = self.round;
        if self.shared.rank == 0 {
            self.barrier_rank0(round)
        } else {
            self.barrier_member(round)
        }
    }

    fn barrier_wait_alive(&mut self) -> bool {
        // Failover is thread-backend-only; a death-aware rendezvous
        // degenerates to the plain barrier here.
        self.barrier_wait()
    }

    fn commit_wait(&mut self, _gen: u32) -> Option<bool> {
        panic!(
            "replica failover is not supported on the process backend; \
             run with checkpoint-restart (the default) or --backend thread"
        );
    }

    fn mark_dead(&self, rank: usize, gen: u32) {
        // Only reached by injected-crash bookkeeping; record it so
        // `deaths()` stays truthful, then let the crash panic unwind.
        self.shared
            .log(&format!("rank {rank} marked dead (gen {gen})"));
        lock_or_recover(&self.shared.dead).push(DeathRecord { rank, gen });
    }

    fn deaths(&self) -> Vec<DeathRecord> {
        lock_or_recover(&self.shared.dead).clone()
    }

    fn timeout(&self) -> Duration {
        self.shared.timeout
    }

    fn wd_begin(
        &self,
        rank: usize,
        kind: WaitKind,
        peer: Option<usize>,
        tag: Option<u8>,
        epoch: Option<usize>,
    ) {
        self.watchdog.begin(rank, kind, peer, tag, epoch);
    }

    fn wd_end(&self, rank: usize) {
        self.watchdog.end(rank);
    }

    fn wd_report(&self, rank: usize) -> DeadlockReport {
        self.watchdog.report(rank)
    }
}

// ---- ProcWorld ------------------------------------------------------------

/// Launch configuration for process-backed ranks: the counterpart of
/// [`crate::ThreadWorld`] where each rank is a real OS process. The
/// supervising launcher creates one `ProcWorld` per child process (same
/// `dir`) and calls [`ProcWorld::run_rank`] with that child's rank.
pub struct ProcWorld {
    p: usize,
    model: CostModel,
    timeout: Duration,
    dir: PathBuf,
    heartbeat: Duration,
    miss: u32,
    injector: Option<Arc<FaultInjector>>,
    tracing: bool,
    metrics_interval: Option<Duration>,
    hostfile: Option<HostFile>,
    net_chaos: Option<NetChaosPlan>,
}

impl ProcWorld {
    /// A world of `p` process ranks rendezvousing under `dir` (short
    /// paths only: Unix socket paths are limited to ~100 bytes).
    ///
    /// Heartbeat period and miss threshold honor the
    /// `GNN_PROC_HEARTBEAT_MS` / `GNN_PROC_MISS` environment overrides;
    /// `GNN_PROC_METRICS_MS=<n>` turns on the periodic live-metrics
    /// snapshot stream (`metrics-rank<r>.jsonl` under `dir`).
    /// `GNN_PROC_HOSTFILE=<path>` switches the mesh to TCP listeners
    /// from that hostfile, and `GNN_PROC_NET_CHAOS=<spec>` arms the
    /// deterministic network-chaos interposer — both also settable
    /// explicitly via [`ProcWorld::with_hostfile`] /
    /// [`ProcWorld::with_net_chaos`]. Malformed values for either
    /// panic: silently training on a clean network when chaos was
    /// requested would invalidate the experiment.
    pub fn new(p: usize, model: CostModel, dir: impl Into<PathBuf>) -> Self {
        assert!(p > 0, "need at least one rank");
        let heartbeat = std::env::var("GNN_PROC_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_HEARTBEAT);
        let miss = std::env::var("GNN_PROC_MISS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_MISS);
        let metrics_interval = std::env::var("GNN_PROC_METRICS_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        let hostfile = std::env::var("GNN_PROC_HOSTFILE").ok().map(|path| {
            HostFile::load(Path::new(&path))
                .unwrap_or_else(|e| panic!("GNN_PROC_HOSTFILE {path}: {e}"))
        });
        let net_chaos = std::env::var("GNN_PROC_NET_CHAOS").ok().map(|spec| {
            NetChaosPlan::parse(&spec).unwrap_or_else(|e| panic!("GNN_PROC_NET_CHAOS: {e}"))
        });
        if let Some(hosts) = &hostfile {
            assert_eq!(
                hosts.p(),
                p,
                "hostfile names {} ranks but the world has {p}",
                hosts.p()
            );
        }
        ProcWorld {
            p,
            model,
            timeout: crate::world::ThreadWorld::DEFAULT_TIMEOUT,
            dir: dir.into(),
            heartbeat,
            miss: miss.max(1),
            injector: None,
            tracing: false,
            metrics_interval,
            hostfile,
            net_chaos,
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Watchdog timeout bounding every blocking wait (and the wire-up).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Message-level fault plan (drop/corrupt/duplicate/delay), applied
    /// by the backend-independent retransmit machinery. Fates are pure
    /// functions of (seed, src, dst, seq), so thread and process runs
    /// under the same plan stay bit-identical.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        let injector = Arc::new(FaultInjector::new(plan));
        Self {
            injector: Some(injector),
            ..self
        }
    }

    /// Runs the mesh over TCP loopback/multi-node listeners described
    /// by `hosts` (one line per rank; rank 0's port is the rendezvous
    /// endpoint). Every rank of one world must use the same hostfile.
    pub fn with_hostfile(mut self, hosts: HostFile) -> Self {
        assert_eq!(
            hosts.p(),
            self.p,
            "hostfile names {} ranks but the world has {}",
            hosts.p(),
            self.p
        );
        self.hostfile = Some(hosts);
        self
    }

    /// Arms the deterministic network-chaos interposer: every rank of
    /// one world must receive the identical plan (same spec string) or
    /// the fault schedule loses its meaning.
    pub fn with_net_chaos(mut self, plan: NetChaosPlan) -> Self {
        self.net_chaos = Some(plan);
        self
    }

    /// Enables dual-clock structured tracing: the rank body records
    /// every op with both its modeled-time stamp and a monotonic
    /// wall-clock offset anchored at the transport's connect instant —
    /// the same anchor the rendezvous clock-offset exchange measures,
    /// so `trace-report --merge` can align per-rank traces.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Runs this process's rank body over the socket mesh. Returns the
    /// body's output and the rank's modeled stats, or a structured
    /// error when wire-up fails or the body panics (peer death,
    /// deadlock, protocol violation).
    pub fn run_rank<R>(
        &self,
        rank: usize,
        f: impl FnOnce(&mut RankCtx) -> R,
    ) -> Result<(R, RankStats), ProcError> {
        self.run_rank_traced(rank, f)
            .map(|(out, stats, _tracer)| (out, stats))
    }

    /// Like [`ProcWorld::run_rank`], but also returns the rank's
    /// dual-clock tracer when [`ProcWorld::with_tracing`] enabled it —
    /// the caller writes it out as this process's `trace-rank<r>.jsonl`.
    /// Stats gain the live transport counters (reconnects, replayed
    /// frames, heartbeat misses) observed during the run.
    pub fn run_rank_traced<R>(
        &self,
        rank: usize,
        f: impl FnOnce(&mut RankCtx) -> R,
    ) -> Result<(R, RankStats, Option<Box<RankTracer>>), ProcError> {
        assert!(rank < self.p, "rank {rank} out of range (p={})", self.p);
        // Structured panics are caught below; the guard keeps the
        // default hook from spraying backtraces for expected failures.
        let _hook = PanicHookGuard::acquire();
        let transport = ProcTransport::connect(rank, self)?;
        let shared = transport.shared.clone();
        let tracer = self
            .tracing
            .then(|| Box::new(RankTracer::with_wall_anchor(rank, shared.start)));
        if let Some(interval) = self.metrics_interval {
            let shared = shared.clone();
            let path = self.dir.join(format!("metrics-rank{rank}.jsonl"));
            let _ = std::thread::Builder::new()
                .name(format!("proc-metrics-{rank}"))
                .spawn(move || metrics_snapshot_loop(shared, path, interval));
        }
        let mut ctx = RankCtx::new(
            rank,
            self.p,
            self.model,
            Box::new(transport),
            self.injector.clone(),
            tracer,
            false,
        );
        let result = catch_unwind(AssertUnwindSafe(|| {
            let out = f(&mut ctx);
            let (stats, tracer) = ctx.into_parts();
            (out, stats, tracer)
        }));
        match result {
            Ok((out, mut stats, mut tracer)) => {
                let m = &shared.metrics;
                stats.proc.reconnects = m.reconnects.load(Ordering::Relaxed);
                stats.proc.replayed_frames = m.replayed_frames.load(Ordering::Relaxed);
                stats.proc.heartbeat_misses = m.heartbeat_misses.load(Ordering::Relaxed);
                stats.proc.dial_backoffs = m.dial_backoffs.load(Ordering::Relaxed);
                stats.proc.partitions_suspected = m.partitions_suspected.load(Ordering::Relaxed);
                stats.proc.partitions_healed = m.partitions_healed.load(Ordering::Relaxed);
                if let Some(chaos) = &shared.chaos {
                    stats.proc.chaos_injected = chaos.delays_injected.load(Ordering::Relaxed)
                        + chaos.severs_injected.load(Ordering::Relaxed)
                        + chaos.dials_refused.load(Ordering::Relaxed);
                    // Fault activations land on the trace wall axis so a
                    // merged trace shows *when* each link was attacked.
                    if let Some(tracer) = tracer.as_mut() {
                        for ev in chaos.take_events() {
                            let kind = match ev.what {
                                "cut" => EventKind::ChaosCut,
                                "refused" => EventKind::ChaosRefused,
                                _ => EventKind::ChaosSever,
                            };
                            tracer.chaos_event(kind, ev.peer, ev.wall_s);
                        }
                    }
                }
                shared.begin_shutdown();
                Ok((out, stats, tracer))
            }
            Err(payload) => {
                let message = describe_panic(payload.as_ref());
                shared.log(&format!("rank {rank} panicked: {message}"));
                shared.abort_shutdown();
                Err(ProcError::RankPanicked { rank, message })
            }
        }
    }
}

/// Periodic live-metrics snapshotter: appends one self-describing JSONL
/// line per interval to `metrics-rank<r>.jsonl`, plus a final line at
/// shutdown, so long chaos/soak runs are inspectable in flight (the
/// supervisor tails the last line of each rank's stream and aggregates).
fn metrics_snapshot_loop(shared: Arc<Shared>, path: PathBuf, interval: Duration) {
    let mut file = match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => f,
        Err(_) => return,
    };
    loop {
        let wake = Instant::now() + interval;
        let mut done = false;
        while Instant::now() < wake {
            if shared.shutting_down.load(Ordering::SeqCst) {
                done = true;
                break;
            }
            std::thread::sleep(SLICE.min(interval));
        }
        let line = format!(
            "{{\"schema\":\"{}\",\"type\":\"metrics\",\"rank\":{},\"wall\":{},\"metrics\":{}}}",
            gnn_trace::SCHEMA_VERSION,
            shared.rank,
            gnn_trace::json::fmt_f64(shared.start.elapsed().as_secs_f64()),
            shared.metrics_registry().metrics_json(),
        );
        if writeln!(file, "{line}").is_err() {
            return;
        }
        let _ = file.flush();
        if done {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gnnpu-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn register_frame(src: usize, addr: &str) -> Frame {
        Frame {
            kind: kind::REGISTER,
            src: src as u32,
            link_seq: 0,
            body: wire::encode_path(addr),
        }
    }

    /// Serves a 3-rank rendezvous on a background thread and returns
    /// the dial target plus the join handle for the serve result.
    fn spawn_serve(
        dir: &Path,
        p: usize,
        timeout: Duration,
    ) -> (String, std::thread::JoinHandle<io::Result<Vec<String>>>) {
        let path = rendezvous_path(dir);
        let target = path.to_string_lossy().into_owned();
        let listener = Listener::bind_unix(&target).unwrap();
        let dir = dir.to_path_buf();
        let handle = std::thread::spawn(move || {
            let anchor = Instant::now();
            rendezvous_serve(
                listener,
                &dir,
                p,
                "rank0.sock",
                Instant::now() + timeout,
                &anchor,
            )
        });
        (target, handle)
    }

    #[test]
    fn duplicate_register_is_a_structured_error() {
        let dir = scratch("dup");
        let (target, serve) = spawn_serve(&dir, 3, Duration::from_secs(10));
        let mut first = Stream::connect(&target).unwrap();
        wire::write_frame(&mut first, &register_frame(1, "rank1.sock")).unwrap();
        // A second process claiming rank 1 — a launcher bug or a stray
        // straggler — must fail the rendezvous loudly, not overwrite.
        let mut dup = Stream::connect(&target).unwrap();
        wire::write_frame(&mut dup, &register_frame(1, "impostor.sock")).unwrap();
        let err = serve.join().unwrap().expect_err("duplicate must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("duplicate REGISTER from rank 1"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registrant_death_fails_rendezvous_before_the_deadline() {
        let dir = scratch("rvdeath");
        // Generous deadline: the failure must come from death detection,
        // not the timeout.
        let (target, serve) = spawn_serve(&dir, 3, Duration::from_secs(30));
        let t0 = Instant::now();
        {
            let mut doomed = Stream::connect(&target).unwrap();
            wire::write_frame(&mut doomed, &register_frame(1, "rank1.sock")).unwrap();
            // Dropping the stream here is rank 1 dying mid-rendezvous:
            // REGISTERed but gone before the ADDRBOOK. Rank 2 never
            // shows up, so without death detection rank 0 would park
            // until the 30 s deadline.
        }
        let err = serve.join().unwrap().expect_err("death must fail serve");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert!(
            err.to_string().contains("rank 1 died during rendezvous"),
            "unexpected error: {err}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "death detection took {:?} — it must beat the deadline",
            t0.elapsed()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    // ---- Socket-level replay harness (Unix + TCP through one path) ----

    /// Proves the reconnect/replay invariants from [`super::super::replay`]
    /// over a real socket pair: frames framed by [`wire`], a connection
    /// cut mid-stream, a second connection replaying the unacknowledged
    /// suffix — the delivered byte sequence must equal the uncut run and
    /// both watermarks must land exactly at the frame count.
    fn socket_replay_roundtrip(mk: impl Fn() -> (Stream, Stream)) {
        let total = 12u64;
        let cut_after = 7usize;
        let acked_before_cut = 5u64;
        let mut sender = ReplayQueue::new();
        let mut receiver = DedupWatermark::new();
        let mut delivered: Vec<Vec<u8>> = Vec::new();

        for i in 0..total {
            let seq = sender.assign_seq();
            let bytes = wire::encode_frame(&Frame {
                kind: kind::DATA,
                src: 0,
                link_seq: seq,
                body: vec![i as u8; 7],
            });
            sender.push(seq, bytes);
        }

        // Connection 1: only a prefix makes it onto the wire before the
        // cut; only a prefix of the ACKs makes it back.
        let (tx, rx) = mk();
        {
            let mut w = &tx;
            for bytes in sender.unacked().take(cut_after) {
                w.write_all(bytes).unwrap();
            }
            w.flush().unwrap();
        }
        drop(tx); // the cut: receiver sees EOF at a frame boundary
        let mut r = BufReader::new(rx);
        while let Some(frame) = wire::read_frame(&mut r).unwrap() {
            if receiver.admit(frame.link_seq) {
                delivered.push(frame.body);
            }
        }
        assert_eq!(delivered.len(), cut_after);
        sender.ack(acked_before_cut);

        // Connection 2: the HELLO watermark sync prunes what the peer
        // already delivered, then the rest replays.
        let (tx2, rx2) = mk();
        sender.ack(receiver.delivered());
        {
            let mut w = &tx2;
            for bytes in sender.unacked() {
                w.write_all(bytes).unwrap();
            }
            w.flush().unwrap();
        }
        drop(tx2);
        let mut r2 = BufReader::new(rx2);
        while let Some(frame) = wire::read_frame(&mut r2).unwrap() {
            if receiver.admit(frame.link_seq) {
                delivered.push(frame.body);
            }
        }
        sender.ack(receiver.delivered());

        let want: Vec<Vec<u8>> = (0..total).map(|i| vec![i as u8; 7]).collect();
        assert_eq!(delivered, want, "replay must reconstruct the exact stream");
        assert_eq!(receiver.delivered(), total);
        assert_eq!(sender.acked(), total);
        assert_eq!(sender.len(), 0, "fully ACKed queue must be empty");
    }

    #[test]
    fn replay_is_byte_identical_over_unix_sockets() {
        socket_replay_roundtrip(|| {
            let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
            (Stream::Unix(a), Stream::Unix(b))
        });
    }

    #[test]
    fn replay_is_byte_identical_over_tcp_sockets() {
        socket_replay_roundtrip(|| {
            // Connect before accept: the kernel backlog completes the
            // handshake, so one thread suffices.
            let listener = Listener::bind_tcp("127.0.0.1", 0).unwrap();
            let addr = listener.advertised_addr("127.0.0.1").unwrap();
            let tx = Stream::connect(&addr).unwrap();
            let rx = listener.accept().unwrap();
            (tx, rx)
        });
    }

    #[test]
    fn generation_file_roundtrips_and_defaults_to_zero() {
        let dir = scratch("gen");
        assert_eq!(read_proc_generation(&dir), 0, "missing file reads as 0");
        write_proc_generation(&dir, 3).unwrap();
        assert_eq!(read_proc_generation(&dir), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
