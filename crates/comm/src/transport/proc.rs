//! The process-backed [`Transport`]: ranks are real OS processes
//! exchanging length-prefixed frames ([`super::wire`]) over Unix-domain
//! sockets.
//!
//! Where [`super::thread::ThreadTransport`] simulates failure with flags
//! and modeled time, this backend faces the real thing:
//!
//! * **Rendezvous** — every rank binds its own mesh listener
//!   (`<dir>/rank<r>.sock`), non-zero ranks dial rank 0's rendezvous
//!   socket to REGISTER their path, and rank 0 replies with the full
//!   ADDRBOOK. Higher ranks then dial lower ranks for a full mesh (one
//!   full-duplex connection per pair).
//! * **Reliable links** — DATA and barrier frames carry a per-direction
//!   `link_seq` and live in a replay queue until cumulatively ACKed, so
//!   a reconnect retransmits exactly the unacknowledged suffix and the
//!   receiver's delivered watermark filters the duplicates. The upper
//!   layer ([`crate::RankCtx`]) never observes a socket bounce: its own
//!   seq/FNV state machine sees the same frame stream either way.
//! * **Liveness** — a heartbeat thread beacons every peer and marks a
//!   peer dead after a miss threshold; death drops the peer's delivery
//!   channel so blocked receives fail fast with the same "hung up"
//!   semantics the thread backend gets from a dropped channel.
//! * **Reconnect** — the dialing side (higher rank) redials with capped
//!   exponential backoff on transient errors; the listening side simply
//!   accepts the replacement connection and replays.
//! * **Shutdown** — a finishing rank sends BYE, drains briefly, then
//!   closes (SIGTERM triggers the same drain then `exit(143)`).
//!   A SIGKILL'd rank never says BYE: peers see an unclean EOF or
//!   missed heartbeats and fail over to the trainer's
//!   checkpoint-restart ladder.
//!
//! * **Observability** — every link keeps live transport metrics
//!   (frame send latency / receive-gap histograms, retransmit /
//!   reconnect / heartbeat-miss counters, wire-vs-logical byte gauges)
//!   in [`Shared`]; with `GNN_PROC_METRICS_MS=<n>` each rank appends a
//!   periodic JSONL snapshot (`metrics-rank<r>.jsonl`) the supervisor
//!   can aggregate while a run is in flight. The rendezvous handshake
//!   ends with an NTP-style clock-offset exchange (CLOCK_PING/PONG
//!   request/reply midpoint) so rank 0 can estimate every peer's
//!   monotonic-clock offset and write `clock-offsets.json` — the
//!   sidecar `trace-report --merge` uses to align per-rank wall-clock
//!   traces onto one axis.
//!
//! Set `GNN_PROC_DROP_CONN_AFTER=<n>` to forcibly shut one connection
//! down after the n-th DATA send — a deterministic transient-fault hook
//! the reconnect tests use.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gnn_trace::{Histogram, MetricsRegistry, RankTracer};

use crate::cost::CostModel;
use crate::ctx::RankCtx;
use crate::error::{
    ColumnLostPanic, CrashPanic, DeadlockPanic, DeadlockReport, EpochAbortPanic, WaitKind,
};
use crate::fault::{FaultInjector, FaultPlan};
use crate::msg::Msg;
use crate::stats::RankStats;
use crate::watchdog::{DeathRecord, Watchdog};
use crate::world::PanicHookGuard;

use super::wire::{self, kind, Frame};
use super::{PeerGone, RecvOutcome, Transport, TryRecvOutcome};

/// Poll slice for interruptible blocking waits (sigterm + death checks).
const SLICE: Duration = Duration::from_millis(25);

/// Default heartbeat beacon period (override: `GNN_PROC_HEARTBEAT_MS`).
const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(200);

/// Default missed-beacon threshold before a peer is declared dead
/// (override: `GNN_PROC_MISS`).
const DEFAULT_MISS: u32 = 15;

// ---- SIGTERM --------------------------------------------------------------

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM handler that requests a drain-then-exit. Raw FFI
/// to keep the build dependency-free; `signal` is fine here because the
/// handler only stores to an atomic.
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

fn sigterm_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

// ---- Errors ---------------------------------------------------------------

/// Failure launching or running one process-backend rank.
#[derive(Debug)]
pub enum ProcError {
    /// Socket or filesystem failure during wire-up or shutdown.
    Io(io::Error),
    /// The rank's body panicked (protocol violation, peer death,
    /// deadlock, injected crash); the message is the decoded payload.
    RankPanicked {
        /// Which rank.
        rank: usize,
        /// Human-readable panic description.
        message: String,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Io(e) => write!(f, "process backend I/O error: {e}"),
            ProcError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

impl From<io::Error> for ProcError {
    fn from(e: io::Error) -> Self {
        ProcError::Io(e)
    }
}

/// Decodes a caught panic payload into the message a supervisor logs.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(d) = payload.downcast_ref::<DeadlockPanic>() {
        format!("deadlock: {:?}", d.0)
    } else if let Some(c) = payload.downcast_ref::<CrashPanic>() {
        format!(
            "injected crash on rank {} at epoch {:?} op {}",
            c.rank, c.epoch, c.op
        )
    } else if let Some(a) = payload.downcast_ref::<EpochAbortPanic>() {
        format!("epoch abort (generation {})", a.generation)
    } else if let Some(l) = payload.downcast_ref::<ColumnLostPanic>() {
        format!("replica column {} lost", l.block_row)
    } else {
        "unknown panic payload".to_string()
    }
}

// ---- Per-peer connection state -------------------------------------------

/// Writer-side state for one peer link.
struct Conn {
    /// Writer half of the current connection (a `try_clone` of the
    /// reader's stream); `None` while disconnected.
    stream: Option<UnixStream>,
    /// Bumped on every (re)connect; readers use it to tell whether the
    /// connection that just died is still the current one.
    epoch: u64,
    /// Next reliable-frame sequence number to assign (1-based).
    next_link_seq: u64,
    /// Peer's cumulative delivered watermark (replay prunes `<=` this).
    acked: u64,
    /// Our cumulative delivered watermark for the peer's reliable frames.
    delivered: u64,
    /// Encoded reliable frames not yet covered by `acked`.
    replay: VecDeque<(u64, Vec<u8>)>,
}

struct Peer {
    conn: Mutex<Conn>,
    /// Delivery channel into the owning transport; taking it to `None`
    /// is how death/clean-close turns blocked receives into
    /// `Disconnected` (mirroring a dropped mpsc sender in the thread
    /// backend).
    data_tx: Mutex<Option<Sender<Msg>>>,
    /// Milliseconds since transport start when a frame last arrived.
    last_seen_ms: AtomicU64,
    /// Declared dead by the liveness monitor or reconnect exhaustion.
    dead: AtomicBool,
    /// Peer announced graceful shutdown (BYE).
    bye: AtomicBool,
}

impl Peer {
    fn new() -> Self {
        Peer {
            conn: Mutex::new(Conn {
                stream: None,
                epoch: 0,
                next_link_seq: 1,
                acked: 0,
                delivered: 0,
                replay: VecDeque::new(),
            }),
            data_tx: Mutex::new(None),
            last_seen_ms: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            bye: AtomicBool::new(false),
        }
    }
}

// ---- Transport metrics ----------------------------------------------------

/// Live link-layer metrics for one rank process: lock-free counters on
/// the frame path plus two mutex-guarded latency histograms (socket
/// writes are already serialized per peer, so the lock is uncontended).
/// Snapshot at any time via [`Shared::metrics_registry`].
struct TransportMetrics {
    /// Successful dialer-side reconnects.
    reconnects: AtomicU64,
    /// Reliable frames retransmitted from the replay queue when a
    /// (re)connection was installed.
    replayed_frames: AtomicU64,
    /// Monitor ticks that saw a peer silent past one heartbeat period.
    heartbeat_misses: AtomicU64,
    /// Encoded frame bytes pushed onto sockets (headers included).
    wire_bytes_sent: AtomicU64,
    /// Encoded frame bytes read off sockets (headers included).
    wire_bytes_recv: AtomicU64,
    /// DATA frame body bytes sent (the logical payload volume).
    data_bytes_sent: AtomicU64,
    /// DATA frame body bytes received.
    data_bytes_recv: AtomicU64,
    /// Blocking write+flush latency per reliable frame, microseconds.
    frame_send_us: Mutex<Histogram>,
    /// Gap between consecutive received frames (any peer), microseconds.
    frame_recv_gap_us: Mutex<Histogram>,
    /// Elapsed-µs stamp of the last received frame (`u64::MAX` = none).
    last_recv_us: AtomicU64,
}

impl TransportMetrics {
    /// Power-of-two microsecond buckets from 1 µs to ~1 s.
    fn us_buckets() -> Histogram {
        Histogram::new((0..=20).map(|e| 1u64 << e).collect())
    }

    fn new() -> Self {
        TransportMetrics {
            reconnects: AtomicU64::new(0),
            replayed_frames: AtomicU64::new(0),
            heartbeat_misses: AtomicU64::new(0),
            wire_bytes_sent: AtomicU64::new(0),
            wire_bytes_recv: AtomicU64::new(0),
            data_bytes_sent: AtomicU64::new(0),
            data_bytes_recv: AtomicU64::new(0),
            frame_send_us: Mutex::new(Self::us_buckets()),
            frame_recv_gap_us: Mutex::new(Self::us_buckets()),
            last_recv_us: AtomicU64::new(u64::MAX),
        }
    }

    fn record_send(&self, wire_len: u64, dur_us: u64) {
        self.wire_bytes_sent.fetch_add(wire_len, Ordering::Relaxed);
        if let Ok(mut h) = self.frame_send_us.lock() {
            h.record(dur_us);
        }
    }

    fn record_recv(&self, wire_len: u64, now_us: u64) {
        self.wire_bytes_recv.fetch_add(wire_len, Ordering::Relaxed);
        let prev = self.last_recv_us.swap(now_us, Ordering::Relaxed);
        if prev != u64::MAX {
            if let Ok(mut h) = self.frame_recv_gap_us.lock() {
                h.record(now_us.saturating_sub(prev));
            }
        }
    }
}

// ---- Shared state ---------------------------------------------------------

struct Shared {
    rank: usize,
    p: usize,
    timeout: Duration,
    heartbeat: Duration,
    miss: u32,
    start: Instant,
    addrbook: Vec<String>,
    peers: Vec<Peer>,
    dead: Mutex<Vec<DeathRecord>>,
    /// Rank 0 only: barrier-entry announcements (src, round).
    entries_tx: Mutex<Option<Sender<(u32, u64)>>>,
    /// Non-zero ranks: barrier releases from rank 0.
    release_tx: Mutex<Option<Sender<u64>>>,
    /// We started shutting down (gracefully or not): background threads
    /// exit and connection teardown stops triggering reconnects.
    shutting_down: AtomicBool,
    /// DATA frames sent process-wide (the drop-injection trigger).
    data_sent: AtomicU64,
    drop_after: Option<u64>,
    drop_fired: AtomicBool,
    log: Mutex<File>,
    /// Live link-layer metrics (snapshot via [`Shared::metrics_registry`]).
    metrics: TransportMetrics,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Snapshots the live transport metrics into a registry under
    /// `proc.*` keys — the per-rank half of the `--metrics-interval`
    /// stream and the source for [`crate::ProcCounters`] at run end.
    fn metrics_registry(&self) -> MetricsRegistry {
        let m = &self.metrics;
        let mut reg = MetricsRegistry::new();
        reg.counter("proc.reconnects", m.reconnects.load(Ordering::Relaxed));
        reg.counter(
            "proc.replayed_frames",
            m.replayed_frames.load(Ordering::Relaxed),
        );
        reg.counter(
            "proc.heartbeat_misses",
            m.heartbeat_misses.load(Ordering::Relaxed),
        );
        reg.gauge(
            "proc.wire_bytes_sent",
            m.wire_bytes_sent.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "proc.wire_bytes_recv",
            m.wire_bytes_recv.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "proc.data_bytes_sent",
            m.data_bytes_sent.load(Ordering::Relaxed) as f64,
        );
        reg.gauge(
            "proc.data_bytes_recv",
            m.data_bytes_recv.load(Ordering::Relaxed) as f64,
        );
        if let Ok(h) = m.frame_send_us.lock() {
            reg.hist("proc.frame_send_us", h.clone());
        }
        if let Ok(h) = m.frame_recv_gap_us.lock() {
            reg.hist("proc.frame_recv_gap_us", h.clone());
        }
        reg
    }

    fn log(&self, msg: &str) {
        if let Ok(mut f) = self.log.lock() {
            let _ = writeln!(f, "[{:9.3}s] {}", self.start.elapsed().as_secs_f64(), msg);
        }
    }

    /// Queues a reliable frame for `dst` (replayed across reconnects)
    /// and attempts an immediate write.
    fn send_reliable(&self, dst: usize, kind_byte: u8, body: Vec<u8>) -> Result<(), PeerGone> {
        let peer = &self.peers[dst];
        if peer.dead.load(Ordering::SeqCst) || peer.bye.load(Ordering::SeqCst) {
            return Err(PeerGone);
        }
        let mut conn = peer.conn.lock().unwrap();
        let link_seq = conn.next_link_seq;
        conn.next_link_seq += 1;
        let body_len = body.len() as u64;
        let frame = Frame {
            kind: kind_byte,
            src: self.rank as u32,
            link_seq,
            body,
        };
        let bytes = wire::encode_frame(&frame);
        conn.replay.push_back((link_seq, bytes.clone()));
        if let Some(stream) = conn.stream.as_mut() {
            let t0 = Instant::now();
            if stream
                .write_all(&bytes)
                .and_then(|_| stream.flush())
                .is_err()
            {
                let _ = stream.shutdown(Shutdown::Both);
                conn.stream = None;
            } else {
                self.metrics
                    .record_send(bytes.len() as u64, t0.elapsed().as_micros() as u64);
            }
        }
        if kind_byte == kind::DATA {
            self.metrics
                .data_bytes_sent
                .fetch_add(body_len, Ordering::Relaxed);
            let n = self.data_sent.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(after) = self.drop_after {
                if n >= after && !self.drop_fired.swap(true, Ordering::SeqCst) {
                    self.log(&format!(
                        "fault hook: dropping connection to rank {dst} after DATA #{n}"
                    ));
                    if let Some(stream) = conn.stream.take() {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                }
            }
        }
        Ok(())
    }

    /// Best-effort unreliable control frame (HEARTBEAT, BYE, ACK).
    fn send_control(&self, dst: usize, frame: &Frame) {
        let mut conn = self.peers[dst].conn.lock().unwrap();
        if let Some(stream) = conn.stream.as_mut() {
            let t0 = Instant::now();
            if wire::write_frame(stream, frame).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                conn.stream = None;
            } else {
                self.metrics.record_send(
                    wire::FRAME_OVERHEAD + frame.body.len() as u64,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
    }

    fn mark_peer_dead(&self, q: usize, why: &str) {
        let peer = &self.peers[q];
        if peer.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        self.log(&format!("peer rank {q} declared dead: {why}"));
        self.dead
            .lock()
            .unwrap()
            .push(DeathRecord { rank: q, gen: 0 });
        // Wake anything blocked on this peer: receives observe
        // `Disconnected` once the sender is gone, the reader wakes on
        // the shutdown.
        *peer.data_tx.lock().unwrap() = None;
        let mut conn = peer.conn.lock().unwrap();
        if let Some(stream) = conn.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn any_peer_dead(&self) -> bool {
        (0..self.p).any(|q| q != self.rank && self.peers[q].dead.load(Ordering::SeqCst))
    }

    /// Graceful shutdown: BYE every live peer, wait briefly for theirs,
    /// then tear the mesh down.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for q in 0..self.p {
            if q == self.rank || self.peers[q].dead.load(Ordering::SeqCst) {
                continue;
            }
            self.send_control(q, &Frame::control(kind::BYE, self.rank));
        }
        // Drain: give peers a moment to BYE back so both sides close at
        // a frame boundary instead of racing EOF against final ACKs.
        let deadline = Instant::now() + Duration::from_millis(750);
        while Instant::now() < deadline {
            let all_done = (0..self.p).all(|q| {
                q == self.rank
                    || self.peers[q].dead.load(Ordering::SeqCst)
                    || self.peers[q].bye.load(Ordering::SeqCst)
            });
            if all_done {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown();
        self.log("graceful shutdown complete");
    }

    /// Unclean shutdown (rank panicked): no BYE, peers see a raw EOF
    /// and route it into their own failure handling.
    fn abort_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.teardown();
        self.log("abortive shutdown (no BYE)");
    }

    fn teardown(&self) {
        for q in 0..self.p {
            if q == self.rank {
                continue;
            }
            let mut conn = self.peers[q].conn.lock().unwrap();
            if let Some(stream) = conn.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        *self.entries_tx.lock().unwrap() = None;
        *self.release_tx.lock().unwrap() = None;
    }

    /// SIGTERM: drain connections, then exit with the conventional
    /// 128+15 status.
    fn drain_and_exit(&self) -> ! {
        self.log("SIGTERM received: draining connections");
        self.begin_shutdown();
        std::process::exit(143);
    }
}

// ---- Connection wiring ----------------------------------------------------

/// Installs `stream` as the current connection to `q`: syncs the replay
/// queue against the peer's delivered watermark, retransmits the
/// unacknowledged suffix, and spawns a reader for the new connection.
fn install_conn(
    shared: &Arc<Shared>,
    q: usize,
    stream: UnixStream,
    peer_watermark: u64,
) -> io::Result<()> {
    let writer = stream.try_clone()?;
    let peer = &shared.peers[q];
    let epoch;
    {
        let mut conn = peer.conn.lock().unwrap();
        if let Some(old) = conn.stream.take() {
            let _ = old.shutdown(Shutdown::Both);
        }
        conn.epoch += 1;
        epoch = conn.epoch;
        conn.acked = conn.acked.max(peer_watermark);
        while conn
            .replay
            .front()
            .is_some_and(|(seq, _)| *seq <= conn.acked)
        {
            conn.replay.pop_front();
        }
        let mut w = writer;
        let mut ok = true;
        for (_, bytes) in conn.replay.iter() {
            if w.write_all(bytes).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            let _ = w.flush();
            conn.stream = Some(w);
            shared
                .metrics
                .replayed_frames
                .fetch_add(conn.replay.len() as u64, Ordering::Relaxed);
        } else {
            // The fresh connection is already broken; its reader will
            // notice and retry.
            let _ = w.shutdown(Shutdown::Both);
        }
        shared.log(&format!(
            "link to rank {q} up (epoch {epoch}, peer watermark {peer_watermark}, replayed {})",
            conn.replay.len()
        ));
    }
    peer.last_seen_ms.store(shared.now_ms(), Ordering::SeqCst);
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("proc-read-{q}"))
        .spawn(move || reader_loop(shared, q, stream, epoch))
        .map(|_| ())
}

/// Reads frames off one connection to peer `q` until it dies, then
/// hands off to reconnect/death handling.
fn reader_loop(shared: Arc<Shared>, q: usize, stream: UnixStream, epoch: u64) {
    let _ = stream.set_read_timeout(None);
    let raw = match stream.try_clone() {
        Ok(c) => c,
        Err(_) => stream,
    };
    let mut r = BufReader::new(raw);
    let reason = loop {
        match wire::read_frame(&mut r) {
            Ok(Some(frame)) => {
                shared.peers[q]
                    .last_seen_ms
                    .store(shared.now_ms(), Ordering::SeqCst);
                shared.metrics.record_recv(
                    wire::FRAME_OVERHEAD + frame.body.len() as u64,
                    shared.now_us(),
                );
                if frame.kind == kind::DATA {
                    shared
                        .metrics
                        .data_bytes_recv
                        .fetch_add(frame.body.len() as u64, Ordering::Relaxed);
                }
                route_frame(&shared, q, frame);
            }
            Ok(None) => break "EOF".to_string(),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => break format!("read error: {e}"),
        }
    };
    on_conn_end(&shared, q, epoch, &reason);
}

/// Routes one received frame to the right consumer.
fn route_frame(shared: &Arc<Shared>, q: usize, frame: Frame) {
    let peer = &shared.peers[q];
    match frame.kind {
        kind::DATA | kind::BARRIER_ENTER | kind::BARRIER_RELEASE => {
            // Reliable frame: watermark-dedup, ack, then deliver.
            {
                let mut conn = peer.conn.lock().unwrap();
                if frame.link_seq <= conn.delivered {
                    return; // duplicate from a replay
                }
                conn.delivered = frame.link_seq;
                let ack = Frame::with_u64(kind::ACK, shared.rank, conn.delivered);
                if let Some(stream) = conn.stream.as_mut() {
                    let _ = wire::write_frame(stream, &ack);
                }
            }
            match frame.kind {
                kind::DATA => {
                    let msg = match wire::decode_msg(&frame.body) {
                        Ok(m) => m,
                        Err(e) => {
                            shared.log(&format!("rank {q}: undecodable DATA frame: {e}"));
                            return;
                        }
                    };
                    let tx = peer.data_tx.lock().unwrap().clone();
                    if let Some(tx) = tx {
                        let _ = tx.send(msg);
                    }
                }
                kind::BARRIER_ENTER => {
                    if let Ok(round) = frame.body_u64() {
                        let tx = shared.entries_tx.lock().unwrap().clone();
                        if let Some(tx) = tx {
                            let _ = tx.send((frame.src, round));
                        }
                    }
                }
                _ => {
                    // BARRIER_RELEASE
                    if let Ok(round) = frame.body_u64() {
                        let tx = shared.release_tx.lock().unwrap().clone();
                        if let Some(tx) = tx {
                            let _ = tx.send(round);
                        }
                    }
                }
            }
        }
        kind::ACK => {
            if let Ok(watermark) = frame.body_u64() {
                let mut conn = peer.conn.lock().unwrap();
                conn.acked = conn.acked.max(watermark);
                while conn
                    .replay
                    .front()
                    .is_some_and(|(seq, _)| *seq <= conn.acked)
                {
                    conn.replay.pop_front();
                }
            }
        }
        kind::HEARTBEAT => {} // last_seen already updated
        kind::BYE => {
            shared.log(&format!("rank {q} said BYE"));
            peer.bye.store(true, Ordering::SeqCst);
        }
        other => shared.log(&format!("rank {q}: unexpected frame kind {other}")),
    }
}

/// A connection to `q` ended: clean-close after BYE, ignore if stale or
/// shutting down, reconnect if we are the dialing side, else leave it
/// to the liveness monitor.
fn on_conn_end(shared: &Arc<Shared>, q: usize, epoch: u64, reason: &str) {
    let peer = &shared.peers[q];
    {
        let mut conn = peer.conn.lock().unwrap();
        if conn.epoch != epoch {
            return; // a newer connection has already replaced this one
        }
        if let Some(stream) = conn.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
    if shared.shutting_down.load(Ordering::SeqCst) || peer.dead.load(Ordering::SeqCst) {
        return;
    }
    if peer.bye.load(Ordering::SeqCst) {
        // Graceful close: future receives must see `Disconnected`, the
        // thread-backend analogue of a finished rank dropping its
        // channels. Queued messages already delivered remain readable.
        shared.log(&format!("link to rank {q} closed cleanly"));
        *peer.data_tx.lock().unwrap() = None;
        return;
    }
    shared.log(&format!("link to rank {q} lost ({reason})"));
    if q < shared.rank {
        reconnect_loop(shared, q);
    }
    // q > rank: the peer dials us; the acceptor installs the
    // replacement and the heartbeat monitor handles true death.
}

/// Dialer-side reconnect with capped exponential backoff, bounded by
/// the liveness budget (miss threshold × heartbeat period).
fn reconnect_loop(shared: &Arc<Shared>, q: usize) {
    let budget = shared.heartbeat * shared.miss;
    let deadline = Instant::now() + budget.max(Duration::from_secs(1));
    let mut backoff = Duration::from_millis(20);
    let path = shared.addrbook[q].clone();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst)
            || shared.peers[q].dead.load(Ordering::SeqCst)
        {
            return;
        }
        match dial_peer(shared, q, &path) {
            Ok(()) => {
                shared.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                shared.log(&format!("reconnected to rank {q}"));
                return;
            }
            Err(e) => {
                shared.log(&format!("redial rank {q} failed: {e}"));
            }
        }
        if Instant::now() >= deadline {
            shared.mark_peer_dead(q, "reconnect budget exhausted");
            return;
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(500));
    }
}

/// Dials peer `q` and runs the HELLO exchange (dialer side: HELLO out,
/// HELLO back carrying the peer's delivered watermark).
fn dial_peer(shared: &Arc<Shared>, q: usize, path: &str) -> io::Result<()> {
    let mut stream = UnixStream::connect(path)?;
    let delivered = shared.peers[q].conn.lock().unwrap().delivered;
    wire::write_frame(
        &mut stream,
        &Frame::with_u64(kind::HELLO, shared.rank, delivered),
    )?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let hello = wire::read_frame(&mut &stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before HELLO reply"))?;
    stream.set_read_timeout(None)?;
    if hello.kind != kind::HELLO || hello.src as usize != q {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad HELLO reply",
        ));
    }
    install_conn(shared, q, stream, hello.body_u64()?)
}

/// Mesh accept loop: each incoming connection leads with HELLO(src,
/// watermark); we reply with our own watermark and install it.
fn acceptor_loop(shared: Arc<Shared>, listener: UnixListener) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Err(e) = handle_accept(&shared, stream) {
                    shared.log(&format!("accept handshake failed: {e}"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(SLICE);
            }
            Err(e) => {
                shared.log(&format!("accept error: {e}"));
                std::thread::sleep(SLICE);
            }
        }
    }
}

fn handle_accept(shared: &Arc<Shared>, mut stream: UnixStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let hello = wire::read_frame(&mut &stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before HELLO"))?;
    stream.set_read_timeout(None)?;
    if hello.kind != kind::HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected HELLO"));
    }
    let q = hello.src as usize;
    if q >= shared.p || q == shared.rank {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "HELLO from invalid rank",
        ));
    }
    if shared.peers[q].dead.load(Ordering::SeqCst) {
        // No resurrection: once declared dead, stay dead (the
        // supervisor restarts the whole generation).
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "peer already declared dead",
        ));
    }
    let delivered = shared.peers[q].conn.lock().unwrap().delivered;
    wire::write_frame(
        &mut stream,
        &Frame::with_u64(kind::HELLO, shared.rank, delivered),
    )?;
    install_conn(shared, q, stream, hello.body_u64()?)
}

/// Heartbeat thread: beacon every peer each period; declare a peer dead
/// once its silence exceeds the miss threshold.
fn monitor_loop(shared: Arc<Shared>) {
    let period_ms = shared.heartbeat.as_millis().max(1) as u64;
    loop {
        let wake = Instant::now() + shared.heartbeat;
        while Instant::now() < wake {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20).min(shared.heartbeat));
        }
        let now = shared.now_ms();
        for q in 0..shared.p {
            if q == shared.rank {
                continue;
            }
            let peer = &shared.peers[q];
            if peer.dead.load(Ordering::SeqCst) || peer.bye.load(Ordering::SeqCst) {
                continue;
            }
            shared.send_control(q, &Frame::control(kind::HEARTBEAT, shared.rank));
            let age = now.saturating_sub(peer.last_seen_ms.load(Ordering::SeqCst));
            if age > period_ms {
                // Each tick past one beacon period of silence is one
                // observed miss; `miss` consecutive observations is
                // death below.
                shared
                    .metrics
                    .heartbeat_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
            if age > u64::from(shared.miss) * period_ms {
                shared.mark_peer_dead(q, &format!("no frames for {age} ms"));
            }
        }
    }
}

// ---- Rendezvous -----------------------------------------------------------

fn rendezvous_path(dir: &Path) -> PathBuf {
    dir.join("rendezvous.sock")
}

fn mesh_path(dir: &Path, rank: usize) -> String {
    dir.join(format!("rank{rank}.sock"))
        .to_string_lossy()
        .into_owned()
}

/// File rank 0 writes its rendezvous-estimated per-rank clock offsets
/// into (consumed by `trace-report --merge` to align wall clocks).
pub(crate) fn clock_offsets_path(dir: &Path) -> PathBuf {
    dir.join("clock-offsets.json")
}

/// Rank 0: runs the NTP-style midpoint exchange against one held
/// rendezvous stream. Three CLOCK_PING/PONG round trips; the minimum-RTT
/// sample wins (least queueing noise). The returned offset is
/// `t1 − (t0 + t2)/2` — what to *subtract* from the peer's wall reading
/// to land it on rank 0's clock axis.
fn estimate_clock_offset(stream: &UnixStream, src: usize, anchor: &Instant) -> io::Result<f64> {
    let mut best_rtt = f64::INFINITY;
    let mut best_offset = 0.0f64;
    for _ in 0..3 {
        let t0 = anchor.elapsed().as_secs_f64();
        wire::write_frame(&mut &*stream, &Frame::control(kind::CLOCK_PING, 0))?;
        let pong = wire::read_frame(&mut &*stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before CLOCK_PONG"))?;
        let t2 = anchor.elapsed().as_secs_f64();
        if pong.kind != kind::CLOCK_PONG || pong.src as usize != src {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected CLOCK_PONG",
            ));
        }
        let t1 = f64::from_bits(pong.body_u64()?);
        if !t1.is_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "non-finite CLOCK_PONG timestamp",
            ));
        }
        let rtt = t2 - t0;
        if rtt < best_rtt {
            best_rtt = rtt;
            best_offset = t1 - 0.5 * (t0 + t2);
        }
    }
    Ok(best_offset)
}

/// Rank 0: collect REGISTER(path) from every other rank, estimate each
/// registrant's clock offset over the held stream, then reply to each
/// with the full ADDRBOOK. Offsets land in `clock-offsets.json`.
fn rendezvous_serve(
    dir: &Path,
    p: usize,
    my_path: &str,
    deadline: Instant,
    anchor: &Instant,
) -> io::Result<Vec<String>> {
    let rv_path = rendezvous_path(dir);
    let _ = fs::remove_file(&rv_path);
    let listener = UnixListener::bind(&rv_path)?;
    listener.set_nonblocking(true)?;
    let mut book: Vec<Option<String>> = vec![None; p];
    book[0] = Some(my_path.to_string());
    let mut conns: Vec<(usize, UnixStream)> = Vec::new();
    while conns.len() < p - 1 {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "rendezvous: only {}/{} ranks registered",
                    conns.len(),
                    p - 1
                ),
            ));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_secs(2)))?;
                let frame = wire::read_frame(&mut &stream)?.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before REGISTER")
                })?;
                if frame.kind != kind::REGISTER {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "expected REGISTER",
                    ));
                }
                let src = frame.src as usize;
                if src == 0 || src >= p {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "REGISTER from invalid rank",
                    ));
                }
                book[src] = Some(wire::decode_register(&frame.body)?);
                conns.push((src, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    let paths: Vec<String> = book.into_iter().map(|b| b.unwrap()).collect();
    // Clock-offset estimation rides the held rendezvous streams before
    // the ADDRBOOK release: every peer is parked in `rendezvous_join`
    // answering pings, so the exchange sees rendezvous-quality latency.
    let mut offsets = vec![0.0f64; p];
    for (src, stream) in &conns {
        offsets[*src] = estimate_clock_offset(stream, *src, anchor)?;
    }
    fs::write(
        clock_offsets_path(dir),
        gnn_trace::merge::offsets_json(&offsets),
    )?;
    let body = wire::encode_addrbook(&paths);
    for (_, mut stream) in conns {
        let frame = Frame {
            kind: kind::ADDRBOOK,
            src: 0,
            link_seq: 0,
            body: body.clone(),
        };
        wire::write_frame(&mut stream, &frame)?;
    }
    let _ = fs::remove_file(&rv_path);
    Ok(paths)
}

/// Non-zero ranks: dial the rendezvous socket (retrying while rank 0
/// boots), REGISTER our mesh path, answer rank 0's clock-offset pings,
/// and wait for the ADDRBOOK.
fn rendezvous_join(
    dir: &Path,
    rank: usize,
    my_path: &str,
    deadline: Instant,
    anchor: &Instant,
) -> io::Result<Vec<String>> {
    let rv_path = rendezvous_path(dir);
    let mut stream = loop {
        match UnixStream::connect(&rv_path) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("rendezvous dial timed out: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    let frame = Frame {
        kind: kind::REGISTER,
        src: rank as u32,
        link_seq: 0,
        body: wire::encode_path(my_path),
    };
    wire::write_frame(&mut stream, &frame)?;
    let remaining = deadline.saturating_duration_since(Instant::now());
    stream.set_read_timeout(Some(remaining.max(Duration::from_millis(100))))?;
    let reply = loop {
        let frame = wire::read_frame(&mut &stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before ADDRBOOK"))?;
        match frame.kind {
            kind::CLOCK_PING => {
                // Reply with our monotonic reading immediately — the
                // midpoint estimate's accuracy is bounded by this
                // turnaround.
                let pong = Frame::with_u64(
                    kind::CLOCK_PONG,
                    rank,
                    anchor.elapsed().as_secs_f64().to_bits(),
                );
                wire::write_frame(&mut &stream, &pong)?;
            }
            kind::ADDRBOOK => break frame,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected CLOCK_PING or ADDRBOOK",
                ));
            }
        }
    };
    wire::decode_addrbook(&reply.body)
}

// ---- The transport --------------------------------------------------------

/// Process-backend link layer for one rank (one per process).
pub(crate) struct ProcTransport {
    shared: Arc<Shared>,
    watchdog: Arc<Watchdog>,
    data_rx: Vec<Option<Receiver<Msg>>>,
    /// Rank 0: barrier entries from every peer (all reader threads feed
    /// one channel; rounds are tallied in `pending_entries`).
    entries_rx: Option<Receiver<(u32, u64)>>,
    /// Non-zero ranks: releases from rank 0.
    release_rx: Option<Receiver<u64>>,
    round: u64,
    pending_entries: HashMap<u64, usize>,
}

impl ProcTransport {
    /// Binds, rendezvouses, and wires the full mesh; returns once every
    /// peer link is established.
    fn connect(
        rank: usize,
        p: usize,
        dir: &Path,
        timeout: Duration,
        heartbeat: Duration,
        miss: u32,
    ) -> io::Result<Self> {
        install_sigterm_handler();
        fs::create_dir_all(dir)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(format!("rank{rank}.log")))?;
        let drop_after = std::env::var("GNN_PROC_DROP_CONN_AFTER")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());

        // One anchor serves both clocks-of-record: it is `Shared.start`
        // (heartbeat ages, log stamps) *and* the wall-clock zero the
        // tracer and the rendezvous offset estimation share — so the
        // offsets rank 0 writes apply directly to trace timestamps.
        let start = Instant::now();
        let deadline = start + timeout;
        let my_path = mesh_path(dir, rank);
        let _ = fs::remove_file(&my_path);
        let listener = UnixListener::bind(&my_path)?;

        let addrbook = if p == 1 {
            fs::write(
                clock_offsets_path(dir),
                gnn_trace::merge::offsets_json(&[0.0]),
            )?;
            vec![my_path.clone()]
        } else if rank == 0 {
            rendezvous_serve(dir, p, &my_path, deadline, &start)?
        } else {
            rendezvous_join(dir, rank, &my_path, deadline, &start)?
        };
        if addrbook.len() != p {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "address book arity mismatch",
            ));
        }

        let mut data_rx: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(p);
        let mut peers = Vec::with_capacity(p);
        for q in 0..p {
            let peer = Peer::new();
            if q == rank {
                data_rx.push(None);
            } else {
                let (tx, rx) = mpsc::channel();
                *peer.data_tx.lock().unwrap() = Some(tx);
                data_rx.push(Some(rx));
            }
            peers.push(peer);
        }
        let (entries_rx, entries_tx) = if rank == 0 && p > 1 {
            let (tx, rx) = mpsc::channel();
            (Some(rx), Some(tx))
        } else {
            (None, None)
        };
        let (release_rx, release_tx) = if rank != 0 {
            let (tx, rx) = mpsc::channel();
            (Some(rx), Some(tx))
        } else {
            (None, None)
        };

        let shared = Arc::new(Shared {
            rank,
            p,
            timeout,
            heartbeat,
            miss,
            start,
            addrbook,
            peers,
            dead: Mutex::new(Vec::new()),
            entries_tx: Mutex::new(entries_tx),
            release_tx: Mutex::new(release_tx),
            shutting_down: AtomicBool::new(false),
            data_sent: AtomicU64::new(0),
            drop_after,
            drop_fired: AtomicBool::new(false),
            log: Mutex::new(log),
            metrics: TransportMetrics::new(),
        });
        shared.log(&format!("rank {rank}/{p} rendezvous complete"));

        if p > 1 {
            {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("proc-accept-{rank}"))
                    .spawn(move || acceptor_loop(shared, listener))?;
            }
            // Dial every lower rank; higher ranks dial us.
            for q in 0..rank {
                let path = shared.addrbook[q].clone();
                loop {
                    match dial_peer(&shared, q, &path) {
                        Ok(()) => break,
                        Err(e) => {
                            if Instant::now() >= deadline {
                                return Err(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    format!("mesh dial to rank {q} timed out: {e}"),
                                ));
                            }
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                }
            }
            // Wait for the full mesh (higher ranks connect through the
            // acceptor).
            loop {
                let all_up =
                    (0..p).all(|q| q == rank || shared.peers[q].conn.lock().unwrap().epoch > 0);
                if all_up {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "mesh wire-up timed out",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("proc-beat-{rank}"))
                    .spawn(move || monitor_loop(shared))?;
            }
        }
        shared.log("mesh up");

        Ok(ProcTransport {
            shared,
            watchdog: Arc::new(Watchdog::new(p, timeout)),
            data_rx,
            entries_rx,
            release_rx,
            round: 0,
            pending_entries: HashMap::new(),
        })
    }

    fn barrier_rank0(&mut self, round: u64) -> bool {
        let p = self.shared.p;
        let deadline = Instant::now() + self.shared.timeout;
        let mut have = self.pending_entries.remove(&round).unwrap_or(0);
        let rx = self.entries_rx.as_ref().expect("rank 0 entries channel");
        while have < p - 1 {
            if sigterm_requested() {
                self.shared.drain_and_exit();
            }
            if self.shared.any_peer_dead() {
                return false;
            }
            match rx.recv_timeout(SLICE) {
                Ok((_src, r)) if r == round => have += 1,
                Ok((_src, r)) => *self.pending_entries.entry(r).or_insert(0) += 1,
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
        for q in 1..p {
            if self
                .shared
                .send_reliable(q, kind::BARRIER_RELEASE, round.to_le_bytes().to_vec())
                .is_err()
            {
                return false;
            }
        }
        true
    }

    fn barrier_member(&mut self, round: u64) -> bool {
        if self
            .shared
            .send_reliable(0, kind::BARRIER_ENTER, round.to_le_bytes().to_vec())
            .is_err()
        {
            return false;
        }
        let deadline = Instant::now() + self.shared.timeout;
        let rx = self.release_rx.as_ref().expect("member release channel");
        loop {
            if sigterm_requested() {
                self.shared.drain_and_exit();
            }
            if self.shared.peers[0].dead.load(Ordering::SeqCst) {
                return false;
            }
            match rx.recv_timeout(SLICE) {
                Ok(r) if r == round => return true,
                Ok(r) => {
                    // A stale release can only trail a barrier this rank
                    // already abandoned; ignore it.
                    self.shared
                        .log(&format!("ignoring stale barrier release {r} (at {round})"));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }
}

impl Transport for ProcTransport {
    fn send(&mut self, dst: usize, msg: Msg) -> Result<(), PeerGone> {
        self.shared
            .send_reliable(dst, kind::DATA, wire::encode_msg(&msg))
    }

    fn recv_deadline(&mut self, src: usize, timeout: Duration) -> RecvOutcome {
        let deadline = Instant::now() + timeout;
        let rx = match self.data_rx[src].as_ref() {
            Some(rx) => rx,
            None => return RecvOutcome::Disconnected, // self-receive
        };
        loop {
            if sigterm_requested() {
                self.shared.drain_and_exit();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return RecvOutcome::TimedOut;
            }
            match rx.recv_timeout(remaining.min(SLICE)) {
                Ok(msg) => return RecvOutcome::Frame(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return RecvOutcome::Disconnected,
            }
        }
    }

    fn try_recv(&mut self, src: usize) -> TryRecvOutcome {
        let rx = match self.data_rx[src].as_ref() {
            Some(rx) => rx,
            None => return TryRecvOutcome::Disconnected,
        };
        match rx.try_recv() {
            Ok(msg) => TryRecvOutcome::Frame(msg),
            Err(TryRecvError::Empty) => TryRecvOutcome::Empty,
            Err(TryRecvError::Disconnected) => TryRecvOutcome::Disconnected,
        }
    }

    fn barrier_wait(&mut self) -> bool {
        if self.shared.p == 1 {
            return true;
        }
        self.round += 1;
        let round = self.round;
        if self.shared.rank == 0 {
            self.barrier_rank0(round)
        } else {
            self.barrier_member(round)
        }
    }

    fn barrier_wait_alive(&mut self) -> bool {
        // Failover is thread-backend-only; a death-aware rendezvous
        // degenerates to the plain barrier here.
        self.barrier_wait()
    }

    fn commit_wait(&mut self, _gen: u32) -> Option<bool> {
        panic!(
            "replica failover is not supported on the process backend; \
             run with checkpoint-restart (the default) or --backend thread"
        );
    }

    fn mark_dead(&self, rank: usize, gen: u32) {
        // Only reached by injected-crash bookkeeping; record it so
        // `deaths()` stays truthful, then let the crash panic unwind.
        self.shared
            .log(&format!("rank {rank} marked dead (gen {gen})"));
        self.shared
            .dead
            .lock()
            .unwrap()
            .push(DeathRecord { rank, gen });
    }

    fn deaths(&self) -> Vec<DeathRecord> {
        self.shared.dead.lock().unwrap().clone()
    }

    fn timeout(&self) -> Duration {
        self.shared.timeout
    }

    fn wd_begin(
        &self,
        rank: usize,
        kind: WaitKind,
        peer: Option<usize>,
        tag: Option<u8>,
        epoch: Option<usize>,
    ) {
        self.watchdog.begin(rank, kind, peer, tag, epoch);
    }

    fn wd_end(&self, rank: usize) {
        self.watchdog.end(rank);
    }

    fn wd_report(&self, rank: usize) -> DeadlockReport {
        self.watchdog.report(rank)
    }
}

// ---- ProcWorld ------------------------------------------------------------

/// Launch configuration for process-backed ranks: the counterpart of
/// [`crate::ThreadWorld`] where each rank is a real OS process. The
/// supervising launcher creates one `ProcWorld` per child process (same
/// `dir`) and calls [`ProcWorld::run_rank`] with that child's rank.
pub struct ProcWorld {
    p: usize,
    model: CostModel,
    timeout: Duration,
    dir: PathBuf,
    heartbeat: Duration,
    miss: u32,
    injector: Option<Arc<FaultInjector>>,
    tracing: bool,
    metrics_interval: Option<Duration>,
}

impl ProcWorld {
    /// A world of `p` process ranks rendezvousing under `dir` (short
    /// paths only: Unix socket paths are limited to ~100 bytes).
    ///
    /// Heartbeat period and miss threshold honor the
    /// `GNN_PROC_HEARTBEAT_MS` / `GNN_PROC_MISS` environment overrides;
    /// `GNN_PROC_METRICS_MS=<n>` turns on the periodic live-metrics
    /// snapshot stream (`metrics-rank<r>.jsonl` under `dir`).
    pub fn new(p: usize, model: CostModel, dir: impl Into<PathBuf>) -> Self {
        assert!(p > 0, "need at least one rank");
        let heartbeat = std::env::var("GNN_PROC_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_HEARTBEAT);
        let miss = std::env::var("GNN_PROC_MISS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_MISS);
        let metrics_interval = std::env::var("GNN_PROC_METRICS_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        ProcWorld {
            p,
            model,
            timeout: crate::world::ThreadWorld::DEFAULT_TIMEOUT,
            dir: dir.into(),
            heartbeat,
            miss: miss.max(1),
            injector: None,
            tracing: false,
            metrics_interval,
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Watchdog timeout bounding every blocking wait (and the wire-up).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Message-level fault plan (drop/corrupt/duplicate/delay), applied
    /// by the backend-independent retransmit machinery. Fates are pure
    /// functions of (seed, src, dst, seq), so thread and process runs
    /// under the same plan stay bit-identical.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        let injector = Arc::new(FaultInjector::new(plan));
        Self {
            injector: Some(injector),
            ..self
        }
    }

    /// Enables dual-clock structured tracing: the rank body records
    /// every op with both its modeled-time stamp and a monotonic
    /// wall-clock offset anchored at the transport's connect instant —
    /// the same anchor the rendezvous clock-offset exchange measures,
    /// so `trace-report --merge` can align per-rank traces.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Runs this process's rank body over the socket mesh. Returns the
    /// body's output and the rank's modeled stats, or a structured
    /// error when wire-up fails or the body panics (peer death,
    /// deadlock, protocol violation).
    pub fn run_rank<R>(
        &self,
        rank: usize,
        f: impl FnOnce(&mut RankCtx) -> R,
    ) -> Result<(R, RankStats), ProcError> {
        self.run_rank_traced(rank, f)
            .map(|(out, stats, _tracer)| (out, stats))
    }

    /// Like [`ProcWorld::run_rank`], but also returns the rank's
    /// dual-clock tracer when [`ProcWorld::with_tracing`] enabled it —
    /// the caller writes it out as this process's `trace-rank<r>.jsonl`.
    /// Stats gain the live transport counters (reconnects, replayed
    /// frames, heartbeat misses) observed during the run.
    pub fn run_rank_traced<R>(
        &self,
        rank: usize,
        f: impl FnOnce(&mut RankCtx) -> R,
    ) -> Result<(R, RankStats, Option<Box<RankTracer>>), ProcError> {
        assert!(rank < self.p, "rank {rank} out of range (p={})", self.p);
        // Structured panics are caught below; the guard keeps the
        // default hook from spraying backtraces for expected failures.
        let _hook = PanicHookGuard::acquire();
        let transport = ProcTransport::connect(
            rank,
            self.p,
            &self.dir,
            self.timeout,
            self.heartbeat,
            self.miss,
        )?;
        let shared = transport.shared.clone();
        let tracer = self
            .tracing
            .then(|| Box::new(RankTracer::with_wall_anchor(rank, shared.start)));
        if let Some(interval) = self.metrics_interval {
            let shared = shared.clone();
            let path = self.dir.join(format!("metrics-rank{rank}.jsonl"));
            let _ = std::thread::Builder::new()
                .name(format!("proc-metrics-{rank}"))
                .spawn(move || metrics_snapshot_loop(shared, path, interval));
        }
        let mut ctx = RankCtx::new(
            rank,
            self.p,
            self.model,
            Box::new(transport),
            self.injector.clone(),
            tracer,
            false,
        );
        let result = catch_unwind(AssertUnwindSafe(|| {
            let out = f(&mut ctx);
            let (stats, tracer) = ctx.into_parts();
            (out, stats, tracer)
        }));
        match result {
            Ok((out, mut stats, tracer)) => {
                let m = &shared.metrics;
                stats.proc.reconnects = m.reconnects.load(Ordering::Relaxed);
                stats.proc.replayed_frames = m.replayed_frames.load(Ordering::Relaxed);
                stats.proc.heartbeat_misses = m.heartbeat_misses.load(Ordering::Relaxed);
                shared.begin_shutdown();
                Ok((out, stats, tracer))
            }
            Err(payload) => {
                let message = describe_panic(payload.as_ref());
                shared.log(&format!("rank {rank} panicked: {message}"));
                shared.abort_shutdown();
                Err(ProcError::RankPanicked { rank, message })
            }
        }
    }
}

/// Periodic live-metrics snapshotter: appends one self-describing JSONL
/// line per interval to `metrics-rank<r>.jsonl`, plus a final line at
/// shutdown, so long chaos/soak runs are inspectable in flight (the
/// supervisor tails the last line of each rank's stream and aggregates).
fn metrics_snapshot_loop(shared: Arc<Shared>, path: PathBuf, interval: Duration) {
    let mut file = match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => f,
        Err(_) => return,
    };
    loop {
        let wake = Instant::now() + interval;
        let mut done = false;
        while Instant::now() < wake {
            if shared.shutting_down.load(Ordering::SeqCst) {
                done = true;
                break;
            }
            std::thread::sleep(SLICE.min(interval));
        }
        let line = format!(
            "{{\"schema\":\"{}\",\"type\":\"metrics\",\"rank\":{},\"wall\":{},\"metrics\":{}}}",
            gnn_trace::SCHEMA_VERSION,
            shared.rank,
            gnn_trace::json::fmt_f64(shared.start.elapsed().as_secs_f64()),
            shared.metrics_registry().metrics_json(),
        );
        if writeln!(file, "{line}").is_err() {
            return;
        }
        let _ = file.flush();
        if done {
            return;
        }
    }
}
