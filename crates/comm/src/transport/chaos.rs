//! Deterministic network-chaos interposer for the process backend.
//!
//! A [`NetChaosPlan`] sits between the frame codec and the socket and
//! perturbs the wire the way real interconnects do: per-link latency
//! with jitter, bandwidth caps, connections that die after N bytes,
//! one-way and symmetric partitions with scheduled heal times, and
//! connection-refused windows during rendezvous. Every perturbation is
//! a pure function of `(seed, link, counter, window clock)`, so the
//! same spec replays the same fault schedule — the chaos soak tests
//! assert the trained weights stay bit-identical to the `ThreadWorld`
//! oracle under every fault class.
//!
//! The spec grammar (CLI `--net-chaos`, one rule per `;`):
//!
//! ```text
//! seed=42                      # jitter seed (default 0)
//! delay=A>B:BASE[+-JIT]        # per-frame latency ms (one-way link)
//! delay=A-B:BASE[+-JIT]        # … both directions
//! bw=A>B:BYTES_PER_SEC         # token-bucket bandwidth cap
//! cut=A>B:NBYTES               # sever the link after N sent bytes
//! partition=A-B@FROM..UNTIL    # no traffic in [FROM,UNTIL) ms
//! partition=A>B@FROM..         # one-way, never heals
//! refuse=R@FROM..UNTIL         # dials to rank R refused in window
//! ```
//!
//! `A`/`B` are rank numbers or `*`. Windowed faults (`partition`,
//! `refuse`, `cut`) apply only to **generation 0** — the first
//! supervised process generation — unless suffixed `/all`; otherwise a
//! partition that outlives the reconnect deadline would re-fire after
//! every checkpoint restart and the run could never converge. `delay`
//! and `bw` shape timing only (never data), so they apply to every
//! generation.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use super::net::{lock_or_recover, splitmix64};

/// Rank selector in a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sel {
    Any,
    Rank(usize),
}

impl Sel {
    fn parse(s: &str) -> Result<Sel, String> {
        if s == "*" {
            Ok(Sel::Any)
        } else {
            s.parse::<usize>()
                .map(Sel::Rank)
                .map_err(|_| format!("bad rank selector {s:?} (want a rank number or '*')"))
        }
    }

    fn matches(&self, rank: usize) -> bool {
        match self {
            Sel::Any => true,
            Sel::Rank(r) => *r == rank,
        }
    }
}

impl fmt::Display for Sel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sel::Any => write!(f, "*"),
            Sel::Rank(r) => write!(f, "{r}"),
        }
    }
}

/// Directed link pattern: `src>dst` or the symmetric `src-dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LinkSel {
    src: Sel,
    dst: Sel,
    symmetric: bool,
}

impl LinkSel {
    fn parse(s: &str) -> Result<LinkSel, String> {
        let (a, b, symmetric) = if let Some((a, b)) = s.split_once('>') {
            (a, b, false)
        } else if let Some((a, b)) = s.split_once('-') {
            (a, b, true)
        } else {
            return Err(format!("bad link selector {s:?} (want 'A>B' or 'A-B')"));
        };
        Ok(LinkSel {
            src: Sel::parse(a)?,
            dst: Sel::parse(b)?,
            symmetric,
        })
    }

    /// Does this pattern cover the directed link `src → dst`?
    fn covers(&self, src: usize, dst: usize) -> bool {
        (self.src.matches(src) && self.dst.matches(dst))
            || (self.symmetric && self.src.matches(dst) && self.dst.matches(src))
    }
}

impl fmt::Display for LinkSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sep = if self.symmetric { '-' } else { '>' };
        write!(f, "{}{sep}{}", self.src, self.dst)
    }
}

/// Half-open activity window in milliseconds since transport start
/// (`until` `None` = never ends).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Window {
    from_ms: u64,
    until_ms: Option<u64>,
}

impl Window {
    fn parse(s: &str) -> Result<Window, String> {
        let (from, until) = s
            .split_once("..")
            .ok_or_else(|| format!("bad window {s:?} (want 'FROM..UNTIL' or 'FROM..')"))?;
        let from_ms = from
            .parse::<u64>()
            .map_err(|_| format!("bad window start {from:?}"))?;
        let until_ms = if until.is_empty() {
            None
        } else {
            let u = until
                .parse::<u64>()
                .map_err(|_| format!("bad window end {until:?}"))?;
            if u <= from_ms {
                return Err(format!("window {s:?} ends before it starts"));
            }
            Some(u)
        };
        Ok(Window { from_ms, until_ms })
    }

    fn active(&self, now_ms: u64) -> bool {
        now_ms >= self.from_ms && self.until_ms.is_none_or(|u| now_ms < u)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.until_ms {
            Some(u) => write!(f, "{}..{u}", self.from_ms),
            None => write!(f, "{}..", self.from_ms),
        }
    }
}

/// One parsed chaos rule.
#[derive(Clone, Debug, PartialEq)]
enum Rule {
    /// Per-frame latency: `base_ms ± jitter_ms` on matching links.
    Delay {
        link: LinkSel,
        base_ms: u64,
        jitter_ms: u64,
    },
    /// Token-bucket bandwidth cap on matching links.
    Bandwidth { link: LinkSel, bytes_per_sec: u64 },
    /// Sever the connection once N bytes have been sent on the link.
    Cut {
        link: LinkSel,
        after_bytes: u64,
        all_gens: bool,
    },
    /// No traffic on matching links while the window is active.
    Partition {
        link: LinkSel,
        window: Window,
        all_gens: bool,
    },
    /// Dials to `rank` fail with ConnectionRefused while active
    /// (covers the rendezvous endpoint when `rank` is 0).
    Refuse {
        rank: usize,
        window: Window,
        all_gens: bool,
    },
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let all = |b: bool| if b { "/all" } else { "" };
        match self {
            Rule::Delay {
                link,
                base_ms,
                jitter_ms,
            } => {
                if *jitter_ms > 0 {
                    write!(f, "delay={link}:{base_ms}+-{jitter_ms}")
                } else {
                    write!(f, "delay={link}:{base_ms}")
                }
            }
            Rule::Bandwidth {
                link,
                bytes_per_sec,
            } => write!(f, "bw={link}:{bytes_per_sec}"),
            Rule::Cut {
                link,
                after_bytes,
                all_gens,
            } => write!(f, "cut={link}:{after_bytes}{}", all(*all_gens)),
            Rule::Partition {
                link,
                window,
                all_gens,
            } => write!(f, "partition={link}@{window}{}", all(*all_gens)),
            Rule::Refuse {
                rank,
                window,
                all_gens,
            } => write!(f, "refuse={rank}@{window}{}", all(*all_gens)),
        }
    }
}

/// A seeded, replayable network-fault schedule for one run. Parse one
/// from a `--net-chaos` spec; apply it with
/// `ProcWorld::with_net_chaos`. The same spec produces the same fault
/// timeline on every run (jitter included), so chaos runs are
/// reproducible end to end.
#[derive(Clone, Debug, PartialEq)]
pub struct NetChaosPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl NetChaosPlan {
    /// Parses a `;`-separated rule spec (see the module docs for the
    /// grammar). Errors name the offending rule.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for raw in spec.split(';') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos rule {part:?} (want key=value)"))?;
            let (val, all_gens) = match val.strip_suffix("/all") {
                Some(v) => (v, true),
                None => (val, false),
            };
            match key {
                "seed" => {
                    seed = val
                        .parse::<u64>()
                        .map_err(|_| format!("bad chaos seed {val:?}"))?;
                }
                "delay" => {
                    let (link, amount) = split_rule(val)?;
                    let (base_ms, jitter_ms) = match amount.split_once("+-") {
                        Some((b, j)) => (parse_u64("delay", b)?, parse_u64("jitter", j)?),
                        None => (parse_u64("delay", amount)?, 0),
                    };
                    rules.push(Rule::Delay {
                        link: LinkSel::parse(link)?,
                        base_ms,
                        jitter_ms,
                    });
                }
                "bw" => {
                    let (link, rate) = split_rule(val)?;
                    let bytes_per_sec = parse_u64("bandwidth", rate)?;
                    if bytes_per_sec == 0 {
                        return Err(
                            "bw rate must be positive (use partition= to block a link)".to_string()
                        );
                    }
                    rules.push(Rule::Bandwidth {
                        link: LinkSel::parse(link)?,
                        bytes_per_sec,
                    });
                }
                "cut" => {
                    let (link, n) = split_rule(val)?;
                    rules.push(Rule::Cut {
                        link: LinkSel::parse(link)?,
                        after_bytes: parse_u64("cut threshold", n)?,
                        all_gens,
                    });
                }
                "partition" => {
                    let (link, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad partition {val:?} (want LINK@FROM..UNTIL)"))?;
                    rules.push(Rule::Partition {
                        link: LinkSel::parse(link)?,
                        window: Window::parse(window)?,
                        all_gens,
                    });
                }
                "refuse" => {
                    let (rank, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad refuse {val:?} (want RANK@FROM..UNTIL)"))?;
                    let rank = rank
                        .parse::<usize>()
                        .map_err(|_| format!("bad refuse rank {rank:?}"))?;
                    rules.push(Rule::Refuse {
                        rank,
                        window: Window::parse(window)?,
                        all_gens,
                    });
                }
                other => return Err(format!("unknown chaos rule kind {other:?}")),
            }
        }
        if rules.is_empty() {
            return Err("chaos spec has no rules".to_string());
        }
        Ok(NetChaosPlan { seed, rules })
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl fmt::Display for NetChaosPlan {
    /// Re-serializes to a spec string `NetChaosPlan::parse` accepts —
    /// the launcher uses this to hand the plan to child processes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for r in &self.rules {
            write!(f, ";{r}")?;
        }
        Ok(())
    }
}

fn split_rule(val: &str) -> Result<(&str, &str), String> {
    val.split_once(':')
        .ok_or_else(|| format!("bad chaos rule value {val:?} (want LINK:AMOUNT)"))
}

fn parse_u64(what: &str, s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad {what} {s:?}"))
}

// ---- Runtime state --------------------------------------------------------

/// What the interposer decided for one outbound frame.
pub(crate) enum SendVerdict {
    /// Write the frame after holding it for `delay` (latency + token
    /// bucket; zero when no shaping rule matches).
    Deliver { delay: Duration },
    /// Sever the connection instead of writing (partition onset or a
    /// cut threshold crossed); the frame stays queued for replay.
    Sever { why: &'static str },
}

/// One recorded fault activation (exported onto the trace wall axis).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChaosEvent {
    /// Seconds since transport start.
    pub wall_s: f64,
    /// The peer on the affected link.
    pub peer: usize,
    /// `"sever"`, `"cut"`, or `"refused"`.
    pub what: &'static str,
}

/// Cap on recorded fault activations (severs/refusals fire once per
/// reconnect attempt, so a long partition could otherwise grow this
/// without bound).
const MAX_EVENTS: usize = 512;

/// Per-link interposer state.
struct LinkState {
    /// Bytes sent on this directed link (cut-rule trigger).
    bytes_sent: AtomicU64,
    /// Jitter draw counter (the deterministic "randomness" axis).
    draws: AtomicU64,
    /// The cut rule fired (sever once, not on every later frame).
    cut_fired: AtomicBool,
    /// Token bucket: µs-since-start when the link is next free.
    busy_until_us: Mutex<u64>,
    /// A partition sever already fired for the current window (reset
    /// when the window closes, so a later window severs again).
    partition_severed: AtomicBool,
}

/// The per-process chaos runtime: one per transport, consulted on the
/// frame write path and at dial/accept time. `me` is this rank,
/// `generation` the supervised restart generation (windowed faults
/// default to generation 0 — see the module docs).
pub(crate) struct Chaos {
    plan: NetChaosPlan,
    me: usize,
    generation: u64,
    links: Vec<LinkState>,
    /// Frames held back by delay/bandwidth shaping.
    pub(crate) delays_injected: AtomicU64,
    /// Connections severed (partition onset + cut thresholds).
    pub(crate) severs_injected: AtomicU64,
    /// Dials refused (partition or refuse windows).
    pub(crate) dials_refused: AtomicU64,
    events: Mutex<Vec<ChaosEvent>>,
}

impl Chaos {
    pub(crate) fn new(plan: NetChaosPlan, me: usize, p: usize, generation: u64) -> Self {
        let links = (0..p)
            .map(|_| LinkState {
                bytes_sent: AtomicU64::new(0),
                draws: AtomicU64::new(0),
                cut_fired: AtomicBool::new(false),
                busy_until_us: Mutex::new(0),
                partition_severed: AtomicBool::new(false),
            })
            .collect();
        Chaos {
            plan,
            me,
            generation,
            links,
            delays_injected: AtomicU64::new(0),
            severs_injected: AtomicU64::new(0),
            dials_refused: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    fn windowed_applies(&self, all_gens: bool) -> bool {
        all_gens || self.generation == 0
    }

    /// Is the directed link `src → dst` inside an active partition?
    pub(crate) fn partitioned(&self, src: usize, dst: usize, now_ms: u64) -> bool {
        self.plan.rules.iter().any(|r| match r {
            Rule::Partition {
                link,
                window,
                all_gens,
            } => self.windowed_applies(*all_gens) && link.covers(src, dst) && window.active(now_ms),
            _ => false,
        })
    }

    /// Should a dial from `me` to `dst` be refused right now? A dial
    /// needs both directions of the link (SYN out, accept back), so
    /// either one-way partition blocks it; `refuse` windows model the
    /// listener not being there at all.
    pub(crate) fn dial_refused(&self, dst: usize, now_ms: u64) -> Option<&'static str> {
        let refused = self.plan.rules.iter().any(|r| match r {
            Rule::Refuse {
                rank,
                window,
                all_gens,
            } => self.windowed_applies(*all_gens) && *rank == dst && window.active(now_ms),
            _ => false,
        });
        if refused {
            self.note_event(dst, "refused", now_ms);
            self.dials_refused.fetch_add(1, Ordering::Relaxed);
            return Some("chaos: connection-refused window");
        }
        if self.partitioned(self.me, dst, now_ms) || self.partitioned(dst, self.me, now_ms) {
            self.note_event(dst, "refused", now_ms);
            self.dials_refused.fetch_add(1, Ordering::Relaxed);
            return Some("chaos: link partitioned");
        }
        None
    }

    /// Consulted before every outbound frame on the link `me → dst`.
    /// `now_us` is microseconds since transport start.
    pub(crate) fn on_send(&self, dst: usize, nbytes: u64, now_us: u64) -> SendVerdict {
        let now_ms = now_us / 1000;
        let link = &self.links[dst];
        if self.partitioned(self.me, dst, now_ms) {
            // Sever once per window; while severed, writes never reach
            // this point (the stream slot is empty).
            if !link.partition_severed.swap(true, Ordering::SeqCst) {
                self.severs_injected.fetch_add(1, Ordering::Relaxed);
                self.note_event(dst, "sever", now_ms);
            }
            return SendVerdict::Sever {
                why: "chaos: partition onset",
            };
        }
        link.partition_severed.store(false, Ordering::SeqCst);

        let sent = link.bytes_sent.fetch_add(nbytes, Ordering::Relaxed) + nbytes;
        for r in &self.plan.rules {
            if let Rule::Cut {
                link: sel,
                after_bytes,
                all_gens,
            } = r
            {
                if self.windowed_applies(*all_gens)
                    && sel.covers(self.me, dst)
                    && sent >= *after_bytes
                    && !link.cut_fired.swap(true, Ordering::SeqCst)
                {
                    self.severs_injected.fetch_add(1, Ordering::Relaxed);
                    self.note_event(dst, "cut", now_ms);
                    return SendVerdict::Sever {
                        why: "chaos: cut threshold crossed",
                    };
                }
            }
        }

        let mut delay_us: u64 = 0;
        for r in &self.plan.rules {
            match r {
                Rule::Delay {
                    link: sel,
                    base_ms,
                    jitter_ms,
                } if sel.covers(self.me, dst) => {
                    let mut d = base_ms * 1000;
                    if *jitter_ms > 0 {
                        let n = link.draws.fetch_add(1, Ordering::Relaxed);
                        let key = self
                            .plan
                            .seed
                            .wrapping_add((self.me as u64) << 40)
                            .wrapping_add((dst as u64) << 20)
                            .wrapping_add(n);
                        // Uniform in [-jitter, +jitter] µs, clamped at 0.
                        let span = jitter_ms * 2000 + 1;
                        let off = splitmix64(key) % span;
                        d = (d + off).saturating_sub(jitter_ms * 1000);
                    }
                    delay_us += d;
                }
                Rule::Bandwidth {
                    link: sel,
                    bytes_per_sec,
                } if sel.covers(self.me, dst) => {
                    // Token bucket on the wall clock: each frame
                    // occupies the link for nbytes/rate seconds; a
                    // frame arriving early waits for the link to free.
                    let occupy_us = nbytes.saturating_mul(1_000_000) / bytes_per_sec;
                    let mut busy = lock_or_recover(&link.busy_until_us);
                    let start = (*busy).max(now_us);
                    *busy = start + occupy_us;
                    delay_us += (*busy).saturating_sub(now_us);
                }
                _ => {}
            }
        }
        if delay_us > 0 {
            self.delays_injected.fetch_add(1, Ordering::Relaxed);
        }
        SendVerdict::Deliver {
            delay: Duration::from_micros(delay_us),
        }
    }

    fn note_event(&self, peer: usize, what: &'static str, now_ms: u64) {
        let mut ev = lock_or_recover(&self.events);
        if ev.len() < MAX_EVENTS {
            ev.push(ChaosEvent {
                wall_s: now_ms as f64 / 1000.0,
                peer,
                what,
            });
        }
    }

    /// Drains the recorded fault activations (trace export at run end).
    pub(crate) fn take_events(&self) -> Vec<ChaosEvent> {
        std::mem::take(&mut *lock_or_recover(&self.events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_display() {
        let spec = "seed=7;delay=0>1:5+-2;bw=*-*:1000000;cut=1>0:4096;\
                    partition=0-2@100..600;partition=1>3@50../all;refuse=0@0..250";
        let plan = NetChaosPlan::parse(spec).unwrap();
        let back = NetChaosPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn spec_rejects_malformed_rules() {
        for bad in [
            "",
            "delay=0>1",            // no amount
            "delay=0_1:5",          // bad link sep
            "bw=*>*:0",             // zero rate
            "partition=0-1",        // no window
            "partition=0-1@9..3",   // inverted window
            "refuse=x@0..5",        // bad rank
            "frobnicate=1",         // unknown kind
            "seed=abc;delay=0>1:1", // bad seed
        ] {
            assert!(NetChaosPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn partitions_cover_directions_and_windows() {
        let plan = NetChaosPlan::parse("partition=0-1@100..200;partition=2>3@50..").unwrap();
        let c = Chaos::new(plan, 0, 4, 0);
        assert!(!c.partitioned(0, 1, 99));
        assert!(c.partitioned(0, 1, 100));
        assert!(c.partitioned(1, 0, 150), "symmetric covers both ways");
        assert!(!c.partitioned(0, 1, 200), "heals at window end");
        assert!(c.partitioned(2, 3, 1_000_000), "one-way never heals");
        assert!(!c.partitioned(3, 2, 1_000_000), "reverse direction open");
    }

    #[test]
    fn windowed_faults_skip_later_generations() {
        let plan = NetChaosPlan::parse("partition=0-1@0..;refuse=0@0..").unwrap();
        let gen0 = Chaos::new(plan.clone(), 1, 2, 0);
        assert!(gen0.partitioned(0, 1, 10));
        assert!(gen0.dial_refused(0, 10).is_some());
        let gen1 = Chaos::new(plan, 1, 2, 1);
        assert!(!gen1.partitioned(0, 1, 10));
        assert!(gen1.dial_refused(0, 10).is_none());
        let sticky = NetChaosPlan::parse("partition=0-1@0../all").unwrap();
        assert!(Chaos::new(sticky, 1, 2, 3).partitioned(0, 1, 10));
    }

    #[test]
    fn delay_jitter_is_deterministic_and_bounded() {
        let plan = NetChaosPlan::parse("seed=9;delay=0>1:5+-3").unwrap();
        let a = Chaos::new(plan.clone(), 0, 2, 0);
        let b = Chaos::new(plan, 0, 2, 0);
        for i in 0..64 {
            let (va, vb) = (a.on_send(1, 100, i * 1000), b.on_send(1, 100, i * 1000));
            match (va, vb) {
                (SendVerdict::Deliver { delay: da }, SendVerdict::Deliver { delay: db }) => {
                    assert_eq!(da, db, "draw {i} must replay identically");
                    assert!(da >= Duration::from_millis(2) && da <= Duration::from_millis(8));
                }
                _ => panic!("delay rule must deliver"),
            }
        }
    }

    #[test]
    fn bandwidth_cap_accumulates_backpressure() {
        // 1 MB/s; a 100 kB frame occupies 100 ms of link time.
        let plan = NetChaosPlan::parse("bw=*>*:1000000").unwrap();
        let c = Chaos::new(plan, 0, 2, 0);
        let d1 = match c.on_send(1, 100_000, 0) {
            SendVerdict::Deliver { delay } => delay,
            _ => panic!(),
        };
        let d2 = match c.on_send(1, 100_000, 0) {
            SendVerdict::Deliver { delay } => delay,
            _ => panic!(),
        };
        assert_eq!(d1, Duration::from_millis(100));
        assert_eq!(d2, Duration::from_millis(200), "second frame queues behind");
    }

    #[test]
    fn cut_fires_once_at_threshold() {
        let plan = NetChaosPlan::parse("cut=0>1:1000").unwrap();
        let c = Chaos::new(plan, 0, 2, 0);
        assert!(matches!(c.on_send(1, 600, 0), SendVerdict::Deliver { .. }));
        assert!(matches!(c.on_send(1, 600, 1000), SendVerdict::Sever { .. }));
        assert!(
            matches!(c.on_send(1, 600, 2000), SendVerdict::Deliver { .. }),
            "cut severs once, then the link behaves"
        );
        assert_eq!(c.severs_injected.load(Ordering::Relaxed), 1);
        assert_eq!(c.take_events().len(), 1);
    }
}
