//! Pluggable link layer beneath [`crate::RankCtx`].
//!
//! Everything *above* this trait — sequence numbers, generation stamps,
//! end-to-end checksums, retransmit pricing, collectives, overlap
//! windows, tracing — is backend-independent and lives in
//! [`crate::ctx`]. A [`Transport`] only has to move already-framed
//! [`Msg`]s between ranks, run a rendezvous barrier, track peer
//! liveness, and feed the deadlock watchdog:
//!
//! * [`ThreadTransport`](thread::ThreadTransport) — ranks are OS threads
//!   in one process, connected by a full mesh of unbounded channels. The
//!   bit-exact oracle every other backend is measured against.
//! * [`ProcTransport`](proc::ProcTransport) — ranks are real OS
//!   processes exchanging length-prefixed frames over Unix-domain
//!   sockets, with heartbeats, reconnect, and peer-death detection (see
//!   [`crate::ProcWorld`]).
//!
//! The wire format a third backend must speak is documented in
//! DESIGN.md §8.

use std::time::Duration;

use crate::error::{DeadlockReport, WaitKind};
use crate::msg::Msg;
use crate::watchdog::DeathRecord;

#[cfg(unix)]
pub(crate) mod chaos;
#[cfg(unix)]
pub(crate) mod net;
#[cfg(unix)]
pub(crate) mod proc;
#[cfg(unix)]
pub(crate) mod replay;
pub(crate) mod thread;
#[cfg(unix)]
pub(crate) mod wire;

/// Marker error: the destination rank is known to be gone (crashed,
/// exited, or declared dead by the liveness monitor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PeerGone;

/// Outcome of a deadline-bounded blocking receive.
pub(crate) enum RecvOutcome {
    /// The next frame queued from the peer.
    Frame(Msg),
    /// The deadline elapsed without a frame (the caller re-checks its
    /// own watchdog deadline and retries).
    TimedOut,
    /// The peer's channel is gone — it crashed, exited, or was declared
    /// dead.
    Disconnected,
}

/// Outcome of a nonblocking receive probe.
pub(crate) enum TryRecvOutcome {
    /// A frame was already queued.
    Frame(Msg),
    /// Nothing queued right now.
    Empty,
    /// The peer's channel is gone.
    Disconnected,
}

/// The link layer beneath a [`crate::RankCtx`]: framed point-to-point
/// delivery, a rendezvous barrier, peer liveness, and the watchdog that
/// converts hangs into structured deadlock reports. One instance per
/// rank; implementations must be [`Send`] (a rank's context moves onto
/// its thread or process).
pub(crate) trait Transport: Send {
    /// Queues `msg` for `dst`. `Err(PeerGone)` means the peer is known
    /// dead — the caller decides whether that is fatal (no failover) or
    /// survivable. Delivery to a live peer must be reliable and FIFO.
    fn send(&mut self, dst: usize, msg: Msg) -> Result<(), PeerGone>;

    /// Blocks up to `timeout` for the next frame from `src`.
    fn recv_deadline(&mut self, src: usize, timeout: Duration) -> RecvOutcome;

    /// Returns a frame from `src` only if one is already queued.
    fn try_recv(&mut self, src: usize) -> TryRecvOutcome;

    /// Rendezvous of all ranks; `false` when the transport's watchdog
    /// timeout expired first.
    fn barrier_wait(&mut self) -> bool;

    /// Death-aware rendezvous: waits only for ranks still alive.
    fn barrier_wait_alive(&mut self) -> bool;

    /// Failover commit rendezvous: all survivors rendezvous, then one
    /// party evaluates "was generation `gen` poisoned by a death?" and
    /// publishes the verdict to everyone. `Some(true)` = commit,
    /// `Some(false)` = abort and retry, `None` = timed out.
    fn commit_wait(&mut self, gen: u32) -> Option<bool>;

    /// Registers `rank` as dead in generation `gen` (failover mode).
    fn mark_dead(&self, rank: usize, gen: u32);

    /// Every death recorded so far, in detection order.
    fn deaths(&self) -> Vec<DeathRecord>;

    /// The watchdog timeout bounding every blocking wait.
    fn timeout(&self) -> Duration;

    /// Registers what `rank` is about to block on (for deadlock reports).
    fn wd_begin(
        &self,
        rank: usize,
        kind: WaitKind,
        peer: Option<usize>,
        tag: Option<u8>,
        epoch: Option<usize>,
    );

    /// Clears `rank`'s registered wait.
    fn wd_end(&self, rank: usize);

    /// Snapshots every registered wait into a deadlock report.
    fn wd_report(&self, rank: usize) -> DeadlockReport;
}
