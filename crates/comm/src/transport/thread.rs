//! The thread-backed [`Transport`]: a full mesh of unbounded in-process
//! channels plus the shared [`TimeoutBarrier`] and [`Watchdog`]. This is
//! the original simulator link layer, extracted verbatim — it is the
//! bit-exact oracle the process backend is differenced against.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{DeadlockReport, WaitKind};
use crate::msg::Msg;
use crate::watchdog::{DeathRecord, TimeoutBarrier, Watchdog};

use super::{PeerGone, RecvOutcome, Transport, TryRecvOutcome};

/// Channel-mesh link layer for one rank: `to[dst]` feeds the peer's
/// `from[src]` (unbounded, so sends never block — the MPI eager-protocol
/// analogue).
pub(crate) struct ThreadTransport {
    p: usize,
    to: Vec<Sender<Msg>>,
    from: Vec<Receiver<Msg>>,
    barrier: Arc<TimeoutBarrier>,
    watchdog: Arc<Watchdog>,
}

impl ThreadTransport {
    pub(crate) fn new(
        p: usize,
        to: Vec<Sender<Msg>>,
        from: Vec<Receiver<Msg>>,
        barrier: Arc<TimeoutBarrier>,
        watchdog: Arc<Watchdog>,
    ) -> Self {
        assert_eq!(to.len(), p, "one sender per peer");
        assert_eq!(from.len(), p, "one receiver per peer");
        Self {
            p,
            to,
            from,
            barrier,
            watchdog,
        }
    }
}

impl Transport for ThreadTransport {
    fn send(&mut self, dst: usize, msg: Msg) -> Result<(), PeerGone> {
        self.to[dst].send(msg).map_err(|_| PeerGone)
    }

    fn recv_deadline(&mut self, src: usize, timeout: Duration) -> RecvOutcome {
        match self.from[src].recv_timeout(timeout) {
            Ok(frame) => RecvOutcome::Frame(frame),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Disconnected,
        }
    }

    fn try_recv(&mut self, src: usize) -> TryRecvOutcome {
        match self.from[src].try_recv() {
            Ok(frame) => TryRecvOutcome::Frame(frame),
            Err(TryRecvError::Empty) => TryRecvOutcome::Empty,
            Err(TryRecvError::Disconnected) => TryRecvOutcome::Disconnected,
        }
    }

    fn barrier_wait(&mut self) -> bool {
        self.barrier.wait(self.watchdog.timeout())
    }

    fn barrier_wait_alive(&mut self) -> bool {
        let p = self.p;
        let wd = self.watchdog.clone();
        self.barrier
            .wait_with(self.watchdog.timeout(), move || wd.alive_count(p))
    }

    fn commit_wait(&mut self, gen: u32) -> Option<bool> {
        let p = self.p;
        let wd = self.watchdog.clone();
        let wd_verdict = self.watchdog.clone();
        self.barrier.wait_verdict(
            self.watchdog.timeout(),
            move || wd.alive_count(p),
            // All survivors enter the commit with equal `gen` (they bump
            // in lockstep on every poisoned verdict), so whichever rank
            // evaluates this sees the same generation stamp.
            move || !wd_verdict.deaths().iter().any(|d| d.gen == gen),
        )
    }

    fn mark_dead(&self, rank: usize, gen: u32) {
        self.watchdog.mark_dead(rank, gen);
    }

    fn deaths(&self) -> Vec<DeathRecord> {
        self.watchdog.deaths()
    }

    fn timeout(&self) -> Duration {
        self.watchdog.timeout()
    }

    fn wd_begin(
        &self,
        rank: usize,
        kind: WaitKind,
        peer: Option<usize>,
        tag: Option<u8>,
        epoch: Option<usize>,
    ) {
        self.watchdog.begin(rank, kind, peer, tag, epoch);
    }

    fn wd_end(&self, rank: usize) {
        self.watchdog.end(rank);
    }

    fn wd_report(&self, rank: usize) -> DeadlockReport {
        self.watchdog.report(rank)
    }
}
