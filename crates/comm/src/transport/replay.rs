//! The reliability core of the process backend, extracted so its
//! invariants are testable without sockets: a sender-side
//! [`ReplayQueue`] (per-direction sequence assignment + cumulative-ACK
//! pruning + unacknowledged-suffix retransmit) and a receiver-side
//! [`DedupWatermark`] (deliver-exactly-once filtering of replayed
//! frames).
//!
//! The contract the property tests below pin down — and the socket
//! harness re-proves over real Unix *and* TCP connections:
//!
//! > For any prefix of frames delivered before a forced disconnect,
//! > replaying the unacknowledged suffix yields a delivered sequence
//! > byte-identical to a never-disconnected run, and both watermarks
//! > end exactly at the number of frames sent.

use std::collections::VecDeque;

/// Sender half: assigns `link_seq`s, retains encoded frames until the
/// peer's cumulative ACK covers them, and replays the suffix beyond the
/// peer's delivered watermark on reconnect.
pub(crate) struct ReplayQueue {
    next_seq: u64,
    acked: u64,
    queue: VecDeque<(u64, Vec<u8>)>,
}

impl ReplayQueue {
    pub(crate) fn new() -> Self {
        ReplayQueue {
            next_seq: 1,
            acked: 0,
            queue: VecDeque::new(),
        }
    }

    /// Claims the next reliable sequence number (1-based).
    pub(crate) fn assign_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Retains the encoded bytes of frame `seq` for replay.
    pub(crate) fn push(&mut self, seq: u64, bytes: Vec<u8>) {
        debug_assert!(
            self.queue.back().is_none_or(|(s, _)| *s < seq),
            "replay queue must stay seq-ordered"
        );
        self.queue.push_back((seq, bytes));
    }

    /// Applies a cumulative ACK watermark: prunes every retained frame
    /// it covers. Watermarks are monotone (stale ACKs are no-ops).
    pub(crate) fn ack(&mut self, watermark: u64) {
        self.acked = self.acked.max(watermark);
        while self.queue.front().is_some_and(|(s, _)| *s <= self.acked) {
            self.queue.pop_front();
        }
    }

    /// The peer's highest acknowledged sequence.
    #[cfg(test)]
    pub(crate) fn acked(&self) -> u64 {
        self.acked
    }

    /// Frames retained beyond the ACK watermark, in sequence order —
    /// exactly what a reconnect retransmits.
    pub(crate) fn unacked(&self) -> impl Iterator<Item = &[u8]> {
        self.queue.iter().map(|(_, b)| b.as_slice())
    }

    /// Number of retained frames.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Receiver half: the cumulative delivered watermark. Frames at or
/// below it are replay duplicates and must be dropped; anything above
/// advances it and is delivered.
pub(crate) struct DedupWatermark {
    delivered: u64,
}

impl DedupWatermark {
    pub(crate) fn new() -> Self {
        DedupWatermark { delivered: 0 }
    }

    /// Admits frame `seq`: `true` = deliver (watermark advances),
    /// `false` = duplicate of an already-delivered frame.
    pub(crate) fn admit(&mut self, seq: u64) -> bool {
        if seq <= self.delivered {
            return false;
        }
        self.delivered = seq;
        true
    }

    /// The highest delivered sequence (what HELLO/ACK frames carry).
    pub(crate) fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulates one link direction end to end: `n` frames sent, a
    /// forced disconnect after the receiver has seen only a prefix
    /// (`delivered_prefix`), ACKs observed only up to `acked_prefix ≤
    /// delivered_prefix` (ACKs can be lost with the connection), then a
    /// reconnect replaying the unacknowledged suffix. Returns the bytes
    /// the receiver delivered, in order.
    fn run_disconnect_scenario(
        n: u64,
        delivered_prefix: u64,
        acked_prefix: u64,
        frames: &[Vec<u8>],
    ) -> (Vec<Vec<u8>>, u64, u64) {
        assert!(acked_prefix <= delivered_prefix && delivered_prefix <= n);
        let mut sender = ReplayQueue::new();
        let mut receiver = DedupWatermark::new();
        let mut delivered: Vec<Vec<u8>> = Vec::new();

        for bytes in frames {
            let seq = sender.assign_seq();
            sender.push(seq, bytes.clone());
            // The wire delivers only the prefix before the cut.
            if seq <= delivered_prefix && receiver.admit(seq) {
                delivered.push(bytes.clone());
            }
        }
        // Only a prefix of the receiver's ACKs made it back.
        sender.ack(acked_prefix);

        // Reconnect: HELLO carries the receiver's delivered watermark;
        // the sender syncs its queue against it and replays the rest.
        // The replayed suffix starts right after that watermark, so the
        // i-th replayed frame decodes to seq `watermark + 1 + i`.
        let watermark = receiver.delivered();
        sender.ack(watermark);
        let replayed: Vec<Vec<u8>> = sender.unacked().map(|b| b.to_vec()).collect();
        for (i, bytes) in replayed.iter().enumerate() {
            if receiver.admit(watermark + 1 + i as u64) {
                delivered.push(bytes.clone());
            }
        }
        // Post-replay the receiver ACKs everything it has.
        sender.ack(receiver.delivered());
        (delivered, sender.acked(), receiver.delivered())
    }

    #[test]
    fn any_prefix_cut_plus_replay_is_byte_identical() {
        let mut rng = StdRng::seed_from_u64(0x9e3779b9);
        for _case in 0..200 {
            let n = rng.gen_range(1..25u64);
            let frames: Vec<Vec<u8>> = (0..n)
                .map(|i| {
                    let len = rng.gen_range(0..48usize);
                    let mut b = vec![i as u8];
                    b.extend((0..len).map(|_| rng.gen::<u8>()));
                    b
                })
                .collect();
            let delivered_prefix = rng.gen_range(0..n + 1);
            let acked_prefix = rng.gen_range(0..delivered_prefix + 1);

            let (got, sender_acked, recv_watermark) =
                run_disconnect_scenario(n, delivered_prefix, acked_prefix, &frames);

            assert_eq!(
                got, frames,
                "cut at {delivered_prefix}/{n} (acked {acked_prefix}): replay must \
                 reconstruct the exact byte sequence"
            );
            assert_eq!(recv_watermark, n, "receiver watermark ends at n");
            assert_eq!(sender_acked, n, "sender prune watermark ends at n");
        }
    }

    #[test]
    fn duplicates_from_overlapping_replays_are_dropped() {
        // A double bounce: the same suffix replayed twice (the second
        // connection died before any new ACK) must deliver once.
        let mut sender = ReplayQueue::new();
        let mut receiver = DedupWatermark::new();
        let mut delivered = Vec::new();
        for i in 0..6u64 {
            let seq = sender.assign_seq();
            sender.push(seq, vec![i as u8]);
        }
        // Two bounces back to back: the second connection died before
        // any ACK progress was recorded, so the full suffix replays
        // twice — the dedup watermark must absorb the repeat.
        for _bounce in 0..2 {
            let replay: Vec<(u64, Vec<u8>)> = sender
                .unacked()
                .enumerate()
                .map(|(i, b)| (1 + i as u64, b.to_vec()))
                .collect();
            for (seq, bytes) in replay {
                if receiver.admit(seq) {
                    delivered.push(bytes);
                }
            }
        }
        assert_eq!(delivered, (0..6u8).map(|i| vec![i]).collect::<Vec<_>>());
        assert_eq!(receiver.delivered(), 6);
    }

    #[test]
    fn stale_acks_never_regress_the_queue() {
        let mut sender = ReplayQueue::new();
        for i in 0..4u64 {
            let seq = sender.assign_seq();
            sender.push(seq, vec![i as u8]);
        }
        sender.ack(3);
        assert_eq!(sender.len(), 1);
        sender.ack(1); // stale, reordered ACK
        assert_eq!(sender.acked(), 3, "watermark is monotone");
        assert_eq!(sender.len(), 1, "no resurrection of pruned frames");
    }
}
