//! Length-prefixed wire framing for the process backend.
//!
//! Every frame on a socket is `[u32 len][u8 kind][u32 src][u64
//! link_seq][body]`, all little-endian; `len` covers everything after
//! the length field itself. `link_seq` numbers DATA frames per
//! connection direction (the replay/ack watermark unit); it is zero for
//! control frames. The DATA body is the byte serialization of
//! [`Msg`] — tag, transport seq, generation, FNV checksum, payload —
//! exactly the header the thread backend passes by value, so the
//! receive state machine in [`crate::RankCtx`] is backend-agnostic.
//! The full grammar is documented in DESIGN.md §8.

use std::io::{self, Read, Write};

use crate::msg::{Msg, Payload};

/// Frame kinds (the `kind` byte).
pub(crate) mod kind {
    /// Connection wire-up / reconnect: body is the sender's delivered
    /// watermark for this link (how many DATA frames from the peer it
    /// has already handed to the upper layer).
    pub const HELLO: u8 = 1;
    /// One [`crate::msg::Msg`]; `link_seq` numbers these per direction.
    pub const DATA: u8 = 2;
    /// Cumulative receive acknowledgement: body is the receiver's
    /// delivered watermark; the sender prunes its replay queue.
    pub const ACK: u8 = 3;
    /// Liveness beacon (empty body).
    pub const HEARTBEAT: u8 = 4;
    /// Graceful shutdown: no more frames follow from the sender.
    pub const BYE: u8 = 5;
    /// Barrier entry announcement to rank 0: body is the round number.
    pub const BARRIER_ENTER: u8 = 6;
    /// Barrier release from rank 0: body is the round number.
    pub const BARRIER_RELEASE: u8 = 7;
    /// Rendezvous registration: body is the sender's mesh socket path.
    pub const REGISTER: u8 = 8;
    /// Rendezvous reply: body is every rank's mesh socket path.
    pub const ADDRBOOK: u8 = 9;
    /// Clock-offset probe from rank 0 during rendezvous (empty body).
    pub const CLOCK_PING: u8 = 10;
    /// Clock-offset reply: body is the replying rank's monotonic clock
    /// reading (seconds since its transport anchor) as `f64::to_bits`.
    pub const CLOCK_PONG: u8 = 11;
}

/// Hard cap on a single frame (1 GiB) so a corrupted length prefix
/// cannot trigger an absurd allocation.
const MAX_FRAME: u32 = 1 << 30;

/// Encoded bytes a frame occupies beyond its body: the u32 length
/// prefix plus the kind/src/link_seq header (metrics accounting).
pub(crate) const FRAME_OVERHEAD: u64 = 4 + 1 + 4 + 8;

/// One decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Frame {
    pub kind: u8,
    pub src: u32,
    pub link_seq: u64,
    pub body: Vec<u8>,
}

impl Frame {
    pub(crate) fn control(kind: u8, src: usize) -> Self {
        Frame {
            kind,
            src: src as u32,
            link_seq: 0,
            body: Vec::new(),
        }
    }

    pub(crate) fn with_u64(kind: u8, src: usize, value: u64) -> Self {
        Frame {
            kind,
            src: src as u32,
            link_seq: 0,
            body: value.to_le_bytes().to_vec(),
        }
    }

    /// Decodes a `u64` body (ACK/HELLO watermarks, barrier rounds).
    pub(crate) fn body_u64(&self) -> io::Result<u64> {
        let bytes: [u8; 8] = self
            .body
            .as_slice()
            .try_into()
            .map_err(|_| bad_data("u64 frame body has wrong length"))?;
        Ok(u64::from_le_bytes(bytes))
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Serializes one frame onto `w` (single buffered write + flush).
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut buf = encode_frame(frame);
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Encodes a frame with a placeholder length prefix (filled by the
/// caller); exposed separately so senders can pre-encode DATA frames
/// once and replay the identical bytes after a reconnect.
pub(crate) fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 13 + frame.body.len());
    buf.extend_from_slice(&0u32.to_le_bytes()); // length placeholder
    buf.push(frame.kind);
    buf.extend_from_slice(&frame.src.to_le_bytes());
    buf.extend_from_slice(&frame.link_seq.to_le_bytes());
    buf.extend_from_slice(&frame.body);
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
    buf
}

/// Reads one frame off `r`. `Ok(None)` is a clean EOF at a frame
/// boundary; errors inside a frame are real I/O failures.
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if !(13..=MAX_FRAME).contains(&len) {
        return Err(bad_data("frame length out of range"));
    }
    let mut rest = vec![0u8; len as usize];
    r.read_exact(&mut rest)?;
    let kind = rest[0];
    let src = u32::from_le_bytes(rest[1..5].try_into().unwrap());
    let link_seq = u64::from_le_bytes(rest[5..13].try_into().unwrap());
    Ok(Some(Frame {
        kind,
        src,
        link_seq,
        body: rest.split_off(13),
    }))
}

// ---- Msg body codec -----------------------------------------------------

/// Payload variant bytes (match [`Payload::checksum`]'s tag bytes).
const PV_EMPTY: u8 = 0;
const PV_F64: u8 = 1;
const PV_U32: u8 = 2;
const PV_ROWS: u8 = 3;

/// Serializes a [`Msg`] into a DATA frame body.
pub(crate) fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut b = Vec::with_capacity(22 + msg.payload.bytes() as usize + 16);
    b.push(msg.tag);
    b.extend_from_slice(&msg.seq.to_le_bytes());
    b.extend_from_slice(&msg.gen.to_le_bytes());
    b.extend_from_slice(&msg.checksum.to_le_bytes());
    match &msg.payload {
        Payload::Empty => b.push(PV_EMPTY),
        Payload::F64(v) => {
            b.push(PV_F64);
            b.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for x in v {
                b.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Payload::U32(v) => {
            b.push(PV_U32);
            b.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for x in v {
                b.extend_from_slice(&x.to_le_bytes());
            }
        }
        Payload::Rows { idx, data } => {
            b.push(PV_ROWS);
            b.extend_from_slice(&(idx.len() as u64).to_le_bytes());
            b.extend_from_slice(&(data.len() as u64).to_le_bytes());
            for x in idx {
                b.extend_from_slice(&x.to_le_bytes());
            }
            for x in data {
                b.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }
    b
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("truncated DATA body"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Element count with a sanity bound derived from the bytes left.
    fn count(&mut self, elem_bytes: usize) -> io::Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining / elem_bytes as u64 + 1 {
            return Err(bad_data("element count exceeds frame size"));
        }
        Ok(n as usize)
    }
}

/// Deserializes a DATA frame body back into a [`Msg`].
pub(crate) fn decode_msg(body: &[u8]) -> io::Result<Msg> {
    let mut c = Cursor { buf: body, pos: 0 };
    let tag = c.u8()?;
    let seq = c.u64()?;
    let gen = c.u32()?;
    let checksum = c.u64()?;
    let payload = match c.u8()? {
        PV_EMPTY => Payload::Empty,
        PV_F64 => {
            let n = c.count(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(c.u64()?));
            }
            Payload::F64(v)
        }
        PV_U32 => {
            let n = c.count(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.u32()?);
            }
            Payload::U32(v)
        }
        PV_ROWS => {
            let ni = c.count(4)?;
            let nd = c.count(8)?;
            let mut idx = Vec::with_capacity(ni);
            for _ in 0..ni {
                idx.push(c.u32()?);
            }
            let mut data = Vec::with_capacity(nd);
            for _ in 0..nd {
                data.push(f64::from_bits(c.u64()?));
            }
            Payload::Rows { idx, data }
        }
        other => return Err(bad_data(&format!("unknown payload variant {other}"))),
    };
    if c.pos != body.len() {
        return Err(bad_data("trailing bytes after DATA body"));
    }
    Ok(Msg {
        tag,
        seq,
        gen,
        checksum,
        payload,
    })
}

/// Encodes a socket path for REGISTER bodies.
pub(crate) fn encode_path(path: &str) -> Vec<u8> {
    let mut b = Vec::with_capacity(2 + path.len());
    b.extend_from_slice(&(path.len() as u16).to_le_bytes());
    b.extend_from_slice(path.as_bytes());
    b
}

/// Encodes the full address book for ADDRBOOK bodies.
pub(crate) fn encode_addrbook(paths: &[String]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&(paths.len() as u32).to_le_bytes());
    for p in paths {
        b.extend_from_slice(&encode_path(p));
    }
    b
}

fn decode_path(c: &mut Cursor<'_>) -> io::Result<String> {
    let n = u16::from_le_bytes(c.take(2)?.try_into().unwrap()) as usize;
    String::from_utf8(c.take(n)?.to_vec()).map_err(|_| bad_data("socket path is not UTF-8"))
}

/// Decodes a REGISTER body.
pub(crate) fn decode_register(body: &[u8]) -> io::Result<String> {
    let mut c = Cursor { buf: body, pos: 0 };
    decode_path(&mut c)
}

/// Decodes an ADDRBOOK body.
pub(crate) fn decode_addrbook(body: &[u8]) -> io::Result<Vec<String>> {
    let mut c = Cursor { buf: body, pos: 0 };
    let n = c.u32()? as usize;
    (0..n).map(|_| decode_path(&mut c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_frame(f: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, f).unwrap();
        let mut r = buf.as_slice();
        let out = read_frame(&mut r).unwrap().expect("one frame");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
        out
    }

    #[test]
    fn frame_roundtrips_all_kinds() {
        for f in [
            Frame::control(kind::HEARTBEAT, 3),
            Frame::control(kind::BYE, 0),
            Frame::with_u64(kind::ACK, 1, 42),
            Frame::with_u64(kind::BARRIER_ENTER, 2, 7),
            Frame {
                kind: kind::DATA,
                src: 5,
                link_seq: 99,
                body: vec![1, 2, 3],
            },
        ] {
            assert_eq!(roundtrip_frame(&f), f);
        }
        assert_eq!(Frame::with_u64(kind::ACK, 1, 42).body_u64().unwrap(), 42);
    }

    #[test]
    fn msg_roundtrips_every_payload_variant() {
        for payload in [
            Payload::Empty,
            Payload::F64(vec![1.5, -2.25, f64::MIN_POSITIVE, -0.0]),
            Payload::U32(vec![0, 7, u32::MAX]),
            Payload::Rows {
                idx: vec![3, 9],
                data: vec![0.125, 4.0e300, -1.0],
            },
        ] {
            let msg = Msg {
                tag: 3,
                seq: 17,
                gen: 2,
                checksum: payload.checksum(),
                payload,
            };
            let back = decode_msg(&encode_msg(&msg)).unwrap();
            assert_eq!(back.tag, msg.tag);
            assert_eq!(back.seq, msg.seq);
            assert_eq!(back.gen, msg.gen);
            assert_eq!(back.checksum, msg.checksum);
            assert_eq!(back.payload, msg.payload);
            // Bit-exactness end to end: the checksum still verifies.
            assert_eq!(back.payload.checksum(), back.checksum);
        }
    }

    #[test]
    fn truncated_data_body_is_an_error_not_a_panic() {
        let msg = Msg {
            tag: 1,
            seq: 0,
            gen: 0,
            checksum: 0,
            payload: Payload::F64(vec![1.0, 2.0]),
        };
        let full = encode_msg(&msg);
        for cut in 0..full.len() {
            assert!(decode_msg(&full[..cut]).is_err(), "cut at {cut}");
        }
        // A length-prefix lying about a huge count must be rejected.
        let mut lying = encode_msg(&msg);
        let base = 22; // tag + seq + gen + checksum + variant
        lying[base..base + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_msg(&lying).is_err());
    }

    #[test]
    fn addrbook_roundtrips() {
        let paths = vec!["/tmp/x/rank0.sock".to_string(), "/tmp/x/rank1.sock".into()];
        let book = decode_addrbook(&encode_addrbook(&paths)).unwrap();
        assert_eq!(book, paths);
        let reg = decode_register(&encode_path("/tmp/x/rank7.sock")).unwrap();
        assert_eq!(reg, "/tmp/x/rank7.sock");
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }
}
