//! Socket-family abstraction for the process backend: every connection
//! is either a Unix-domain socket (single-machine default) or a TCP
//! socket (multi-node mode, selected by a [`HostFile`]). The frame
//! codec ([`super::wire`]) and the reliability machinery in
//! [`super::proc`] are written against [`Stream`]/[`Listener`] and
//! never see which family is underneath.
//!
//! Also home to two small pieces the whole transport shares:
//!
//! * [`lock_or_recover`] — poison-tolerant mutex acquisition. A rank
//!   process runs many sibling threads (readers, acceptor, monitor);
//!   if one panics mid-critical-section the rest must degrade into the
//!   structured error path (peer death, watchdog timeout) instead of
//!   cascading poisoned-mutex panics.
//! * [`Backoff`] — capped exponential backoff with deterministic
//!   jitter (a pure function of the seed), used by every
//!   connection-establishment retry loop: rendezvous dial, mesh dial,
//!   and dialer-side reconnect.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Acquires `m`, recovering the guard if a sibling thread panicked
/// while holding it. The protected state is counters / connection
/// bookkeeping whose invariants hold between individual field writes,
/// so continuing with the inner value is safe — and the panicking
/// thread's failure still surfaces through the structured path (its
/// own unwind, peer-death records, or the watchdog).
pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---- splitmix64 -----------------------------------------------------------

/// One step of splitmix64 — the deterministic bit mixer behind backoff
/// jitter and the chaos interposer's per-link randomness. Pure function
/// of its input, so identical seeds replay identical schedules.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---- Backoff --------------------------------------------------------------

/// Capped exponential backoff with ±50% deterministic jitter. Each call
/// to [`Backoff::next`] returns the current jittered delay and doubles
/// the base (up to the cap). Jitter is a pure function of
/// `(seed, attempt)` so retry schedules replay exactly under a fixed
/// seed — the property the chaos soak tests lean on.
pub(crate) struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    seed: u64,
    attempt: u64,
}

impl Backoff {
    pub(crate) fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            seed,
            attempt: 0,
        }
    }

    /// The next delay: `min(base · 2^attempt, cap)` scaled by a
    /// deterministic factor in `[0.5, 1.5)`.
    pub(crate) fn next(&mut self) -> Duration {
        let exp = self.attempt.min(20);
        let raw = self.base_ms.saturating_mul(1u64 << exp).min(self.cap_ms);
        let r = splitmix64(self.seed.wrapping_add(self.attempt));
        self.attempt += 1;
        // Map the top 10 bits onto [0.5, 1.5).
        let frac = 0.5 + (r >> 54) as f64 / 1024.0;
        Duration::from_micros(((raw * 1000) as f64 * frac) as u64)
    }
}

// ---- HostFile -------------------------------------------------------------

/// Parsed hostfile: one line per rank, `host[:port]`, `#` comments and
/// blank lines ignored. Line order assigns ranks. Rank 0's line **must**
/// carry a port — that is the rendezvous endpoint every other rank
/// dials. Other lines may pin their mesh-listener port; without one the
/// kernel assigns an ephemeral port, which the rendezvous ADDRBOOK then
/// publishes (so only rank 0's port needs coordinating up front).
///
/// ```text
/// # hosts.txt — 4 ranks, two machines
/// 10.0.0.1:7700   # rank 0 (rendezvous port 7700)
/// 10.0.0.1
/// 10.0.0.2:7710   # pinned mesh port (e.g. for a firewall hole)
/// 10.0.0.2
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFile {
    entries: Vec<(String, Option<u16>)>,
}

impl HostFile {
    /// Parses hostfile text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (host, port) = match line.rsplit_once(':') {
                Some((h, p)) => {
                    let port = p
                        .parse::<u16>()
                        .map_err(|_| format!("hostfile line {}: bad port {p:?}", lineno + 1))?;
                    (h, Some(port))
                }
                None => (line, None),
            };
            if host.is_empty() {
                return Err(format!("hostfile line {}: empty host", lineno + 1));
            }
            entries.push((host.to_string(), port));
        }
        if entries.is_empty() {
            return Err("hostfile has no host lines".to_string());
        }
        if entries[0].1.is_none() {
            return Err(
                "hostfile line for rank 0 must carry a port (the rendezvous endpoint)".to_string(),
            );
        }
        Ok(HostFile { entries })
    }

    /// Loads and parses a hostfile from disk.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Number of ranks (one per host line).
    pub fn p(&self) -> usize {
        self.entries.len()
    }

    /// The host for `rank`.
    pub fn host(&self, rank: usize) -> &str {
        &self.entries[rank].0
    }

    /// The pinned port for `rank` (0 = let the kernel choose).
    pub fn port(&self, rank: usize) -> u16 {
        self.entries[rank].1.unwrap_or(0)
    }

    /// `host:port` of the rank-0 rendezvous listener.
    pub fn rendezvous_addr(&self) -> String {
        format!("{}:{}", self.entries[0].0, self.entries[0].1.unwrap_or(0))
    }

    /// True when every host is a loopback name — the single-machine
    /// simulation CI runs: all ranks spawn locally and span the mesh
    /// over `127.0.0.1` ports.
    pub fn all_loopback(&self) -> bool {
        self.entries
            .iter()
            .all(|(h, _)| h == "localhost" || h == "::1" || h.starts_with("127."))
    }
}

impl fmt::Display for HostFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (host, port) in &self.entries {
            match port {
                Some(p) => writeln!(f, "{host}:{p}")?,
                None => writeln!(f, "{host}")?,
            }
        }
        Ok(())
    }
}

// ---- Stream / Listener ----------------------------------------------------

/// One connected socket of either family. The reliability layer holds
/// these behind the same `Option<Stream>` slot it used to hold a
/// `UnixStream` in, and the frame codec reads/writes them through the
/// blanket [`Read`]/[`Write`] impls below.
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Dials `addr`: a filesystem path (Unix) or `host:port` (TCP).
    /// Address-book strings are self-describing — socket paths always
    /// contain `/`, TCP addresses never do.
    pub(crate) fn connect(addr: &str) -> io::Result<Stream> {
        if addr.contains('/') {
            Ok(Stream::Unix(UnixStream::connect(addr)?))
        } else {
            let s = TcpStream::connect(addr)?;
            // Frames are latency-sensitive (heartbeats, ACKs): never
            // let Nagle hold a flushed frame back.
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    pub(crate) fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(how),
            Stream::Tcp(s) => s.shutdown(how),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nb),
            Stream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Sockets support reads/writes through shared references (the OS
/// serializes them); mirror the std `impl Read for &UnixStream` pattern
/// so held rendezvous streams can be polled without a mutable borrow.
impl Read for &Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match *self {
            Stream::Unix(s) => (&mut &*s).read(buf),
            Stream::Tcp(s) => (&mut &*s).read(buf),
        }
    }
}

impl Write for &Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match *self {
            Stream::Unix(s) => (&mut &*s).write(buf),
            Stream::Tcp(s) => (&mut &*s).write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match *self {
            Stream::Unix(s) => (&mut &*s).flush(),
            Stream::Tcp(s) => (&mut &*s).flush(),
        }
    }
}

/// A bound listening socket of either family.
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix listener at `path` (removing a stale socket file).
    pub(crate) fn bind_unix(path: &str) -> io::Result<Listener> {
        let _ = std::fs::remove_file(path);
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// Binds a TCP listener on `host:port` (`port` 0 = ephemeral).
    ///
    /// Bound with `SO_REUSEADDR` where possible: a restarted generation
    /// must re-bind its pinned rendezvous/mesh port *immediately*, even
    /// while connections from the killed generation linger in
    /// TIME_WAIT — std's `TcpListener::bind` never sets the option, and
    /// a checkpoint-restart cannot wait out the quarantine.
    pub(crate) fn bind_tcp(host: &str, port: u16) -> io::Result<Listener> {
        use std::net::ToSocketAddrs;
        let mut last_err = None;
        for addr in (host, port).to_socket_addrs()? {
            match reuseaddr_bind(&addr).unwrap_or_else(|| TcpListener::bind(addr)) {
                Ok(l) => return Ok(Listener::Tcp(l)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{host}:{port} resolved to no addresses"),
            )
        }))
    }

    /// The address peers should dial: the bind path (Unix) or
    /// `host:port` with the kernel-assigned port resolved (TCP).
    /// `advertise_host` replaces a wildcard/local bind host with the
    /// name peers reach us by.
    pub(crate) fn advertised_addr(&self, advertise_host: &str) -> io::Result<String> {
        match self {
            Listener::Unix(_) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unix listeners advertise their bind path",
            )),
            Listener::Tcp(l) => {
                let port = l.local_addr()?.port();
                Ok(format!("{advertise_host}:{port}"))
            }
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }
}

/// `SO_REUSEADDR` bind, raw-syscall edition: stable std exposes no
/// socket builder, so the option must be set between `socket()` and
/// `bind()` by hand. Linux + IPv4 only — `None` means "no special path
/// here, fall back to `TcpListener::bind`".
#[cfg(target_os = "linux")]
fn reuseaddr_bind(addr: &std::net::SocketAddr) -> Option<io::Result<TcpListener>> {
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    /// `struct sockaddr_in` (port and address in network byte order).
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o200_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    let std::net::SocketAddr::V4(v4) = addr else {
        return None;
    };
    let sa = SockaddrIn {
        family: AF_INET as u16,
        port_be: v4.port().to_be(),
        addr_be: u32::from(*v4.ip()).to_be(),
        zero: [0; 8],
    };
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Some(Err(io::Error::last_os_error()));
        }
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0
            || bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0
            || listen(fd, 128) < 0
        {
            let e = io::Error::last_os_error();
            close(fd);
            return Some(Err(e));
        }
        Some(Ok(TcpListener::from_raw_fd(fd)))
    }
}

#[cfg(not(target_os = "linux"))]
fn reuseaddr_bind(_addr: &std::net::SocketAddr) -> Option<io::Result<TcpListener>> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostfile_parses_ports_comments_and_blanks() {
        let hf = HostFile::parse(
            "# cluster\n10.0.0.1:7700  # rank 0\n10.0.0.1\n\n10.0.0.2:7710\n10.0.0.2\n",
        )
        .unwrap();
        assert_eq!(hf.p(), 4);
        assert_eq!(hf.rendezvous_addr(), "10.0.0.1:7700");
        assert_eq!(hf.host(2), "10.0.0.2");
        assert_eq!(hf.port(1), 0);
        assert_eq!(hf.port(2), 7710);
        assert!(!hf.all_loopback());
    }

    #[test]
    fn tcp_rebind_survives_time_wait_from_a_dead_generation() {
        let l = Listener::bind_tcp("127.0.0.1", 0).expect("first bind");
        let addr = l.advertised_addr("127.0.0.1").expect("addr");
        let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();
        let client = Stream::connect(&addr).expect("dial");
        let server = l.accept().expect("accept");
        // The accepted socket shares the pinned local port. Closing it
        // from the server side first parks it in TIME_WAIT — exactly
        // the state a killed generation leaves behind — which makes a
        // plain `TcpListener::bind` of the same port EADDRINUSE.
        let _ = server.shutdown(Shutdown::Both);
        drop(server);
        drop(l);
        drop(client);
        let again = Listener::bind_tcp("127.0.0.1", port);
        assert!(
            again.is_ok(),
            "rebinding the pinned port must not fail: {:?}",
            again.err()
        );
    }

    #[test]
    fn hostfile_loopback_detection() {
        let hf = HostFile::parse("127.0.0.1:7700\nlocalhost\n127.0.0.2\n").unwrap();
        assert!(hf.all_loopback());
    }

    #[test]
    fn hostfile_rejects_bad_input() {
        assert!(HostFile::parse("").is_err(), "empty");
        assert!(HostFile::parse("# only comments\n").is_err(), "no hosts");
        assert!(
            HostFile::parse("10.0.0.1\n10.0.0.2\n").is_err(),
            "rank 0 must have a port"
        );
        assert!(HostFile::parse("10.0.0.1:notaport\n").is_err(), "bad port");
        assert!(HostFile::parse(":7700\n").is_err(), "empty host");
    }

    #[test]
    fn hostfile_roundtrips_through_display() {
        let text = "127.0.0.1:7700\n127.0.0.1\n127.0.0.1:7710\n";
        let hf = HostFile::parse(text).unwrap();
        assert_eq!(hf.to_string(), text);
        assert_eq!(HostFile::parse(&hf.to_string()).unwrap(), hf);
    }

    #[test]
    fn backoff_grows_caps_and_replays_deterministically() {
        let delays: Vec<Duration> = {
            let mut b = Backoff::new(10, 500, 42);
            (0..12).map(|_| b.next()).collect()
        };
        let replay: Vec<Duration> = {
            let mut b = Backoff::new(10, 500, 42);
            (0..12).map(|_| b.next()).collect()
        };
        assert_eq!(delays, replay, "same seed, same schedule");
        for d in &delays {
            assert!(*d >= Duration::from_millis(5), "floor = base/2");
            assert!(*d < Duration::from_millis(750), "cap × 1.5");
        }
        // The tail must sit at the cap band, not keep growing.
        assert!(delays[11] >= Duration::from_millis(250));
        let other: Vec<Duration> = {
            let mut b = Backoff::new(10, 500, 43);
            (0..12).map(|_| b.next()).collect()
        };
        assert_ne!(delays, other, "different seed, different jitter");
    }

    #[test]
    fn tcp_stream_roundtrips_bytes() {
        let listener = Listener::bind_tcp("127.0.0.1", 0).unwrap();
        let addr = listener.advertised_addr("127.0.0.1").unwrap();
        let t = std::thread::spawn(move || {
            let mut s = Stream::connect(&addr).unwrap();
            s.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"pong");
        });
        let mut s = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        s.write_all(b"pong").unwrap();
        t.join().unwrap();
    }
}
