//! Simulated distributed runtime for communication-volume research.
//!
//! The paper ran on 256 GPUs with NCCL; this crate provides the
//! drop-in substrate for running the *same algorithms* on one machine:
//!
//! * [`world::ThreadWorld`] — spawns `P` ranks as OS threads connected by
//!   a full mesh of channels; every rank runs the identical SPMD program a
//!   GPU process would run.
//! * [`ctx::RankCtx`] — the per-rank handle: point-to-point sends/recvs
//!   and the collectives the paper's algorithms use (broadcast,
//!   all-to-allv, group all-reduce), each recording exact per-phase
//!   communication volumes.
//! * [`cost::CostModel`] — an α–β(–γ) machine model calibrated to
//!   Perlmutter-class interconnects that converts recorded volumes and
//!   FLOP counts into modeled epoch times. Executions measure *what* is
//!   communicated; the model prices it like the paper's testbed would.
//! * [`stats`] — per-rank, per-phase counters with the aggregation the
//!   figures need (max-over-ranks epoch time, per-phase breakdown,
//!   communication imbalance).

pub mod cost;
pub mod ctx;
pub mod msg;
pub mod stats;
pub mod world;

pub use cost::CostModel;
pub use ctx::RankCtx;
pub use stats::{Phase, RankStats, WorldStats};
pub use world::ThreadWorld;
