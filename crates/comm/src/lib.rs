//! Simulated distributed runtime for communication-volume research.
//!
//! The paper ran on 256 GPUs with NCCL; this crate provides the
//! drop-in substrate for running the *same algorithms* on one machine:
//!
//! * [`world::ThreadWorld`] — spawns `P` ranks as OS threads connected by
//!   a full mesh of channels; every rank runs the identical SPMD program a
//!   GPU process would run.
//! * [`ctx::RankCtx`] — the per-rank handle: point-to-point sends/recvs
//!   and the collectives the paper's algorithms use (broadcast,
//!   all-to-allv, group all-reduce), each recording exact per-phase
//!   communication volumes.
//! * [`cost::CostModel`] — an α–β(–γ) machine model calibrated to
//!   Perlmutter-class interconnects that converts recorded volumes and
//!   FLOP counts into modeled epoch times. Executions measure *what* is
//!   communicated; the model prices it like the paper's testbed would.
//! * [`stats`] — per-rank, per-phase counters with the aggregation the
//!   figures need (max-over-ranks epoch time, per-phase breakdown,
//!   communication imbalance), plus injected-fault/retry counters.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]): delayed, dropped, or corrupted messages, slowed
//!   compute, and rank crashes at a chosen epoch, all derived from a
//!   seed so faulty runs replay bit-identically.
//! * [`error`] — structured failure reporting: [`ThreadWorld::try_run`]
//!   returns a [`WorldError`] naming the panicking rank, the injected
//!   crash, or a [`DeadlockReport`] from the built-in watchdog instead
//!   of hanging or aborting opaquely.
//! * Tracing — [`ThreadWorld::with_tracing`] arms a per-rank
//!   [`gnn_trace::RankTracer`]; every op above then also emits a
//!   structured event on the rank's modeled-time axis, and
//!   [`ThreadWorld::try_run_traced`] returns the collected
//!   [`gnn_trace::WorldTrace`] alongside the stats (re-exported here as
//!   [`trace`]).

pub mod cost;
pub mod ctx;
pub mod error;
pub mod fault;
pub mod msg;
pub mod stats;
pub mod world;

pub(crate) mod transport;
pub(crate) mod watchdog;

/// The observability crate, re-exported for downstream convenience.
pub use gnn_trace as trace;

pub use cost::CostModel;
pub use ctx::{OverlapConfig, PendingOp, RankCtx};
pub use error::{BlockedRank, DeadlockReport, EpochAbortPanic, WaitKind, WorldError};
pub use fault::{Fault, FaultInjector, FaultPlan, SendFate};
pub use gnn_trace::{SpanKind, WorldTrace};
pub use stats::{FaultCounters, Phase, ProcCounters, RankStats, WorldStats};
#[cfg(unix)]
pub use transport::chaos::NetChaosPlan;
#[cfg(unix)]
pub use transport::net::HostFile;
#[cfg(unix)]
pub use transport::proc::{write_proc_generation, ProcError, ProcWorld};
pub use world::ThreadWorld;
