//! Structured failure reporting for SPMD runs.
//!
//! A [`crate::ThreadWorld::try_run`] either returns every rank's result
//! or a [`WorldError`] describing *why* the world died: which rank
//! panicked (and with what message), which injected fault crashed it, or
//! — for protocol bugs that would previously hang forever — a
//! [`DeadlockReport`] built by the watchdog from the wait-for state of
//! every blocked rank.

use std::fmt;
use std::time::Duration;

use crate::ctx::tag_name;

/// What a blocked rank was waiting on when the watchdog fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// Blocked in a point-to-point or collective receive.
    Recv,
    /// Blocked in [`crate::RankCtx::barrier`].
    Barrier,
}

/// One blocked rank in a [`DeadlockReport`].
#[derive(Clone, Debug)]
pub struct BlockedRank {
    /// The blocked rank.
    pub rank: usize,
    /// How it is blocked.
    pub kind: WaitKind,
    /// The peer it waits for (`None` for barriers).
    pub waiting_on: Option<usize>,
    /// The message tag it expects (see [`crate::ctx`] tag constants).
    pub tag: Option<u8>,
    /// The trainer epoch the rank was in, if it reported one.
    pub epoch: Option<usize>,
    /// How long it had been waiting when the report was built.
    pub waited: Duration,
}

impl fmt::Display for BlockedRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            WaitKind::Barrier => write!(f, "rank {} blocked in barrier", self.rank)?,
            WaitKind::Recv => {
                write!(f, "rank {} blocked in recv", self.rank)?;
                if let Some(peer) = self.waiting_on {
                    write!(f, " from rank {peer}")?;
                }
                if let Some(tag) = self.tag {
                    write!(f, " (expecting {})", tag_name(tag))?;
                }
            }
        }
        if let Some(e) = self.epoch {
            write!(f, " [epoch {e}]")?;
        }
        write!(f, " for {:.0} ms", self.waited.as_secs_f64() * 1e3)
    }
}

/// The wait-for snapshot the watchdog converts a hang into.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// The rank whose timeout expired first and built the report.
    pub detected_by: usize,
    /// The configured watchdog timeout.
    pub timeout: Duration,
    /// Every rank that was blocked at detection time, in rank order.
    pub blocked: Vec<BlockedRank>,
}

impl DeadlockReport {
    /// Ids of all blocked ranks, in rank order.
    pub fn blocked_ranks(&self) -> Vec<usize> {
        self.blocked.iter().map(|b| b.rank).collect()
    }

    /// Whether `rank` appears in the blocked set.
    pub fn names(&self, rank: usize) -> bool {
        self.blocked.iter().any(|b| b.rank == rank)
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock detected by rank {} after {:.0} ms: ",
            self.detected_by,
            self.timeout.as_secs_f64() * 1e3
        )?;
        if self.blocked.is_empty() {
            return write!(f, "no ranks registered as blocked");
        }
        for (i, b) in self.blocked.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Why a world run failed.
#[derive(Clone, Debug)]
pub enum WorldError {
    /// A rank panicked; `message` is the downcast panic payload.
    Panicked {
        /// The panicking rank.
        rank: usize,
        /// The panic message (or a placeholder for non-string payloads).
        message: String,
    },
    /// A [`crate::fault::Fault::CrashAt`] fault killed a rank.
    InjectedCrash {
        /// The crashed rank.
        rank: usize,
        /// The epoch the rank was in when it crashed, if tracked.
        epoch: Option<usize>,
        /// The per-epoch operation index at which the crash fired.
        op: u64,
    },
    /// The watchdog converted a hang into a structured report.
    Deadlock(DeadlockReport),
    /// Degraded-mode failover ran out of replicas: every rank holding
    /// block row `block_row` died, so no survivor can cover for the dead
    /// and the world must fall back to a checkpoint restart.
    ReplicaColumnLost {
        /// The block row whose entire replica group died.
        block_row: usize,
    },
}

impl WorldError {
    /// Whether a driver can reasonably retry the run (e.g. restore from a
    /// checkpoint and resume). Injected crashes model transient node
    /// failures and are retryable — as is losing a whole replica group,
    /// which simply exhausts the in-place recovery budget. Deadlocks and
    /// real panics are deterministic program bugs.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            WorldError::InjectedCrash { .. } | WorldError::ReplicaColumnLost { .. }
        )
    }
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::Panicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            WorldError::InjectedCrash { rank, epoch, op } => {
                write!(f, "rank {rank} crashed (injected fault)")?;
                if let Some(e) = epoch {
                    write!(f, " at epoch {e}")?;
                }
                write!(f, ", op {op}")
            }
            WorldError::Deadlock(report) => write!(f, "{report}"),
            WorldError::ReplicaColumnLost { block_row } => write!(
                f,
                "replica group for block row {block_row} fully lost; failover impossible"
            ),
        }
    }
}

impl std::error::Error for WorldError {}

/// Panic payload carrying a deadlock report out of a rank thread.
pub(crate) struct DeadlockPanic(pub DeadlockReport);

/// Panic payload for an injected crash.
pub(crate) struct CrashPanic {
    pub rank: usize,
    pub epoch: Option<usize>,
    pub op: u64,
}

/// Panic payload unwinding an epoch attempt that must be retried under
/// degraded mode: a peer died mid-epoch, so every survivor abandons the
/// attempt, re-synchronizes at the commit barrier, and re-runs the epoch
/// with the shrunken grid. Public so trainers can `catch_unwind` it.
#[derive(Debug)]
pub struct EpochAbortPanic {
    /// The generation that was aborted.
    pub generation: u32,
}

/// Panic payload for an unsurvivable loss: a whole replica group is
/// dead, failover cannot cover it, the world tears down for a
/// checkpoint restart.
pub(crate) struct ColumnLostPanic {
    pub block_row: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DeadlockReport {
        DeadlockReport {
            detected_by: 0,
            timeout: Duration::from_millis(250),
            blocked: vec![
                BlockedRank {
                    rank: 0,
                    kind: WaitKind::Recv,
                    waiting_on: Some(1),
                    tag: Some(crate::ctx::tag::P2P),
                    epoch: Some(3),
                    waited: Duration::from_millis(250),
                },
                BlockedRank {
                    rank: 1,
                    kind: WaitKind::Barrier,
                    waiting_on: None,
                    tag: None,
                    epoch: None,
                    waited: Duration::from_millis(100),
                },
            ],
        }
    }

    #[test]
    fn report_names_blocked_ranks() {
        let r = report();
        assert_eq!(r.blocked_ranks(), vec![0, 1]);
        assert!(r.names(1));
        assert!(!r.names(2));
    }

    #[test]
    fn display_is_informative() {
        let msg = WorldError::Deadlock(report()).to_string();
        assert!(msg.contains("deadlock detected by rank 0"), "{msg}");
        assert!(msg.contains("rank 0 blocked in recv from rank 1"), "{msg}");
        assert!(msg.contains("epoch 3"), "{msg}");
        assert!(msg.contains("rank 1 blocked in barrier"), "{msg}");

        let msg = WorldError::Panicked {
            rank: 2,
            message: "boom".into(),
        }
        .to_string();
        assert!(msg.contains("rank 2 panicked: boom"), "{msg}");

        let msg = WorldError::InjectedCrash {
            rank: 1,
            epoch: Some(4),
            op: 7,
        }
        .to_string();
        assert!(msg.contains("rank 1 crashed"), "{msg}");
        assert!(msg.contains("epoch 4"), "{msg}");
    }

    #[test]
    fn only_injected_crashes_are_recoverable() {
        assert!(WorldError::InjectedCrash {
            rank: 0,
            epoch: None,
            op: 0
        }
        .is_recoverable());
        assert!(!WorldError::Panicked {
            rank: 0,
            message: String::new()
        }
        .is_recoverable());
        assert!(!WorldError::Deadlock(report()).is_recoverable());
        // Losing a whole replica group exhausts failover but still
        // permits a checkpoint restart.
        assert!(WorldError::ReplicaColumnLost { block_row: 2 }.is_recoverable());
        let msg = WorldError::ReplicaColumnLost { block_row: 2 }.to_string();
        assert!(msg.contains("block row 2"), "{msg}");
    }
}
