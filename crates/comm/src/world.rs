//! The thread-backed SPMD world.
//!
//! `ThreadWorld::run(p, f)` executes the closure `f` once per rank on `p`
//! OS threads connected by a full mesh of unbounded channels, then returns
//! every rank's result together with the aggregated [`WorldStats`].
//!
//! Channels are unbounded so sends never block — the same progress
//! guarantee NCCL's grouped nonblocking `ncclSend`/`ncclRecv` calls give
//! the paper's implementation.
//!
//! [`ThreadWorld::try_run`] is the robust entry point: instead of
//! propagating an opaque panic it returns a structured
//! [`WorldError`] — the panicking rank and its message, the injected
//! crash that fired, or a [`crate::error::DeadlockReport`] when the
//! watchdog converted a hang into a diagnosis. Attach a
//! [`FaultPlan`]/[`FaultInjector`] to rehearse degraded conditions
//! deterministically.

use std::any::Any;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gnn_trace::{RankTracer, WorldTrace};

use crate::cost::CostModel;
use crate::ctx::RankCtx;
use crate::error::{ColumnLostPanic, CrashPanic, DeadlockPanic, EpochAbortPanic, WorldError};
use crate::fault::{FaultInjector, FaultPlan};
use crate::msg::Msg;
use crate::stats::{RankStats, WorldStats};
use crate::transport::thread::ThreadTransport;
use crate::watchdog::{TimeoutBarrier, Watchdog};

/// Factory for SPMD runs.
#[derive(Clone, Debug)]
pub struct ThreadWorld {
    p: usize,
    model: CostModel,
    timeout: Duration,
    injector: Option<Arc<FaultInjector>>,
    tracing: bool,
    failover: bool,
}

/// What one rank thread hands back on success.
type RankOut<R> = (R, RankStats, Option<Box<RankTracer>>);

/// Joined panic payloads, tagged with the thread's rank index.
type Failures = Vec<(usize, Box<dyn Any + Send>)>;

/// What a failover run yields: one result slot per rank (`None` for
/// ranks that died), aggregated stats, and the whole-world trace when
/// tracing is on and no rank died.
pub type FailoverRun<R> = (Vec<Option<R>>, WorldStats, Option<WorldTrace>);

impl ThreadWorld {
    /// Default watchdog timeout: generous enough for any legitimate test
    /// workload, finite so a protocol bug can never hang a suite.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// A world of `p` ranks priced by `model`.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, model: CostModel) -> Self {
        assert!(p >= 1, "world needs at least one rank");
        Self {
            p,
            model,
            timeout: Self::DEFAULT_TIMEOUT,
            injector: None,
            tracing: false,
            failover: false,
        }
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The configured watchdog timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The watchdog timeout actually armed for a run: the configured
    /// timeout scaled by the injected straggler budget. A deliberately
    /// slowed rank legitimately takes longer to reach every rendezvous;
    /// without this scaling a heavy `SlowCompute` plan trips the
    /// deadlock watchdog on healthy runs.
    pub fn effective_timeout(&self) -> Duration {
        match &self.injector {
            Some(inj) => self.timeout.mul_f64(inj.straggler_budget()),
            None => self.timeout,
        }
    }

    /// Sets the deadlock-watchdog timeout for blocking operations.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        assert!(
            timeout > Duration::ZERO,
            "watchdog timeout must be positive"
        );
        self.timeout = timeout;
        self
    }

    /// Attaches a fault plan (fresh injector).
    #[must_use]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.with_injector(Arc::new(FaultInjector::new(plan)))
    }

    /// Attaches a (possibly shared) fault injector. Sharing one injector
    /// across restarted worlds keeps one-shot crash faults fired.
    #[must_use]
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Enables structured tracing: each rank records a span/event
    /// timeline into a private [`RankTracer`], collected after the run
    /// into the [`WorldTrace`] returned by
    /// [`ThreadWorld::try_run_traced`]. Off by default (zero overhead).
    #[must_use]
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// True when tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Enables degraded-mode failover: an injected crash no longer tears
    /// the world down. The dying rank registers itself in the death
    /// registry, survivors abort the in-flight epoch attempt (`ABORT`
    /// control frames + [`EpochAbortPanic`] unwinding), rendezvous at the
    /// death-aware commit barrier, and retry under the next generation
    /// with the shrunken grid. Use [`ThreadWorld::try_run_failover`] to
    /// collect the survivors' results.
    #[must_use]
    pub fn with_failover(mut self, on: bool) -> Self {
        self.failover = on;
        self
    }

    /// True when degraded-mode failover is enabled.
    pub fn failover(&self) -> bool {
        self.failover
    }

    /// Runs `f` on every rank; returns rank-indexed results and stats.
    ///
    /// `f` must be deterministic per rank and must execute a consistent
    /// SPMD protocol (matching sends/recvs); a protocol mismatch panics
    /// (tag assert) or — when a rank waits for a message that is never
    /// sent — is converted by the watchdog into a deadlock panic within
    /// the configured timeout.
    ///
    /// # Panics
    /// Panics with the [`WorldError`] rendering (rank id + panic message,
    /// injected-crash coordinates, or the deadlock report) when any rank
    /// fails. Use [`ThreadWorld::try_run`] to handle failures
    /// programmatically.
    pub fn run<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        self.try_run(f)
            .unwrap_or_else(|e| panic!("world failed: {e}"))
    }

    /// Runs `f` on every rank, converting any rank failure into a
    /// structured [`WorldError`] instead of a panic.
    pub fn try_run<R, F>(&self, f: F) -> Result<(Vec<R>, WorldStats), WorldError>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        self.try_run_traced(f).map(|(outs, stats, _)| (outs, stats))
    }

    /// Like [`ThreadWorld::try_run`], but also returns the collected
    /// [`WorldTrace`] when tracing is enabled (`None` otherwise).
    pub fn try_run_traced<R, F>(
        &self,
        f: F,
    ) -> Result<(Vec<R>, WorldStats, Option<WorldTrace>), WorldError>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let (results, failures) = self.launch(self.failover, &f);
        if !failures.is_empty() {
            return Err(classify_failures(failures));
        }
        let p = self.p;
        let mut outs = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        let mut tracers = Vec::with_capacity(p);
        for slot in results {
            let (r, st, tr) = slot.expect("rank produced no result");
            outs.push(r);
            stats.push(st);
            if let Some(t) = tr {
                tracers.push(*t);
            }
        }
        let trace = (self.tracing && tracers.len() == p).then(|| WorldTrace::collect(tracers));
        Ok((outs, WorldStats::new(stats), trace))
    }

    /// Degraded-mode entry point: runs `f` with failover enabled and
    /// tolerates injected crashes as long as at least one rank survives.
    ///
    /// Returns one slot per rank — `Some(result)` for survivors, `None`
    /// for ranks that died (their stats slots are default-filled so rank
    /// indices stay aligned). `WorldStats::failovers` counts the deaths
    /// the survivors absorbed in place. The trace is returned only for
    /// death-free runs: a dead rank's tracer unwinds with its thread, so
    /// a partial trace cannot pass whole-world validation.
    ///
    /// Still fails structurally when:
    /// * an entire replica group died
    ///   ([`WorldError::ReplicaColumnLost`], checkpoint-restart ladder),
    /// * every rank died (the first crash is reported),
    /// * any rank failed for a reason other than an injected crash.
    pub fn try_run_failover<R, F>(&self, f: F) -> Result<FailoverRun<R>, WorldError>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let (results, failures) = self.launch(true, &f);

        let mut crash: Option<WorldError> = None;
        let mut deaths = 0u64;
        let mut column_lost: Option<usize> = None;
        let mut other: Failures = Vec::new();
        for (rank, payload) in failures {
            if let Some(c) = payload.downcast_ref::<CrashPanic>() {
                deaths += 1;
                crash.get_or_insert(WorldError::InjectedCrash {
                    rank: c.rank,
                    epoch: c.epoch,
                    op: c.op,
                });
            } else if let Some(c) = payload.downcast_ref::<ColumnLostPanic>() {
                column_lost.get_or_insert(c.block_row);
            } else {
                other.push((rank, payload));
            }
        }
        if let Some(block_row) = column_lost {
            return Err(WorldError::ReplicaColumnLost { block_row });
        }
        if !other.is_empty() {
            return Err(classify_failures(other));
        }
        if results.iter().all(Option::is_none) {
            return Err(crash.expect("no survivors implies at least one crash"));
        }

        let mut outs = Vec::with_capacity(self.p);
        let mut stats = Vec::with_capacity(self.p);
        let mut tracers = Vec::new();
        for slot in results {
            match slot {
                Some((r, st, tr)) => {
                    outs.push(Some(r));
                    stats.push(st);
                    if let Some(t) = tr {
                        tracers.push(*t);
                    }
                }
                None => {
                    outs.push(None);
                    stats.push(RankStats::default());
                }
            }
        }
        let mut stats = WorldStats::new(stats);
        stats.failovers = deaths;
        let trace = (self.tracing && deaths == 0 && tracers.len() == self.p)
            .then(|| WorldTrace::collect(tracers));
        Ok((outs, stats, trace))
    }

    /// Builds the channel mesh and rank contexts, runs `f` on `p` scoped
    /// threads, and joins them — shared machinery behind every run mode.
    fn launch<R, F>(&self, failover: bool, f: &F) -> (Vec<Option<RankOut<R>>>, Failures)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let _hook = PanicHookGuard::acquire();
        let p = self.p;
        // Mesh of channels: tx[src][dst] feeds rx[dst][src].
        let mut senders: Vec<Vec<Option<std::sync::mpsc::Sender<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<std::sync::mpsc::Receiver<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for src in 0..p {
            for dst in 0..p {
                let (tx, rx) = channel();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        let barrier = Arc::new(TimeoutBarrier::new(p));
        let watchdog = Arc::new(Watchdog::new(p, self.effective_timeout()));

        // Per-rank contexts, built outside the threads.
        let mut ctxs: Vec<RankCtx> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| {
                let transport = ThreadTransport::new(
                    p,
                    tx_row.into_iter().map(Option::unwrap).collect(),
                    rx_row.into_iter().map(Option::unwrap).collect(),
                    barrier.clone(),
                    watchdog.clone(),
                );
                RankCtx::new(
                    rank,
                    p,
                    self.model,
                    Box::new(transport),
                    self.injector.clone(),
                    self.tracing.then(|| Box::new(RankTracer::new(rank))),
                    failover,
                )
            })
            .collect();

        let mut results: Vec<Option<RankOut<R>>> = (0..p).map(|_| None).collect();
        let mut failures: Failures = Vec::new();

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (ctx, slot)) in ctxs.drain(..).zip(results.iter_mut()).enumerate() {
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn_scoped(s, move || {
                        let mut ctx = ctx;
                        let out = f(&mut ctx);
                        let (stats, tracer) = ctx.into_parts();
                        *slot = Some((out, stats, tracer));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for (rank, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    failures.push((rank, payload));
                }
            }
        });

        (results, failures)
    }
}

/// The previously installed panic hook, held while the filtering hook
/// is active so unexpected payloads still reach it.
type PrevHook = dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send;

struct HookState {
    /// Live [`PanicHookGuard`]s; the filter is installed on 0→1 and
    /// restored on 1→0.
    refs: usize,
    prev: Option<Arc<PrevHook>>,
}

static HOOK_STATE: Mutex<HookState> = Mutex::new(HookState {
    refs: 0,
    prev: None,
});

/// Scoped, refcounted install of the panic hook that suppresses the
/// default "thread panicked" report for panics the runtime throws on
/// purpose: the structured control-flow payloads (injected crashes,
/// epoch aborts, replica-column loss, deadlock reports) and the "peer
/// hung up" cascades a dead rank leaves behind. All of them are caught
/// and classified by the run entry points into one structured
/// [`WorldError`]; printing a backtrace per survivor per aborted epoch
/// attempt is pure noise. Every other payload (a genuine bug) still
/// prints through the previously installed hook.
///
/// Refcounting (instead of a process-wide `Once`) lets concurrent
/// worlds in one test binary overlap without clobbering each other's
/// hooks: the first acquire installs the filter, the last drop restores
/// whatever hook was there before.
pub(crate) struct PanicHookGuard(());

impl PanicHookGuard {
    pub(crate) fn acquire() -> Self {
        let mut st = HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner());
        st.refs += 1;
        if st.refs == 1 {
            let prev: Arc<PrevHook> = Arc::from(std::panic::take_hook());
            st.prev = Some(prev.clone());
            std::panic::set_hook(Box::new(move |info| {
                let p = info.payload();
                let expected = p.is::<CrashPanic>()
                    || p.is::<EpochAbortPanic>()
                    || p.is::<ColumnLostPanic>()
                    || p.is::<DeadlockPanic>()
                    // Same string classify_failures demotes to a cascade.
                    || p.downcast_ref::<String>()
                        .is_some_and(|m| m.contains("hung up"));
                if !expected {
                    prev(info);
                }
            }));
        }
        PanicHookGuard(())
    }

    #[cfg(test)]
    fn refs() -> usize {
        HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner()).refs
    }
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        let mut st = HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner());
        st.refs -= 1;
        if st.refs == 0 {
            if let Some(prev) = st.prev.take() {
                std::panic::set_hook(Box::new(move |info| prev(info)));
            }
        }
    }
}

/// Picks the root cause out of (possibly cascading) rank failures.
///
/// Precedence: losing a whole replica group (the most informative
/// diagnosis — it subsumes the crashes that caused it) beats an injected
/// crash (the planned root cause), which beats an organic panic, which
/// beats a deadlock report (ranks parked at a barrier while a peer dies
/// time out as a *consequence*, not a cause); "peer hung up" panics are
/// cascades of some other rank's death and are only reported when
/// nothing better is available.
fn classify_failures(failures: Failures) -> WorldError {
    let mut column_lost: Option<WorldError> = None;
    let mut crash: Option<WorldError> = None;
    let mut deadlock: Option<WorldError> = None;
    let mut primary: Option<WorldError> = None;
    let mut cascade: Option<WorldError> = None;
    for (rank, payload) in failures {
        if let Some(c) = payload.downcast_ref::<CrashPanic>() {
            crash.get_or_insert(WorldError::InjectedCrash {
                rank: c.rank,
                epoch: c.epoch,
                op: c.op,
            });
        } else if let Some(c) = payload.downcast_ref::<ColumnLostPanic>() {
            column_lost.get_or_insert(WorldError::ReplicaColumnLost {
                block_row: c.block_row,
            });
        } else if let Some(a) = payload.downcast_ref::<EpochAbortPanic>() {
            // Only reachable when no trainer catch_unwind was in place —
            // a harness bug, reported as an organic panic.
            primary.get_or_insert(WorldError::Panicked {
                rank,
                message: format!(
                    "epoch abort (generation {}) escaped to the world boundary",
                    a.generation
                ),
            });
        } else if let Some(d) = payload.downcast_ref::<DeadlockPanic>() {
            deadlock.get_or_insert(WorldError::Deadlock(d.0.clone()));
        } else {
            let message = panic_message(payload.as_ref());
            let err = WorldError::Panicked {
                rank,
                message: message.clone(),
            };
            if message.contains("hung up") {
                cascade.get_or_insert(err);
            } else {
                primary.get_or_insert(err);
            }
        }
    }
    column_lost
        .or(crash)
        .or(primary)
        .or(deadlock)
        .or(cascade)
        .expect("classify_failures called with no failures")
}

/// Downcasts a panic payload to something printable.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Payload;
    use crate::stats::Phase;

    fn world(p: usize) -> ThreadWorld {
        ThreadWorld::new(p, CostModel::bandwidth_only())
    }

    /// Short watchdog for tests that deliberately hang.
    fn quick_world(p: usize) -> ThreadWorld {
        world(p).with_timeout(Duration::from_millis(250))
    }

    #[test]
    fn single_rank_runs() {
        let (outs, _) = world(1).run(|ctx| ctx.rank() * 10);
        assert_eq!(outs, vec![0]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let (outs, _) = world(8).run(|ctx| ctx.rank());
        assert_eq!(outs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn p2p_ring_delivers() {
        let p = 5;
        let (outs, stats) = world(p).run(|ctx| {
            let me = ctx.rank();
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            ctx.send(next, Payload::F64(vec![me as f64]));
            ctx.recv(prev).into_f64()[0] as usize
        });
        for (rank, got) in outs.iter().enumerate() {
            assert_eq!(*got, (rank + p - 1) % p);
        }
        // Each rank sent and received one 8-byte message.
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::P2p).bytes_sent, 8);
            assert_eq!(r.phase(Phase::P2p).bytes_recv, 8);
            assert_eq!(r.phase(Phase::P2p).ops, 2);
        }
    }

    #[test]
    fn bcast_delivers_to_everyone() {
        let (outs, stats) = world(4).run(|ctx| {
            let payload = if ctx.rank() == 2 {
                Some(Payload::U32(vec![42, 43]))
            } else {
                None
            };
            ctx.bcast(2, payload).into_u32()
        });
        for o in outs {
            assert_eq!(o, vec![42, 43]);
        }
        assert_eq!(stats.per_rank[2].phase(Phase::Bcast).bytes_sent, 8);
        assert_eq!(stats.per_rank[0].phase(Phase::Bcast).bytes_recv, 8);
        // Everyone is charged the same collective completion time.
        let t0 = stats.per_rank[0].phase(Phase::Bcast).modeled_seconds;
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::Bcast).modeled_seconds, t0);
        }
    }

    #[test]
    fn alltoallv_routes_by_rank() {
        let p = 4;
        let (outs, _) = world(p).run(|ctx| {
            let me = ctx.rank();
            let sends = (0..p)
                .map(|dst| Payload::F64(vec![(me * 10 + dst) as f64]))
                .collect();
            let recvd = ctx.alltoallv(sends);
            recvd
                .into_iter()
                .map(|pl| pl.into_f64()[0] as usize)
                .collect::<Vec<_>>()
        });
        for (me, got) in outs.iter().enumerate() {
            for (src, &v) in got.iter().enumerate() {
                assert_eq!(v, src * 10 + me, "rank {me} slot {src}");
            }
        }
    }

    #[test]
    fn alltoallv_self_slot_not_priced() {
        let (_, stats) = world(2).run(|ctx| {
            let me = ctx.rank();
            let mut sends: Vec<Payload> = vec![Payload::Empty, Payload::Empty];
            sends[me] = Payload::F64(vec![0.0; 100]); // only to self
            ctx.alltoallv(sends);
        });
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::AllToAll).bytes_sent, 0);
            assert_eq!(r.phase(Phase::AllToAll).bytes_recv, 0);
        }
    }

    #[test]
    fn allreduce_sums_over_subgroups() {
        let p = 6;
        // Two groups: ranks {0,1,2} and {3,4,5}.
        let (outs, _) = world(p).run(|ctx| {
            let me = ctx.rank();
            let group: Vec<usize> = if me < 3 { vec![0, 1, 2] } else { vec![3, 4, 5] };
            let mut buf = vec![me as f64, 1.0];
            ctx.allreduce_sum(&mut buf, &group);
            buf
        });
        for out in &outs[..3] {
            assert_eq!(*out, vec![0.0 + 1.0 + 2.0, 3.0]);
        }
        for out in &outs[3..] {
            assert_eq!(*out, vec![3.0 + 4.0 + 5.0, 3.0]);
        }
    }

    #[test]
    fn allreduce_single_member_is_identity() {
        let (outs, stats) = world(2).run(|ctx| {
            let me = ctx.rank();
            let mut buf = vec![me as f64 + 1.0];
            ctx.allreduce_sum(&mut buf, &[me]);
            buf[0]
        });
        assert_eq!(outs, vec![1.0, 2.0]);
        // Group of one: zero modeled time.
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::AllReduce).modeled_seconds, 0.0);
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let (outs, _) = world(3).run(|ctx| {
            let me = ctx.rank();
            ctx.gather(0, Payload::U32(vec![me as u32 * 7]))
                .map(|v| v.into_iter().map(|p| p.into_u32()[0]).collect::<Vec<_>>())
        });
        assert_eq!(outs[0], Some(vec![0, 7, 14]));
        assert_eq!(outs[1], None);
        assert_eq!(outs[2], None);
    }

    #[test]
    fn compute_records_flops_and_model_time() {
        let model = CostModel {
            alpha: 0.0,
            beta: 0.0,
            flop_rate: 1000.0,
            threads: 1,
        };
        let (_, stats) = ThreadWorld::new(2, model).run(|ctx| {
            ctx.compute(500, || std::hint::black_box(3 + 4));
        });
        for r in &stats.per_rank {
            let c = r.phase(Phase::LocalCompute);
            assert_eq!(c.flops, 500);
            assert!((c.modeled_seconds - 0.5).abs() < 1e-12);
            assert!(c.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn barrier_is_rendezvous() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (outs, _) = world(4).run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        // After the barrier every rank must observe all 4 increments.
        for o in outs {
            assert_eq!(o, 4);
        }
    }

    #[test]
    #[should_panic(expected = "protocol mismatch")]
    fn protocol_mismatch_fails_fast() {
        // Rank 0 sends a point-to-point message; rank 1 expects a
        // broadcast. The tag check must abort the run rather than
        // silently mis-pairing buffers.
        quick_world(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Payload::F64(vec![1.0]));
            } else {
                ctx.bcast(0, None);
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: worker blew up")]
    fn rank_panic_propagates_with_rank_and_message() {
        world(3).run(|ctx| {
            if ctx.rank() == 2 {
                panic!("worker blew up");
            }
        });
    }

    #[test]
    fn try_run_returns_ok_results() {
        let out = world(3).try_run(|ctx| ctx.rank() * 2);
        let (outs, stats) = out.expect("clean run");
        assert_eq!(outs, vec![0, 2, 4]);
        assert_eq!(stats.p(), 3);
    }

    #[test]
    fn try_run_captures_panic_rank_and_payload() {
        let err = quick_world(3)
            .try_run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("numerical blowup at layer 7");
                }
                ctx.barrier();
            })
            .unwrap_err();
        match err {
            WorldError::Panicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("numerical blowup at layer 7"), "{message}");
            }
            other => panic!("expected Panicked, got {other}"),
        }
    }

    #[test]
    fn try_run_prefers_root_cause_over_cascade() {
        // Rank 0 panics; rank 1, blocked on a recv from rank 0, dies with
        // a "hung up" cascade. The reported error must be rank 0's.
        let err = quick_world(2)
            .try_run(|ctx| {
                if ctx.rank() == 0 {
                    panic!("root cause");
                }
                ctx.recv(0);
            })
            .unwrap_err();
        match err {
            WorldError::Panicked { rank, message } => {
                assert_eq!(rank, 0);
                assert!(message.contains("root cause"), "{message}");
            }
            other => panic!("expected Panicked, got {other}"),
        }
    }

    #[test]
    fn cyclic_recv_becomes_deadlock_report() {
        // Classic head-to-head deadlock: each rank waits for a message
        // the other will only send after receiving one itself.
        let t0 = std::time::Instant::now();
        let err = quick_world(2)
            .try_run(|ctx| {
                let peer = 1 - ctx.rank();
                ctx.recv(peer); // nobody ever sends
            })
            .unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog fired late"
        );
        match err {
            WorldError::Deadlock(report) => {
                assert!(report.names(0), "rank 0 must be in {report}");
                let r0 = report
                    .blocked
                    .iter()
                    .find(|b| b.rank == 0)
                    .expect("rank 0 entry");
                assert_eq!(r0.waiting_on, Some(1));
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn peer_exit_without_send_is_reported_promptly() {
        // Rank 1 returns without ever sending; rank 0's recv must not
        // wait out the full watchdog timeout — the closed channel is
        // detected immediately and reported with both rank ids.
        let t0 = std::time::Instant::now();
        let err = world(2) // full 30 s timeout on purpose
            .try_run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.recv(1);
                }
            })
            .unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "should not wait for watchdog"
        );
        match err {
            WorldError::Panicked { rank, message } => {
                assert_eq!(rank, 0);
                assert!(message.contains("rank 1"), "{message}");
                assert!(message.contains("hung up"), "{message}");
            }
            other => panic!("expected Panicked, got {other}"),
        }
    }

    #[test]
    fn missing_barrier_party_becomes_deadlock_report() {
        let err = quick_world(3)
            .try_run(|ctx| {
                if ctx.rank() != 2 {
                    ctx.barrier();
                }
            })
            .unwrap_err();
        match err {
            WorldError::Deadlock(report) => {
                assert!(report.names(0) && report.names(1), "{report}");
                assert!(!report.names(2), "rank 2 exited cleanly: {report}");
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_is_rejected() {
        // Assert fires on the calling thread before any message moves.
        let (tx, rx) = channel();
        let transport = ThreadTransport::new(
            1,
            vec![tx],
            vec![rx],
            Arc::new(TimeoutBarrier::new(1)),
            Arc::new(Watchdog::new(1, Duration::from_secs(1))),
        );
        let mut ctx = crate::ctx::RankCtx::new(
            0,
            1,
            CostModel::bandwidth_only(),
            Box::new(transport),
            None,
            None,
            false,
        );
        ctx.send(0, Payload::Empty);
    }

    #[test]
    fn panic_hook_guard_is_refcounted() {
        // Overlapping guards (concurrent worlds in one test binary) must
        // refcount: the count reflects both while they live, and dropping
        // one must not restore the hook out from under the other. Other
        // tests run worlds concurrently, so only relative claims hold.
        let g1 = PanicHookGuard::acquire();
        let g2 = PanicHookGuard::acquire();
        assert!(PanicHookGuard::refs() >= 2);
        drop(g1);
        assert!(PanicHookGuard::refs() >= 1);
        // The filter must still be active for g2: a structured panic in
        // a world is classified, not printed.
        let err = world(1)
            .try_run(|ctx| {
                if ctx.rank() == 0 {
                    std::panic::panic_any(CrashPanic {
                        rank: 0,
                        epoch: None,
                        op: 0,
                    });
                }
            })
            .unwrap_err();
        assert!(matches!(err, WorldError::InjectedCrash { .. }));
        drop(g2);
    }

    #[test]
    fn stats_survive_multiple_collectives() {
        let (_, stats) = world(3).run(|ctx| {
            for _ in 0..4 {
                let payload = if ctx.rank() == 0 {
                    Some(Payload::F64(vec![0.0; 10]))
                } else {
                    None
                };
                ctx.bcast(0, payload);
            }
        });
        assert_eq!(stats.per_rank[0].phase(Phase::Bcast).ops, 4);
        assert_eq!(stats.per_rank[0].phase(Phase::Bcast).bytes_sent, 4 * 80);
        assert_eq!(stats.per_rank[1].phase(Phase::Bcast).bytes_recv, 4 * 80);
    }

    // ---- fault injection ----

    #[test]
    fn injected_crash_is_structured() {
        let plan = FaultPlan::new(0).crash_at(1, 0, 1);
        let err = world(2)
            .with_faults(plan)
            .try_run(|ctx| {
                ctx.set_epoch(0);
                let peer = 1 - ctx.rank();
                ctx.send(peer, Payload::Empty);
                ctx.recv(peer);
            })
            .unwrap_err();
        match err {
            WorldError::InjectedCrash { rank, epoch, .. } => {
                assert_eq!(rank, 1);
                assert_eq!(epoch, Some(0));
            }
            other => panic!("expected InjectedCrash, got {other}"),
        }
    }

    #[test]
    fn crash_fires_once_across_reruns_of_a_shared_injector() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(0).crash_at(0, 0, 1)));
        let w = world(2).with_injector(injector.clone());
        let body = |ctx: &mut RankCtx| {
            ctx.set_epoch(0);
            let peer = 1 - ctx.rank();
            ctx.send(peer, Payload::F64(vec![1.0]));
            ctx.recv(peer).into_f64()[0]
        };
        assert!(w.try_run(body).is_err(), "first run must crash");
        let (outs, _) = w.try_run(body).expect("second run is clean");
        assert_eq!(outs, vec![1.0, 1.0]);
    }

    #[test]
    fn dropped_messages_are_retransmitted_and_counted() {
        // prob = 1.0: every attempt up to the retry cap is lost; the
        // attempt at `max_retries` is forced clean.
        let plan = FaultPlan::new(3).drop_messages(0, None, 1.0);
        let retries = u64::from(plan.max_retries);
        let (outs, stats) = world(2).with_faults(plan).run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, Payload::F64(vec![ctx.rank() as f64]));
            ctx.recv(peer).into_f64()[0]
        });
        // Payloads still arrive intact.
        assert_eq!(outs, vec![1.0, 0.0]);
        let r0 = &stats.per_rank[0].faults;
        assert_eq!(r0.drops, retries);
        assert_eq!(r0.retries, retries);
        assert_eq!(stats.per_rank[1].faults.drops, 0);
        assert_eq!(stats.total_retries(), retries);
        // Retransmissions cost modeled time and wire bytes, charged to
        // the dedicated phase — never to the op's logical volume.
        assert_eq!(stats.per_rank[0].phase(Phase::P2p).bytes_sent, 8);
        assert_eq!(
            stats.per_rank[0].phase(Phase::Retransmit).bytes_sent,
            retries * 8
        );
        assert_eq!(r0.retransmit_bytes, retries * 8);
        assert_eq!(stats.per_rank[1].faults.retransmit_bytes, 0);
        assert_eq!(stats.total_retransmit_bytes(), retries * 8);
        // Logical totals exclude the wire overhead; the wire view adds it.
        assert_eq!(stats.per_rank[0].bytes_sent_total(), 8);
        assert_eq!(stats.per_rank[0].wire_bytes_sent_total(), 8 + retries * 8);
        assert!(stats.per_rank[0].phase(Phase::Retransmit).modeled_seconds > 0.0);
        assert_eq!(
            stats.per_rank[1].phase(Phase::Retransmit).modeled_seconds,
            0.0
        );
    }

    #[test]
    fn corruption_is_detected_by_the_receiver() {
        // Corrupted frames actually travel: the receiver's checksum
        // rejects each damaged attempt until the forced-clean one lands.
        let plan = FaultPlan::new(5).corrupt_messages(0, Some(1), 1.0);
        let retries = u64::from(plan.max_retries);
        let (outs, stats) = world(2).with_faults(plan).run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, Payload::U32(vec![7]));
            ctx.recv(peer).into_u32()[0]
        });
        assert_eq!(outs, vec![7, 7]);
        assert_eq!(stats.per_rank[0].faults.corruptions, retries);
        assert_eq!(stats.per_rank[1].faults.corruptions_detected, retries);
        assert_eq!(stats.total_injected_faults(), retries);
        // The receiver's wasted transfers land on the retransmit phase.
        assert_eq!(stats.per_rank[1].phase(Phase::Retransmit).ops, retries);
        // Logical volume stays that of one clean 4-byte message.
        assert_eq!(stats.per_rank[1].bytes_recv_total(), 4);
    }

    #[test]
    fn duplicate_delivery_is_discarded_by_sequence_number() {
        // Two messages, every delivery duplicated: the first recv accepts
        // seq 0, the second recv drains the stale copy of seq 0 before
        // accepting seq 1. (The duplicate of the final message is never
        // drained — ending an epoch with junk in flight must be safe.)
        let plan = FaultPlan::new(9).duplicate_messages(0, Some(1), 1.0);
        let (outs, stats) = world(2).with_faults(plan).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Payload::F64(vec![1.0]));
                ctx.send(1, Payload::F64(vec![2.0]));
                0.0
            } else {
                ctx.recv(0).into_f64()[0] + ctx.recv(0).into_f64()[0]
            }
        });
        assert_eq!(outs, vec![0.0, 3.0]);
        assert_eq!(stats.per_rank[0].faults.duplicates, 2);
        assert_eq!(stats.per_rank[1].faults.duplicates_discarded, 1);
        // Each duplicate is wire overhead, never logical volume.
        assert_eq!(stats.per_rank[0].phase(Phase::Retransmit).bytes_sent, 16);
        assert_eq!(stats.per_rank[0].bytes_sent_total(), 16);
        assert_eq!(stats.per_rank[1].bytes_recv_total(), 16);
    }

    #[test]
    #[should_panic(expected = "transport violation")]
    fn reordered_future_frame_is_a_transport_violation() {
        // Hand-deliver a frame from the future (seq 3 while seq 0 is
        // expected): the receiver must refuse to skip messages.
        let (tx_self, rx_self) = channel();
        let (tx_peer, rx_peer) = channel();
        let payload = Payload::F64(vec![1.0]);
        tx_peer
            .send(Msg {
                tag: crate::ctx::tag::P2P,
                seq: 3,
                gen: 0,
                checksum: payload.checksum(),
                payload,
            })
            .unwrap();
        let transport = ThreadTransport::new(
            2,
            vec![tx_self, tx_peer],
            vec![rx_self, rx_peer],
            Arc::new(TimeoutBarrier::new(2)),
            Arc::new(Watchdog::new(2, Duration::from_secs(1))),
        );
        let mut ctx = crate::ctx::RankCtx::new(
            0,
            2,
            CostModel::bandwidth_only(),
            Box::new(transport),
            None,
            None,
            false,
        );
        ctx.recv(1);
    }

    #[test]
    fn corruption_storm_converges_within_the_backoff_cap() {
        // Every transmission in both directions is corrupted until the
        // forced-clean attempt. The run must still converge, and no
        // single backoff wait may exceed the configured cap.
        let plan = FaultPlan::new(17)
            .corrupt_messages(0, None, 1.0)
            .corrupt_messages(1, None, 1.0);
        let cap = plan.retry_backoff_cap_seconds;
        let retries = u64::from(plan.max_retries);
        let bound: f64 = (0..plan.max_retries).map(|a| plan.backoff_seconds(a)).sum();
        let (outs, stats) = world(2).with_faults(plan).run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, Payload::F64(vec![ctx.rank() as f64 + 0.5]));
            ctx.recv(peer).into_f64()[0]
        });
        assert_eq!(outs, vec![1.5, 0.5]);
        for r in &stats.per_rank {
            assert_eq!(r.faults.corruptions, retries);
            assert_eq!(r.faults.corruptions_detected, retries);
            // Sender-side retransmit time = capped backoffs + wire time
            // of the resent frames + receiver-side wasted transfers.
            let rt = r.phase(Phase::Retransmit);
            let wire = retries as f64 * CostModel::bandwidth_only().p2p(8) * 2.0;
            assert!(
                rt.modeled_seconds <= bound + wire + 1e-9,
                "retransmit time {} exceeds backoff budget {}",
                rt.modeled_seconds,
                bound + wire
            );
            assert!(
                bound <= retries as f64 * cap + 1e-12,
                "cap bounds each wait"
            );
        }
    }

    #[test]
    fn straggler_budget_scales_the_watchdog_timeout() {
        // Regression: a heavy straggler used to trip the deadlock
        // watchdog on healthy runs — the fast ranks' barrier wait
        // exceeded the unscaled timeout while the slow rank was still
        // legitimately computing.
        let plan = FaultPlan::new(0).slow_compute(1, 20.0);
        let w = world(2)
            .with_timeout(Duration::from_millis(40))
            .with_faults(plan);
        assert_eq!(w.effective_timeout(), Duration::from_millis(800));
        let (_, stats) = w.run(|ctx| {
            if ctx.rank() == 1 {
                ctx.compute(1000, || std::thread::sleep(Duration::from_millis(200)));
            }
            ctx.barrier();
        });
        assert_eq!(stats.per_rank[1].faults.slowed_ops, 1);
    }

    #[test]
    fn delay_fault_charges_the_cost_model() {
        let plan = FaultPlan::new(0).delay_send(0, Some(1), 2.5);
        let (_, stats) = world(2).with_faults(plan).run(|ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, Payload::F64(vec![0.0; 4]));
            ctx.recv(peer);
        });
        let f = &stats.per_rank[0].faults;
        assert_eq!(f.delays, 1);
        assert_eq!(f.delay_seconds, 2.5);
        // bandwidth_only model: baseline cost is bytes; delay dominates.
        assert!(stats.per_rank[0].phase(Phase::P2p).modeled_seconds >= 2.5);
        assert_eq!(stats.per_rank[1].faults.delays, 0);
    }

    #[test]
    fn slow_compute_scales_modeled_time_only_on_the_straggler() {
        let model = CostModel {
            alpha: 0.0,
            beta: 0.0,
            flop_rate: 1000.0,
            threads: 1,
        };
        let plan = FaultPlan::new(0).slow_compute(1, 4.0);
        let (_, stats) = ThreadWorld::new(2, model).with_faults(plan).run(|ctx| {
            ctx.compute(1000, || std::hint::black_box(0));
        });
        let fast = stats.per_rank[0].phase(Phase::LocalCompute).modeled_seconds;
        let slow = stats.per_rank[1].phase(Phase::LocalCompute).modeled_seconds;
        assert!((fast - 1.0).abs() < 1e-12);
        assert!((slow - 4.0).abs() < 1e-12);
        assert_eq!(stats.per_rank[1].faults.slowed_ops, 1);
        // The straggler sets the modeled epoch time — the paper's
        // bottleneck-process argument, now injectable.
        assert!((stats.modeled_epoch_time() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let run = || {
            let plan = FaultPlan::new(11)
                .drop_messages(0, None, 0.5)
                .corrupt_messages(1, None, 0.5)
                .delay_send(2, None, 0.125);
            world(3).with_faults(plan).run(|ctx| {
                let mut acc = 0.0;
                for round in 0..8 {
                    let sends = (0..3)
                        .map(|d| Payload::F64(vec![(ctx.rank() * 8 + round + d) as f64]))
                        .collect();
                    acc += ctx
                        .alltoallv(sends)
                        .into_iter()
                        .map(|p| p.into_f64()[0])
                        .sum::<f64>();
                }
                acc
            })
        };
        let (a_out, a_stats) = run();
        let (b_out, b_stats) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_stats, b_stats);
        assert!(a_stats.total_injected_faults() > 0, "plan injected nothing");
    }

    // ---- degraded-mode failover ----

    #[test]
    fn failover_run_tolerates_a_crash_with_survivors() {
        let plan = FaultPlan::new(0).crash_at(1, 0, 0);
        let (outs, stats, trace) = world(2)
            .with_failover(true)
            .with_faults(plan)
            .try_run_failover(|ctx| {
                ctx.set_epoch(0);
                ctx.rank() * 10
            })
            .expect("the survivor's result must come back");
        assert_eq!(outs, vec![Some(0), None]);
        assert_eq!(stats.failovers, 1);
        assert!(trace.is_none());
    }

    #[test]
    fn failover_with_no_survivors_reports_the_crash() {
        let plan = FaultPlan::new(0).crash_at(0, 0, 0).crash_at(1, 0, 0);
        let err = world(2)
            .with_failover(true)
            .with_faults(plan)
            .try_run_failover(|ctx| {
                ctx.set_epoch(0);
            })
            .unwrap_err();
        match err {
            WorldError::InjectedCrash { .. } => {}
            other => panic!("expected InjectedCrash, got {other}"),
        }
    }

    #[test]
    fn failover_epoch_abort_retries_and_commits_on_survivors() {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        // Rank 1 dies at its first op of epoch 0. Rank 0 (waiting on a
        // message from it) aborts the attempt; rank 2 completes the
        // attempt obliviously. Both rendezvous at the death-aware commit
        // barrier, agree the generation is poisoned, and retry with the
        // shrunken world — stale generation-0 frames are discarded.
        let plan = FaultPlan::new(0).crash_at(1, 0, 1);
        let (outs, stats, _) = world(3)
            .with_failover(true)
            .with_faults(plan)
            .try_run_failover(|ctx| {
                ctx.set_epoch(0);
                let mut committed = None;
                let mut attempts = 0;
                while committed.is_none() {
                    attempts += 1;
                    assert!(attempts <= 3, "failover retry did not converge");
                    let dead = ctx.dead_ranks();
                    let alive: Vec<usize> = (0..ctx.p()).filter(|r| !dead.contains(r)).collect();
                    let root = alive[0];
                    let me = ctx.rank();
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        if me == root {
                            let mut acc = me as f64;
                            for &src in &alive[1..] {
                                acc += ctx.recv(src).into_f64()[0];
                            }
                            acc
                        } else {
                            ctx.send(root, Payload::F64(vec![me as f64]));
                            me as f64
                        }
                    }));
                    match attempt {
                        Ok(v) => {
                            if ctx.commit_epoch() {
                                committed = Some(v);
                            }
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<EpochAbortPanic>().is_none() {
                                resume_unwind(payload);
                            }
                            assert!(!ctx.commit_epoch(), "aborted attempt must not commit");
                        }
                    }
                }
                (committed.unwrap(), ctx.generation())
            })
            .expect("survivors must complete");
        // Retried sum excludes the dead rank: 0 + 2 at the root.
        assert_eq!(outs[0], Some((2.0, 1)));
        assert_eq!(outs[1], None);
        assert_eq!(outs[2], Some((2.0, 1)));
        assert_eq!(stats.failovers, 1);
    }

    #[test]
    fn failover_propagates_replica_column_loss() {
        let err = world(2)
            .with_failover(true)
            .try_run_failover(|ctx| {
                if ctx.rank() == 0 {
                    ctx.replica_column_lost(3);
                }
            })
            .unwrap_err();
        match err {
            WorldError::ReplicaColumnLost { block_row } => assert_eq!(block_row, 3),
            other => panic!("expected ReplicaColumnLost, got {other}"),
        }
    }
}
