//! The thread-backed SPMD world.
//!
//! `ThreadWorld::run(p, f)` executes the closure `f` once per rank on `p`
//! OS threads connected by a full mesh of unbounded channels, then returns
//! every rank's result together with the aggregated [`WorldStats`].
//!
//! Channels are unbounded so sends never block — the same progress
//! guarantee NCCL's grouped nonblocking `ncclSend`/`ncclRecv` calls give
//! the paper's implementation.

use std::sync::{Arc, Barrier};

use crossbeam::channel::unbounded;

use crate::cost::CostModel;
use crate::ctx::RankCtx;
use crate::msg::Msg;
use crate::stats::WorldStats;

/// Factory for SPMD runs.
#[derive(Clone, Copy, Debug)]
pub struct ThreadWorld {
    p: usize,
    model: CostModel,
}

impl ThreadWorld {
    /// A world of `p` ranks priced by `model`.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, model: CostModel) -> Self {
        assert!(p >= 1, "world needs at least one rank");
        Self { p, model }
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Runs `f` on every rank; returns rank-indexed results and stats.
    ///
    /// `f` must be deterministic per rank and must execute a consistent
    /// SPMD protocol (matching sends/recvs); a protocol mismatch panics
    /// (tag assert) or deadlocks only if a rank waits for a message that
    /// is never sent.
    ///
    /// # Panics
    /// Propagates any rank's panic.
    pub fn run<R, F>(&self, f: F) -> (Vec<R>, WorldStats)
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let p = self.p;
        // Mesh of channels: tx[src][dst] feeds rx[dst][src].
        let mut senders: Vec<Vec<Option<crossbeam::channel::Sender<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<crossbeam::channel::Receiver<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for src in 0..p {
            for dst in 0..p {
                let (tx, rx) = unbounded();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(p));

        // Per-rank contexts, built outside the threads.
        let mut ctxs: Vec<RankCtx> = senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| {
                RankCtx::new(
                    rank,
                    p,
                    self.model,
                    tx_row.into_iter().map(Option::unwrap).collect(),
                    rx_row.into_iter().map(Option::unwrap).collect(),
                    barrier.clone(),
                )
            })
            .collect();

        let mut results: Vec<Option<(R, crate::stats::RankStats)>> =
            (0..p).map(|_| None).collect();

        crossbeam::thread::scope(|s| {
            let f = &f;
            let mut handles = Vec::with_capacity(p);
            for (rank, (ctx, slot)) in
                ctxs.drain(..).zip(results.iter_mut()).enumerate()
            {
                let handle = s
                    .builder()
                    .name(format!("rank-{rank}"))
                    .spawn(move |_| {
                        let mut ctx = ctx;
                        let out = f(&mut ctx);
                        *slot = Some((out, ctx.into_stats()));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for h in handles {
                h.join().expect("a rank panicked");
            }
        })
        .expect("scope error");

        let mut outs = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        for slot in results {
            let (r, st) = slot.expect("rank produced no result");
            outs.push(r);
            stats.push(st);
        }
        (outs, WorldStats::new(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Payload;
    use crate::stats::Phase;

    fn world(p: usize) -> ThreadWorld {
        ThreadWorld::new(p, CostModel::bandwidth_only())
    }

    #[test]
    fn single_rank_runs() {
        let (outs, _) = world(1).run(|ctx| ctx.rank() * 10);
        assert_eq!(outs, vec![0]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let (outs, _) = world(8).run(|ctx| ctx.rank());
        assert_eq!(outs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn p2p_ring_delivers() {
        let p = 5;
        let (outs, stats) = world(p).run(|ctx| {
            let me = ctx.rank();
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            ctx.send(next, Payload::F64(vec![me as f64]));
            ctx.recv(prev).into_f64()[0] as usize
        });
        for (rank, got) in outs.iter().enumerate() {
            assert_eq!(*got, (rank + p - 1) % p);
        }
        // Each rank sent and received one 8-byte message.
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::P2p).bytes_sent, 8);
            assert_eq!(r.phase(Phase::P2p).bytes_recv, 8);
            assert_eq!(r.phase(Phase::P2p).ops, 2);
        }
    }

    #[test]
    fn bcast_delivers_to_everyone() {
        let (outs, stats) = world(4).run(|ctx| {
            let payload =
                if ctx.rank() == 2 { Some(Payload::U32(vec![42, 43])) } else { None };
            ctx.bcast(2, payload).into_u32()
        });
        for o in outs {
            assert_eq!(o, vec![42, 43]);
        }
        assert_eq!(stats.per_rank[2].phase(Phase::Bcast).bytes_sent, 8);
        assert_eq!(stats.per_rank[0].phase(Phase::Bcast).bytes_recv, 8);
        // Everyone is charged the same collective completion time.
        let t0 = stats.per_rank[0].phase(Phase::Bcast).modeled_seconds;
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::Bcast).modeled_seconds, t0);
        }
    }

    #[test]
    fn alltoallv_routes_by_rank() {
        let p = 4;
        let (outs, _) = world(p).run(|ctx| {
            let me = ctx.rank();
            let sends = (0..p)
                .map(|dst| Payload::F64(vec![(me * 10 + dst) as f64]))
                .collect();
            let recvd = ctx.alltoallv(sends);
            recvd
                .into_iter()
                .map(|pl| pl.into_f64()[0] as usize)
                .collect::<Vec<_>>()
        });
        for (me, got) in outs.iter().enumerate() {
            for (src, &v) in got.iter().enumerate() {
                assert_eq!(v, src * 10 + me, "rank {me} slot {src}");
            }
        }
    }

    #[test]
    fn alltoallv_self_slot_not_priced() {
        let (_, stats) = world(2).run(|ctx| {
            let me = ctx.rank();
            let mut sends: Vec<Payload> = vec![Payload::Empty, Payload::Empty];
            sends[me] = Payload::F64(vec![0.0; 100]); // only to self
            ctx.alltoallv(sends);
        });
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::AllToAll).bytes_sent, 0);
            assert_eq!(r.phase(Phase::AllToAll).bytes_recv, 0);
        }
    }

    #[test]
    fn allreduce_sums_over_subgroups() {
        let p = 6;
        // Two groups: ranks {0,1,2} and {3,4,5}.
        let (outs, _) = world(p).run(|ctx| {
            let me = ctx.rank();
            let group: Vec<usize> = if me < 3 { vec![0, 1, 2] } else { vec![3, 4, 5] };
            let mut buf = vec![me as f64, 1.0];
            ctx.allreduce_sum(&mut buf, &group);
            buf
        });
        for me in 0..3 {
            assert_eq!(outs[me], vec![0.0 + 1.0 + 2.0, 3.0]);
        }
        for me in 3..6 {
            assert_eq!(outs[me], vec![3.0 + 4.0 + 5.0, 3.0]);
        }
    }

    #[test]
    fn allreduce_single_member_is_identity() {
        let (outs, stats) = world(2).run(|ctx| {
            let me = ctx.rank();
            let mut buf = vec![me as f64 + 1.0];
            ctx.allreduce_sum(&mut buf, &[me]);
            buf[0]
        });
        assert_eq!(outs, vec![1.0, 2.0]);
        // Group of one: zero modeled time.
        for r in &stats.per_rank {
            assert_eq!(r.phase(Phase::AllReduce).modeled_seconds, 0.0);
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let (outs, _) = world(3).run(|ctx| {
            let me = ctx.rank();
            ctx.gather(0, Payload::U32(vec![me as u32 * 7]))
                .map(|v| v.into_iter().map(|p| p.into_u32()[0]).collect::<Vec<_>>())
        });
        assert_eq!(outs[0], Some(vec![0, 7, 14]));
        assert_eq!(outs[1], None);
        assert_eq!(outs[2], None);
    }

    #[test]
    fn compute_records_flops_and_model_time() {
        let model = CostModel { alpha: 0.0, beta: 0.0, flop_rate: 1000.0 };
        let (_, stats) = ThreadWorld::new(2, model).run(|ctx| {
            ctx.compute(500, || std::hint::black_box(3 + 4));
        });
        for r in &stats.per_rank {
            let c = r.phase(Phase::LocalCompute);
            assert_eq!(c.flops, 500);
            assert!((c.modeled_seconds - 0.5).abs() < 1e-12);
            assert!(c.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn barrier_is_rendezvous() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (outs, _) = world(4).run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        // After the barrier every rank must observe all 4 increments.
        for o in outs {
            assert_eq!(o, 4);
        }
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn protocol_mismatch_fails_fast() {
        // Rank 0 sends a point-to-point message; rank 1 expects a
        // broadcast. The tag check must abort the run rather than
        // silently mis-pairing buffers.
        world(2).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Payload::F64(vec![1.0]));
            } else {
                ctx.bcast(0, None);
            }
        });
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn rank_panic_propagates() {
        world(3).run(|ctx| {
            if ctx.rank() == 2 {
                panic!("worker blew up");
            }
        });
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_is_rejected() {
        // Assert fires on the calling thread before any message moves.
        let (tx, rx) = crossbeam::channel::unbounded();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(1));
        let mut ctx = crate::ctx::RankCtx::new(
            0,
            1,
            CostModel::bandwidth_only(),
            vec![tx],
            vec![rx],
            barrier,
        );
        ctx.send(0, Payload::Empty);
    }

    #[test]
    fn stats_survive_multiple_collectives() {
        let (_, stats) = world(3).run(|ctx| {
            for _ in 0..4 {
                let payload = if ctx.rank() == 0 {
                    Some(Payload::F64(vec![0.0; 10]))
                } else {
                    None
                };
                ctx.bcast(0, payload);
            }
        });
        assert_eq!(stats.per_rank[0].phase(Phase::Bcast).ops, 4);
        assert_eq!(stats.per_rank[0].phase(Phase::Bcast).bytes_sent, 4 * 80);
        assert_eq!(stats.per_rank[1].phase(Phase::Bcast).bytes_recv, 4 * 80);
    }
}
