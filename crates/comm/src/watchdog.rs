//! The deadlock watchdog: a shared wait-for registry plus a barrier with
//! timeout.
//!
//! Every blocking operation registers *what it waits for* before
//! blocking and deregisters on success. When any rank's wait exceeds the
//! world timeout, it snapshots the registry into a
//! [`DeadlockReport`] — which rank is blocked on which peer, with which
//! tag, in which epoch — and panics with it, so
//! [`crate::ThreadWorld::try_run`] can surface a structured
//! [`crate::WorldError::Deadlock`] instead of hanging the process
//! forever.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::{BlockedRank, DeadlockReport, WaitKind};

/// One rank's registered wait.
#[derive(Clone, Copy, Debug)]
struct WaitState {
    kind: WaitKind,
    peer: Option<usize>,
    tag: Option<u8>,
    epoch: Option<usize>,
    since: Instant,
}

/// One recorded rank death (failover mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DeathRecord {
    /// The dead rank.
    pub rank: usize,
    /// The failover generation the rank died in.
    pub gen: u32,
}

/// Shared wait-for registry for one world run.
#[derive(Debug)]
pub(crate) struct Watchdog {
    timeout: Duration,
    waits: Vec<Mutex<Option<WaitState>>>,
    /// Death registry for degraded-mode failover: a crashing rank marks
    /// itself dead *before* unwinding, so survivors can consult the set
    /// when a channel disconnects or the commit barrier shrinks.
    deaths: Mutex<Vec<DeathRecord>>,
}

impl Watchdog {
    pub(crate) fn new(p: usize, timeout: Duration) -> Self {
        Self {
            timeout,
            waits: (0..p).map(|_| Mutex::new(None)).collect(),
            deaths: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Records that `rank` died during failover generation `gen`.
    pub(crate) fn mark_dead(&self, rank: usize, gen: u32) {
        let mut deaths = self.deaths.lock().unwrap();
        if !deaths.iter().any(|d| d.rank == rank) {
            deaths.push(DeathRecord { rank, gen });
        }
    }

    /// Snapshot of all recorded deaths, in registration order.
    pub(crate) fn deaths(&self) -> Vec<DeathRecord> {
        self.deaths.lock().unwrap().clone()
    }

    /// Ranks still alive out of a world of `p`.
    pub(crate) fn alive_count(&self, p: usize) -> usize {
        p - self.deaths.lock().unwrap().len()
    }

    /// Registers that `rank` is about to block.
    pub(crate) fn begin(
        &self,
        rank: usize,
        kind: WaitKind,
        peer: Option<usize>,
        tag: Option<u8>,
        epoch: Option<usize>,
    ) {
        *self.waits[rank].lock().unwrap() = Some(WaitState {
            kind,
            peer,
            tag,
            epoch,
            since: Instant::now(),
        });
    }

    /// Deregisters `rank` after its wait completed.
    pub(crate) fn end(&self, rank: usize) {
        *self.waits[rank].lock().unwrap() = None;
    }

    /// Snapshots every currently blocked rank into a report.
    pub(crate) fn report(&self, detected_by: usize) -> DeadlockReport {
        let now = Instant::now();
        let blocked = self
            .waits
            .iter()
            .enumerate()
            .filter_map(|(rank, w)| {
                w.lock().unwrap().map(|s| BlockedRank {
                    rank,
                    kind: s.kind,
                    waiting_on: s.peer,
                    tag: s.tag,
                    epoch: s.epoch,
                    waited: now.saturating_duration_since(s.since),
                })
            })
            .collect();
        DeadlockReport {
            detected_by,
            timeout: self.timeout,
            blocked,
        }
    }
}

/// A reusable rendezvous barrier whose wait can time out (std's
/// [`std::sync::Barrier`] cannot, and an eternal barrier wait is exactly
/// the hang the watchdog exists to kill).
#[derive(Debug)]
pub(crate) struct TimeoutBarrier {
    p: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    count: usize,
    generation: u64,
    /// Verdict published by the releasing party of the most recently
    /// completed generation (see [`TimeoutBarrier::wait_verdict`]).
    verdict: bool,
}

impl TimeoutBarrier {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            p,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                verdict: true,
            }),
            cv: Condvar::new(),
        }
    }

    /// Waits for all `p` ranks; `false` if `timeout` elapsed first.
    pub(crate) fn wait(&self, timeout: Duration) -> bool {
        self.wait_with(timeout, || self.p)
    }

    /// Death-aware wait: releases once the arrival count reaches
    /// `required()`, re-evaluated on a short poll slice so a party that
    /// dies *while others already wait* still releases the barrier (the
    /// arrival count never reaches the original `p`, but `required()`
    /// shrinks to match the survivors). Returns `false` on timeout.
    pub(crate) fn wait_with(&self, timeout: Duration, required: impl Fn() -> usize) -> bool {
        self.wait_verdict(timeout, required, || true).is_some()
    }

    /// Death-aware wait that also agrees on a verdict: the party that
    /// trips the release evaluates `verdict()` exactly once, under the
    /// barrier lock, and every waiter of that generation returns the
    /// published value. `None` on timeout.
    ///
    /// This is what makes the failover epoch commit race-free. Each rank
    /// deciding for itself *after* release would race against a peer
    /// that passes the barrier, commits cleanly, and crashes immediately
    /// afterwards: ranks reading the death registry before and after
    /// that crash would reach different verdicts and diverge. Publishing
    /// one verdict at release time removes the window. The single slot
    /// cannot be overwritten before every waiter has read it: the next
    /// generation cannot complete until every alive party arrives again,
    /// which requires having woken from this one first.
    pub(crate) fn wait_verdict(
        &self,
        timeout: Duration,
        required: impl Fn() -> usize,
        verdict: impl Fn() -> bool,
    ) -> Option<bool> {
        let deadline = Instant::now() + timeout;
        let slice = Duration::from_millis(5);
        let mut st = self.state.lock().unwrap();
        let gen = st.generation;
        st.count += 1;
        let release = |st: &mut BarrierState| {
            st.count = 0;
            st.generation += 1;
            st.verdict = verdict();
            self.cv.notify_all();
            st.verdict
        };
        if st.count >= required() {
            return Some(release(&mut st));
        }
        while st.generation == gen {
            if st.count >= required() {
                return Some(release(&mut st));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(st, slice.min(deadline - now)).unwrap();
            st = guard;
        }
        Some(st.verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn report_includes_only_blocked_ranks() {
        let wd = Watchdog::new(3, Duration::from_millis(100));
        wd.begin(0, WaitKind::Recv, Some(2), Some(1), Some(4));
        wd.begin(1, WaitKind::Barrier, None, None, None);
        wd.begin(2, WaitKind::Recv, Some(0), Some(1), None);
        wd.end(2);
        let r = wd.report(0);
        assert_eq!(r.blocked_ranks(), vec![0, 1]);
        assert_eq!(r.blocked[0].waiting_on, Some(2));
        assert_eq!(r.blocked[0].epoch, Some(4));
        assert_eq!(r.blocked[1].kind, WaitKind::Barrier);
    }

    #[test]
    fn barrier_releases_all_parties() {
        let b = Arc::new(TimeoutBarrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || b.wait(Duration::from_secs(5)))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let b = Arc::new(TimeoutBarrier::new(2));
        for _ in 0..3 {
            let b2 = b.clone();
            let h = std::thread::spawn(move || b2.wait(Duration::from_secs(5)));
            assert!(b.wait(Duration::from_secs(5)));
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn barrier_times_out_when_a_party_is_missing() {
        let b = TimeoutBarrier::new(2);
        let t0 = Instant::now();
        assert!(!b.wait(Duration::from_millis(50)));
        assert!(t0.elapsed() >= Duration::from_millis(50));
        assert!(t0.elapsed() < Duration::from_secs(5), "returned promptly");
    }

    #[test]
    fn death_registry_dedups_and_counts() {
        let wd = Watchdog::new(4, Duration::from_millis(100));
        assert_eq!(wd.alive_count(4), 4);
        wd.mark_dead(2, 0);
        wd.mark_dead(2, 1); // second report of the same rank is ignored
        wd.mark_dead(3, 1);
        assert_eq!(wd.alive_count(4), 2);
        let deaths = wd.deaths();
        assert_eq!(deaths.len(), 2);
        assert_eq!(deaths[0], DeathRecord { rank: 2, gen: 0 });
        assert_eq!(deaths[1], DeathRecord { rank: 3, gen: 1 });
    }

    #[test]
    fn death_aware_wait_releases_when_requirement_shrinks() {
        // 3-party barrier, but one party "dies" shortly after the other
        // two arrive: the requirement drops to 2 and both release.
        let b = Arc::new(TimeoutBarrier::new(3));
        let alive = Arc::new(Mutex::new(3usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = b.clone();
                let alive = alive.clone();
                std::thread::spawn(move || {
                    b.wait_with(Duration::from_secs(5), || *alive.lock().unwrap())
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        *alive.lock().unwrap() = 2;
        for h in handles {
            assert!(h.join().unwrap(), "survivors must release");
        }
    }
}
