//! The deadlock watchdog: a shared wait-for registry plus a barrier with
//! timeout.
//!
//! Every blocking operation registers *what it waits for* before
//! blocking and deregisters on success. When any rank's wait exceeds the
//! world timeout, it snapshots the registry into a
//! [`DeadlockReport`] — which rank is blocked on which peer, with which
//! tag, in which epoch — and panics with it, so
//! [`crate::ThreadWorld::try_run`] can surface a structured
//! [`crate::WorldError::Deadlock`] instead of hanging the process
//! forever.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::{BlockedRank, DeadlockReport, WaitKind};

/// One rank's registered wait.
#[derive(Clone, Copy, Debug)]
struct WaitState {
    kind: WaitKind,
    peer: Option<usize>,
    tag: Option<u8>,
    epoch: Option<usize>,
    since: Instant,
}

/// Shared wait-for registry for one world run.
#[derive(Debug)]
pub(crate) struct Watchdog {
    timeout: Duration,
    waits: Vec<Mutex<Option<WaitState>>>,
}

impl Watchdog {
    pub(crate) fn new(p: usize, timeout: Duration) -> Self {
        Self {
            timeout,
            waits: (0..p).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub(crate) fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Registers that `rank` is about to block.
    pub(crate) fn begin(
        &self,
        rank: usize,
        kind: WaitKind,
        peer: Option<usize>,
        tag: Option<u8>,
        epoch: Option<usize>,
    ) {
        *self.waits[rank].lock().unwrap() = Some(WaitState {
            kind,
            peer,
            tag,
            epoch,
            since: Instant::now(),
        });
    }

    /// Deregisters `rank` after its wait completed.
    pub(crate) fn end(&self, rank: usize) {
        *self.waits[rank].lock().unwrap() = None;
    }

    /// Snapshots every currently blocked rank into a report.
    pub(crate) fn report(&self, detected_by: usize) -> DeadlockReport {
        let now = Instant::now();
        let blocked = self
            .waits
            .iter()
            .enumerate()
            .filter_map(|(rank, w)| {
                w.lock().unwrap().map(|s| BlockedRank {
                    rank,
                    kind: s.kind,
                    waiting_on: s.peer,
                    tag: s.tag,
                    epoch: s.epoch,
                    waited: now.saturating_duration_since(s.since),
                })
            })
            .collect();
        DeadlockReport {
            detected_by,
            timeout: self.timeout,
            blocked,
        }
    }
}

/// A reusable rendezvous barrier whose wait can time out (std's
/// [`std::sync::Barrier`] cannot, and an eternal barrier wait is exactly
/// the hang the watchdog exists to kill).
#[derive(Debug)]
pub(crate) struct TimeoutBarrier {
    p: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    count: usize,
    generation: u64,
}

impl TimeoutBarrier {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            p,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Waits for all `p` ranks; `false` if `timeout` elapsed first.
    pub(crate) fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        let gen = st.generation;
        st.count += 1;
        if st.count == self.p {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            return true;
        }
        while st.generation == gen {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn report_includes_only_blocked_ranks() {
        let wd = Watchdog::new(3, Duration::from_millis(100));
        wd.begin(0, WaitKind::Recv, Some(2), Some(1), Some(4));
        wd.begin(1, WaitKind::Barrier, None, None, None);
        wd.begin(2, WaitKind::Recv, Some(0), Some(1), None);
        wd.end(2);
        let r = wd.report(0);
        assert_eq!(r.blocked_ranks(), vec![0, 1]);
        assert_eq!(r.blocked[0].waiting_on, Some(2));
        assert_eq!(r.blocked[0].epoch, Some(4));
        assert_eq!(r.blocked[1].kind, WaitKind::Barrier);
    }

    #[test]
    fn barrier_releases_all_parties() {
        let b = Arc::new(TimeoutBarrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || b.wait(Duration::from_secs(5)))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let b = Arc::new(TimeoutBarrier::new(2));
        for _ in 0..3 {
            let b2 = b.clone();
            let h = std::thread::spawn(move || b2.wait(Duration::from_secs(5)));
            assert!(b.wait(Duration::from_secs(5)));
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn barrier_times_out_when_a_party_is_missing() {
        let b = TimeoutBarrier::new(2);
        let t0 = Instant::now();
        assert!(!b.wait(Duration::from_millis(50)));
        assert!(t0.elapsed() >= Duration::from_millis(50));
        assert!(t0.elapsed() < Duration::from_secs(5), "returned promptly");
    }
}
