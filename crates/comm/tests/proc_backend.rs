//! Integration tests for the process/socket backend ([`ProcWorld`]).
//!
//! Each test re-executes the test binary once per rank (the launcher
//! pattern `train --backend proc` uses): the parent spawns `p` copies of
//! itself filtered to the same test name, each child detects its role
//! via `GNN_PROC_RANK`, runs the rank body over real Unix-domain
//! sockets, and exits with a status the parent asserts on.

#![cfg(unix)]

use std::process::Command;
use std::time::Duration;

use gnn_comm::msg::Payload;
use gnn_comm::{CostModel, ProcError, ProcWorld};

/// Short scratch dir for the socket mesh (UDS paths are length-limited).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(format!("/tmp/gnnpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Returns this process's rank when running as a re-exec'd child of
/// `test_name`, or `None` in the parent.
fn child_rank(test_name: &str) -> Option<usize> {
    if std::env::var("GNN_PROC_TEST").as_deref() == Ok(test_name) {
        Some(
            std::env::var("GNN_PROC_RANK")
                .expect("child is missing GNN_PROC_RANK")
                .parse()
                .expect("GNN_PROC_RANK must be a rank index"),
        )
    } else {
        None
    }
}

/// Re-executes this test binary as rank `rank` of `test_name`, meshed
/// under `dir`. Extra env pairs let a test arm fault hooks per rank.
fn spawn_rank(
    test_name: &str,
    rank: usize,
    dir: &std::path::Path,
    env: &[(&str, &str)],
) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg(test_name)
        .arg("--exact")
        .arg("--nocapture")
        .arg("--test-threads=1")
        .env("GNN_PROC_TEST", test_name)
        .env("GNN_PROC_RANK", rank.to_string())
        .env("GNN_PROC_DIR", dir)
        // Fast liveness so death-detection tests finish in ~200ms.
        .env("GNN_PROC_HEARTBEAT_MS", "50")
        .env("GNN_PROC_MISS", "4");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn child rank")
}

fn world(p: usize) -> ProcWorld {
    let dir = std::env::var("GNN_PROC_DIR").expect("child is missing GNN_PROC_DIR");
    ProcWorld::new(p, CostModel::default(), dir).with_timeout(Duration::from_secs(20))
}

/// Asks the kernel for a currently-free loopback port. The listener is
/// dropped before returning, so there is a small reuse race — fine for
/// tests, where each run allocates fresh.
fn free_loopback_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local_addr")
        .port()
}

/// Writes an all-loopback hostfile for `p` ranks into `dir`: rank 0 gets
/// a pinned rendezvous port, the rest take kernel-chosen mesh ports
/// (published through the ADDRBOOK). Returns the hostfile path.
fn write_loopback_hostfile(dir: &std::path::Path, p: usize) -> std::path::PathBuf {
    let mut text = format!("127.0.0.1:{}\n", free_loopback_port());
    for _ in 1..p {
        text.push_str("127.0.0.1\n");
    }
    let path = dir.join("hosts.txt");
    std::fs::write(&path, text).expect("write hostfile");
    path
}

/// Every rank passes a growing f64 vector around a ring `rounds` times;
/// after `p` hops each value has collected every rank's contribution,
/// so the final checksum proves FIFO delivery and content integrity
/// across real sockets.
fn ring_body(ctx: &mut gnn_comm::RankCtx, rounds: usize) {
    let p = ctx.p();
    let rank = ctx.rank();
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    for round in 0..rounds {
        let mut token = vec![rank as f64, round as f64];
        for _hop in 0..p {
            ctx.send(next, Payload::F64(token.clone()));
            token = match ctx.recv(prev) {
                Payload::F64(v) => v,
                other => panic!("expected F64 token, got {other:?}"),
            };
            let mut pushed = token.clone();
            pushed.push(token[0] + token[1]);
            token = pushed;
        }
        // After p hops the token is back home with p appended sums.
        assert_eq!(token.len(), 2 + p, "round {round}: token length");
        assert_eq!(token[0], rank as f64, "round {round}: token returned home");
    }
    // Collective sanity on the same mesh.
    let mut buf = vec![rank as f64; 4];
    let group: Vec<usize> = (0..p).collect();
    ctx.allreduce_sum(&mut buf, &group);
    let expect = (p * (p - 1) / 2) as f64;
    assert!(buf.iter().all(|&x| x == expect), "allreduce mismatch");
    ctx.barrier();
}

#[test]
fn ring_exchange_over_processes() {
    const NAME: &str = "ring_exchange_over_processes";
    const P: usize = 3;
    if let Some(rank) = child_rank(NAME) {
        let (_out, stats) = world(P)
            .run_rank(rank, |ctx| ring_body(ctx, 3))
            .expect("rank body");
        assert!(stats.bytes_sent_total() > 0, "rank recorded no traffic");
        return;
    }
    let dir = scratch_dir("ring");
    let children: Vec<_> = (0..P).map(|r| spawn_rank(NAME, r, &dir, &[])).collect();
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait child");
        assert!(status.success(), "rank {rank} exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ring_exchange_over_tcp_loopback() {
    const NAME: &str = "ring_exchange_over_tcp_loopback";
    const P: usize = 3;
    if let Some(rank) = child_rank(NAME) {
        let (_out, stats) = world(P)
            .run_rank(rank, |ctx| ring_body(ctx, 3))
            .expect("rank body");
        assert!(stats.bytes_sent_total() > 0, "rank recorded no traffic");
        return;
    }
    let dir = scratch_dir("tcpring");
    let hosts = write_loopback_hostfile(&dir, P);
    let hosts = hosts.to_str().expect("utf8 hostfile path").to_owned();
    let children: Vec<_> = (0..P)
        .map(|r| spawn_rank(NAME, r, &dir, &[("GNN_PROC_HOSTFILE", &hosts)]))
        .collect();
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait child");
        assert!(status.success(), "rank {rank} exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reconnect_replays_unacked_frames_over_tcp() {
    const NAME: &str = "reconnect_replays_unacked_frames_over_tcp";
    const P: usize = 2;
    if let Some(rank) = child_rank(NAME) {
        let (_out, _stats) = world(P)
            .run_rank(rank, |ctx| {
                let peer = 1 - ctx.rank();
                for i in 0..40u32 {
                    ctx.send(peer, Payload::U32(vec![i, ctx.rank() as u32]));
                    match ctx.recv(peer) {
                        Payload::U32(v) => assert_eq!(v, vec![i, peer as u32]),
                        other => panic!("expected U32, got {other:?}"),
                    }
                }
                ctx.barrier();
            })
            .expect("rank body survives the dropped TCP connection");
        return;
    }
    let dir = scratch_dir("tcpreconn");
    let hosts = write_loopback_hostfile(&dir, P);
    let hosts = hosts.to_str().expect("utf8 hostfile path").to_owned();
    // Same forced-drop scenario as the UDS variant, but across a real
    // TCP reset: redial + watermark sync + replay must hide the cut.
    let children = vec![
        spawn_rank(NAME, 0, &dir, &[("GNN_PROC_HOSTFILE", &hosts)]),
        spawn_rank(
            NAME,
            1,
            &dir,
            &[
                ("GNN_PROC_HOSTFILE", &hosts),
                ("GNN_PROC_DROP_CONN_AFTER", "5"),
            ],
        ),
    ];
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait child");
        assert!(status.success(), "rank {rank} exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reconnect_replays_unacked_frames() {
    const NAME: &str = "reconnect_replays_unacked_frames";
    const P: usize = 2;
    if let Some(rank) = child_rank(NAME) {
        // Many small round trips so the forced connection drop lands
        // mid-stream; the reliable layer must replay the unacked suffix
        // and the receiver must dedup, with no effect on contents.
        let (_out, _stats) = world(P)
            .run_rank(rank, |ctx| {
                let peer = 1 - ctx.rank();
                for i in 0..40u32 {
                    ctx.send(peer, Payload::U32(vec![i, ctx.rank() as u32]));
                    match ctx.recv(peer) {
                        Payload::U32(v) => assert_eq!(v, vec![i, peer as u32]),
                        other => panic!("expected U32, got {other:?}"),
                    }
                }
                ctx.barrier();
            })
            .expect("rank body survives the dropped connection");
        return;
    }
    let dir = scratch_dir("reconn");
    // Rank 1 is the dialing side (higher rank dials lower): shooting its
    // connection down after the 5th DATA send exercises redial + replay.
    let children = vec![
        spawn_rank(NAME, 0, &dir, &[]),
        spawn_rank(NAME, 1, &dir, &[("GNN_PROC_DROP_CONN_AFTER", "5")]),
    ];
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait child");
        assert!(status.success(), "rank {rank} exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn peer_death_is_detected_and_reported() {
    const NAME: &str = "peer_death_is_detected_and_reported";
    const P: usize = 2;
    const DEAD_RANK_EXIT: i32 = 7;
    if let Some(rank) = child_rank(NAME) {
        if rank == 1 {
            // Die uncleanly after wire-up: no BYE, no teardown — from
            // rank 0's perspective this is indistinguishable from
            // SIGKILL. The first recv proves the mesh was up.
            let result = world(P).run_rank(rank, |ctx| {
                ctx.send(0, Payload::Empty);
                match ctx.recv(0) {
                    Payload::Empty => {}
                    other => panic!("expected Empty, got {other:?}"),
                }
                std::process::exit(DEAD_RANK_EXIT);
            });
            unreachable!("rank 1 must have exited inside the body: {result:?}");
        }
        // Rank 0 blocks on a message the dead peer never sends; the
        // heartbeat monitor must declare the peer dead and surface the
        // same "hung up" panic the thread backend produces.
        let err = world(P)
            .run_rank(rank, |ctx| {
                match ctx.recv(1) {
                    Payload::Empty => {}
                    other => panic!("expected Empty, got {other:?}"),
                }
                ctx.send(1, Payload::Empty);
                let _ = ctx.recv(1); // never arrives
            })
            .expect_err("rank 0 must observe the peer death");
        match err {
            ProcError::RankPanicked { rank: r, message } => {
                assert_eq!(r, 0);
                assert!(
                    message.contains("hung up"),
                    "unexpected failure message: {message}"
                );
            }
            other => panic!("expected RankPanicked, got {other}"),
        }
        return;
    }
    let dir = scratch_dir("death");
    let children = vec![
        spawn_rank(NAME, 0, &dir, &[]),
        spawn_rank(NAME, 1, &dir, &[]),
    ];
    let statuses: Vec<_> = children
        .into_iter()
        .map(|mut c| c.wait().expect("wait child"))
        .collect();
    assert!(
        statuses[0].success(),
        "rank 0 should assert the death and pass, got {}",
        statuses[0]
    );
    assert_eq!(
        statuses[1].code(),
        Some(DEAD_RANK_EXIT),
        "rank 1 should die with its marker exit code"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_leaves_no_sockets_behind() {
    const NAME: &str = "graceful_shutdown_leaves_no_sockets_behind";
    const P: usize = 2;
    if let Some(rank) = child_rank(NAME) {
        world(P)
            .run_rank(rank, |ctx| {
                ctx.send(1 - ctx.rank(), Payload::F64(vec![1.0]));
                let _ = ctx.recv(1 - ctx.rank());
                ctx.barrier();
            })
            .expect("rank body");
        return;
    }
    let dir = scratch_dir("clean");
    let children: Vec<_> = (0..P).map(|r| spawn_rank(NAME, r, &dir, &[])).collect();
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait child");
        assert!(status.success(), "rank {rank} exited with {status}");
    }
    // The rendezvous socket must be unlinked once wire-up completes.
    assert!(
        !dir.join("rendezvous.sock").exists(),
        "rendezvous socket not cleaned up"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
